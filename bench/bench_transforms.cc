// E9 / E10 / E13 — program transforms and the advisor.
//
// Reproduces Example 7 (the if-then-else transform lifts surveillance to the
// maximal mechanism), Example 8 (the same transform strictly hurts), and
// Example 9 (tail duplication + per-halt static release). Also a corpus
// census of how often each transform improves/degrades utility — the
// "not necessarily a clearcut decision" of Section 4, whose optimal version
// Theorem 4 rules out.
//
// Benchmark: advisor cost per program.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/corpus/generator.h"
#include "src/flowlang/lower.h"
#include "src/flowlang/parser.h"
#include "src/mechanism/completeness.h"
#include "src/staticflow/static_mechanisms.h"
#include "src/surveillance/surveillance.h"
#include "src/transforms/advisor.h"
#include "src/transforms/transforms.h"
#include "src/util/strings.h"

namespace secpol {
namespace {

SourceProgram Example7() {
  return MustParseProgram(R"(
    program ex7(x1, x2) {
      locals r;
      if (x1 == 1) { r = 1; } else { r = 2; }
      if (r == 1) { y = 1; } else { y = 1; }
    })");
}

SourceProgram Example8() {
  return MustParseProgram(
      "program ex8(x1, x2) { if (x2 == 1) { y = 1; } else { y = x1; } }");
}

SourceProgram Example9() {
  return MustParseProgram(
      "program ex9(x1, x2) { locals r; if (x1 == 0) { r = 0; } else { r = x2; } y = r; }");
}

void PrintExample(const char* title, const SourceProgram& q, VarSet allowed,
                  const char* expectation) {
  PrintHeader(title);
  const InputDomain domain = InputDomain::Range(2, 0, 2);
  const AdvisorReport report = AdviseTransforms(q, allowed, domain);
  PrintRow({"candidate", "equivalent", "utility"}, {30, 12, 10});
  for (size_t i = 0; i < report.candidates.size(); ++i) {
    const AdvisorCandidate& c = report.candidates[i];
    PrintRow({(i == report.best_index ? "* " : "  ") + c.description,
              c.equivalent ? "yes" : "NO", FormatDouble(c.utility, 3)},
             {30, 12, 10});
  }
  std::printf("  %s\n", expectation);
}

void PrintExample9Static() {
  PrintHeader("E13 (Example 9, static): per-halt release after tail duplication, allow(x1)");
  bool changed = false;
  const SourceProgram dup = ApplyTailDuplication(Example9(), &changed);
  const Program original = Lower(Example9());
  const Program duplicated = Lower(dup);
  const InputDomain domain = InputDomain::Range(2, 0, 2);

  const StaticCertifiedMechanism cert_orig(Program(original), VarSet{0},
                                           PcDiscipline::kScopedPc);
  const ResidualGuardMechanism res_orig(Program(original), VarSet{0}, PcDiscipline::kScopedPc);
  const ResidualGuardMechanism res_dup(Program(duplicated), VarSet{0},
                                       PcDiscipline::kScopedPc);
  PrintRow({"static mechanism", "utility"}, {42, 10});
  PrintRow({"certify-or-plug (original)", FormatDouble(MeasureUtility(cert_orig, domain), 3)},
           {42, 10});
  PrintRow({"residual guard (original, one halt)",
            FormatDouble(MeasureUtility(res_orig, domain), 3)},
           {42, 10});
  PrintRow({"residual guard (tail-duplicated, two halts)",
            FormatDouble(MeasureUtility(res_dup, domain), 3)},
           {42, 10});
  std::printf(
      "  Paper: after duplicating the assignment to y, \"the protection mechanism\n"
      "  need only give a violation notice in case x1 != 0\" — utility 1/3 of the\n"
      "  x1-grid instead of a plugged program.\n");
}

void PrintCensus() {
  PrintHeader("Transform census over 60 random programs (allow(0) of 2 inputs)");
  CorpusConfig config;
  config.num_inputs = 2;
  const auto corpus = MakeCorpus(config, 60, 13000);
  const InputDomain domain = InputDomain::Uniform(2, {0, 1, 2});
  int improved = 0, unchanged = 0;
  double gain = 0;
  for (const SourceProgram& s : corpus) {
    const AdvisorReport report = AdviseTransforms(s, VarSet{0}, domain);
    const double base = report.candidates[0].utility;
    const double best = report.best().utility;
    if (best > base + 1e-12) {
      ++improved;
      gain += best - base;
    } else {
      ++unchanged;
    }
  }
  PrintRow({"programs improved", std::to_string(improved)}, {26, 8});
  PrintRow({"programs unchanged", std::to_string(unchanged)}, {26, 8});
  if (improved > 0) {
    PrintRow({"mean utility gain", FormatDouble(gain / improved, 3)}, {26, 8});
  }
  std::printf(
      "  The advisor audits equivalence and keeps only improvements, so no row can\n"
      "  regress; Theorem 4 guarantees it still misses some maximal mechanisms.\n");
}

void PrintReproduction() {
  PrintExample("E9 (Example 7): transform reaches the maximal mechanism, allow(x2)", Example7(),
               VarSet{1},
               "Paper: the transformed program's surveillance always outputs 1 — maximal.");
  PrintExample("E10 (Example 8): the same transform strictly hurts, allow(x2)", Example8(),
               VarSet{1},
               "Paper: M' always violates while M releases whenever x2 == 1, so M > M'.");
  PrintExample9Static();
  PrintCensus();
}

void BM_Advisor(benchmark::State& state) {
  CorpusConfig config;
  config.num_inputs = 2;
  const SourceProgram s = GenerateProgram(config, 77, "bench");
  const InputDomain domain = InputDomain::Uniform(2, {0, 1, 2});
  for (auto _ : state) {
    benchmark::DoNotOptimize(AdviseTransforms(s, VarSet{0}, domain).best_index);
  }
}
BENCHMARK(BM_Advisor);

void BM_IfToSelect(benchmark::State& state) {
  const SourceProgram s = Example7();
  for (auto _ : state) {
    bool changed = false;
    benchmark::DoNotOptimize(ApplyIfToSelect(s, {}, &changed).body.size());
  }
}
BENCHMARK(BM_IfToSelect);

}  // namespace
}  // namespace secpol

SECPOL_BENCH_MAIN(secpol::PrintReproduction)
