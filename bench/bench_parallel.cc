// E13 — scaling the Theorem-4 cost wall across worker threads.
//
// E12 showed the |D|^k tabulation cost of extensional checking. The wall is
// embarrassingly parallel: the grid shards into contiguous lexicographic rank
// ranges and each shard is checked independently, with a deterministic
// first-witness merge so the report is identical to the serial scan at every
// thread count. This bench regenerates the Theorem-4 cost series at 1/2/4/8
// threads: parallelism divides the constant but cannot touch the exponent —
// the wall moves by at most log_|D|(threads) in k.
//
// Benchmark: soundness-check and maximal-synthesis time vs grid size and
// thread count, plus measured speedup relative to the serial scan.

#include <benchmark/benchmark.h>

#include <chrono>
#include <string>

#include "bench/bench_util.h"
#include "src/corpus/generator.h"
#include "src/flowlang/lower.h"
#include "src/mechanism/check_options.h"
#include "src/mechanism/domain.h"
#include "src/mechanism/maximal.h"
#include "src/mechanism/soundness.h"
#include "src/policy/policy.h"
#include "src/surveillance/surveillance.h"
#include "src/util/strings.h"
#include "src/util/thread_pool.h"

namespace secpol {
namespace {

Program MakeProgram(int num_inputs) {
  CorpusConfig config;
  config.num_inputs = num_inputs;
  return Lower(GenerateProgram(config, 4242, "target"));
}

double CheckMillis(const ProtectionMechanism& mech, const SecurityPolicy& policy,
                   const InputDomain& domain, int threads) {
  const auto start = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(
      CheckSoundness(mech, policy, domain, Observability::kValueOnly,
                     CheckOptions::Threads(threads))
          .inputs_checked);
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

void PrintReproduction() {
  PrintHeader("E13: Theorem-4 cost wall at 1/2/4/8 threads (deterministic shards)");
  std::printf("  host hardware threads: %d\n\n", ThreadPool::HardwareThreads());
  PrintRow({"inputs k", "|D| per coord", "grid |D|^k", "t=1 ms", "t=2 ms", "t=4 ms", "t=8 ms",
            "speedup@4"},
           {9, 14, 12, 10, 10, 10, 10, 10});
  for (const int k : {2, 3, 4}) {
    const Program q = MakeProgram(k);
    const SurveillanceMechanism ms = MakeSurveillanceM(Program(q), VarSet{0});
    const AllowPolicy policy(k, VarSet{0});
    for (const int d : {3, 5}) {
      const InputDomain domain = InputDomain::Range(k, 0, d - 1);
      double millis[4] = {0, 0, 0, 0};
      const int threads[4] = {1, 2, 4, 8};
      for (int i = 0; i < 4; ++i) {
        millis[i] = CheckMillis(ms, policy, domain, threads[i]);
      }
      PrintRow({std::to_string(k), std::to_string(d), std::to_string(domain.size()),
                FormatDouble(millis[0], 3), FormatDouble(millis[1], 3),
                FormatDouble(millis[2], 3), FormatDouble(millis[3], 3),
                FormatDouble(millis[2] > 0 ? millis[0] / millis[2] : 0.0, 2)},
               {9, 14, 12, 10, 10, 10, 10, 10});
    }
  }
  std::printf(
      "\n  Sharding divides the |D|^k scan across workers; the merge replays the\n"
      "  serial first-witness rule, so the verdict and counterexample never change.\n"
      "  The exponent does not: threads buy a constant factor against a wall that\n"
      "  grows geometrically in k — Theorem 4's cost, amortized but not escaped.\n");
}

void BM_ParallelSoundness(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const Program q = MakeProgram(k);
  const SurveillanceMechanism ms = MakeSurveillanceM(Program(q), VarSet{0});
  const AllowPolicy policy(k, VarSet{0});
  const InputDomain domain = InputDomain::Range(k, 0, 4);
  const CheckOptions options = CheckOptions::Threads(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CheckSoundness(ms, policy, domain, Observability::kValueOnly, options).inputs_checked);
  }
  state.counters["grid"] = static_cast<double>(domain.size());
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_ParallelSoundness)
    ->Args({3, 1})
    ->Args({3, 2})
    ->Args({3, 4})
    ->Args({3, 8})
    ->Args({4, 1})
    ->Args({4, 2})
    ->Args({4, 4})
    ->Args({4, 8});

void BM_ParallelMaximalSynthesis(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const Program q = MakeProgram(4);
  const ProgramAsMechanism bare{Program(q)};
  const AllowPolicy policy(4, VarSet{0});
  const InputDomain domain = InputDomain::Range(4, 0, 4);
  const CheckOptions options = CheckOptions::Threads(threads);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SynthesizeMaximalMechanism(bare, policy, domain, Observability::kValueOnly, options)
            .released_classes);
  }
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_ParallelMaximalSynthesis)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace secpol

SECPOL_BENCH_MAIN(secpol::PrintReproduction)
