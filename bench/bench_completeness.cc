// E7 / E8 — the completeness ladder.
//
// Reproduces the Section 4 comparisons: the p.48 witness where surveillance
// is strictly more complete than the high-water mark ("intuitively,
// surveillance is better here, since it allows forgetting while high-water
// mark does not"), the p.49 witness where surveillance is not maximal, and a
// corpus census of mechanism utility (fraction of runs answered with a real
// value) across the whole mechanism ladder.
//
// Benchmark: cost of a completeness comparison over a grid.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/corpus/generator.h"
#include "src/flowlang/lower.h"
#include "src/mechanism/completeness.h"
#include "src/mechanism/maximal.h"
#include "src/policy/policy.h"
#include "src/monitor/capability.h"
#include "src/staticflow/static_mechanisms.h"
#include "src/surveillance/surveillance.h"
#include "src/util/strings.h"

namespace secpol {
namespace {

void PrintWitnesses() {
  PrintHeader("E7: p.48 witness — surveillance vs high-water, allow(x2)");
  const Program w = MustCompile(
      "program witness(x1, x2) { y = x1; if (x2 == 0) { y = x2; } }");
  const SurveillanceMechanism ms = MakeSurveillanceM(Program(w), VarSet{1});
  const SurveillanceMechanism mh = MakeHighWaterMechanism(Program(w), VarSet{1});
  const InputDomain domain = InputDomain::Range(2, 0, 2);
  const CompletenessStats stats = CompareCompleteness(ms, mh, domain);
  PrintRow({"relation", "Ms utility", "Mh utility"}, {22, 12, 12});
  PrintRow({CompletenessRelationName(stats.Relation()),
            FormatDouble(stats.FirstUtility(), 3), FormatDouble(stats.SecondUtility(), 3)},
           {22, 12, 12});
  std::printf("  Paper: Mh always outputs Lambda; Ms releases exactly when x2 == 0 (Ms > Mh).\n");

  PrintHeader("E8: p.49 witness — surveillance is not maximal, allow(x2)");
  const Program v = MustCompile(
      "program witness(x1, x2) { if (x1 == 0) { y = 1; } else { y = 1; } }");
  const SurveillanceMechanism msv = MakeSurveillanceM(Program(v), VarSet{1});
  const ProgramAsMechanism bare{Program(v)};
  const AllowPolicy policy(2, VarSet{1});
  const auto maximal =
      SynthesizeMaximalMechanism(bare, policy, domain, Observability::kValueOnly);
  PrintRow({"mechanism", "utility"}, {26, 10});
  PrintRow({"surveillance Ms", FormatDouble(MeasureUtility(msv, domain), 3)}, {26, 10});
  PrintRow({"maximal (= Q, constant)", FormatDouble(MeasureUtility(*maximal.mechanism, domain), 3)},
           {26, 10});
  std::printf("  Paper: Ms always outputs Lambda although Q itself is sound: Mmax > Ms.\n");
}

void PrintCensus() {
  PrintHeader("Corpus census: mean utility of each mechanism (60 programs, allow(0) of 2)");
  CorpusConfig config;
  config.num_inputs = 2;
  const auto corpus = MakeCorpus(config, 60, 12000);
  const VarSet allowed{0};
  const AllowPolicy policy(2, allowed);
  const InputDomain domain = InputDomain::Uniform(2, {0, 1, 2});

  double plug = 0, cap = 0, hw = 0, ms = 0, cert_mono = 0, cert_scoped = 0, residual = 0,
         max_u = 0;
  for (const SourceProgram& s : corpus) {
    const Program q = Lower(s);
    plug += MeasureUtility(PlugMechanism(2), domain);
    cap += MeasureUtility(CapabilityMechanism(Program(q), allowed), domain);
    hw += MeasureUtility(MakeHighWaterMechanism(Program(q), allowed), domain);
    ms += MeasureUtility(MakeSurveillanceM(Program(q), allowed), domain);
    cert_mono += MeasureUtility(
        StaticCertifiedMechanism(Program(q), allowed, PcDiscipline::kMonotonePc), domain);
    cert_scoped += MeasureUtility(
        StaticCertifiedMechanism(Program(q), allowed, PcDiscipline::kScopedPc), domain);
    residual += MeasureUtility(
        ResidualGuardMechanism(Program(q), allowed, PcDiscipline::kScopedPc), domain);
    const ProgramAsMechanism bare{Program(q)};
    max_u += MeasureUtility(
        *SynthesizeMaximalMechanism(bare, policy, domain, Observability::kValueOnly).mechanism,
        domain);
  }
  const double n = static_cast<double>(corpus.size());
  PrintRow({"mechanism", "mean utility"}, {30, 12});
  PrintRow({"plug", FormatDouble(plug / n, 3)}, {30, 12});
  PrintRow({"capability system", FormatDouble(cap / n, 3)}, {30, 12});
  PrintRow({"static certify (monotone)", FormatDouble(cert_mono / n, 3)}, {30, 12});
  PrintRow({"static certify (scoped)", FormatDouble(cert_scoped / n, 3)}, {30, 12});
  PrintRow({"residual guard (scoped)", FormatDouble(residual / n, 3)}, {30, 12});
  PrintRow({"high-water mark", FormatDouble(hw / n, 3)}, {30, 12});
  PrintRow({"surveillance", FormatDouble(ms / n, 3)}, {30, 12});
  PrintRow({"finite maximal (Thm 2)", FormatDouble(max_u / n, 3)}, {30, 12});
  std::printf(
      "\n  Expected shape: plug <= static <= residual and plug <= high-water <=\n"
      "  surveillance <= maximal, with a real gap between surveillance and maximal\n"
      "  (Theorem 4 is why no effective procedure closes it).\n");
}

void PrintReproduction() {
  PrintWitnesses();
  PrintCensus();
}

void BM_CompareCompleteness(benchmark::State& state) {
  CorpusConfig config;
  config.num_inputs = 2;
  const Program q = Lower(GenerateProgram(config, 7, "bench"));
  const SurveillanceMechanism ms = MakeSurveillanceM(Program(q), VarSet{0});
  const SurveillanceMechanism mh = MakeHighWaterMechanism(Program(q), VarSet{0});
  const InputDomain domain = InputDomain::Range(2, 0, static_cast<Value>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CompareCompleteness(ms, mh, domain).both_value);
  }
  state.counters["grid"] = static_cast<double>(domain.size());
}
BENCHMARK(BM_CompareCompleteness)->Arg(3)->Arg(7)->Arg(15);

}  // namespace
}  // namespace secpol

SECPOL_BENCH_MAIN(secpol::PrintReproduction)
