// E20 — observability overhead: what the metrics/trace layer costs.
//
// The ObsContext design claims instrumentation is pay-for-what-you-attach:
// with both sink pointers null the instrumented code path is one predictable
// branch per coarse-grained site (per shard, per checker run — never per
// grid point), and with sinks attached the cost is a handful of relaxed
// atomic adds plus two clock reads per span. This bench quantifies both on
// E19's workload — the full six-check audit over a 512-point grid with a
// loop-bearing program, so evaluation is honest work and the overhead is
// measured against a realistic denominator.
//
// Acceptance targets: disabled mode within 1% of the pre-instrumentation
// audit time (E19's recorded baseline), metrics+trace attached within 5% of
// disabled mode.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/flowlang/lower.h"
#include "src/flowlang/parser.h"
#include "src/mechanism/check_options.h"
#include "src/mechanism/domain.h"
#include "src/mechanism/mechanism.h"
#include "src/obs/obs.h"
#include "src/policy/policy.h"
#include "src/service/audit.h"
#include "src/surveillance/surveillance.h"
#include "src/util/strings.h"
#include "src/util/thread_pool.h"

namespace secpol {
namespace {

// E19's fixture: a loop gives every evaluation a real cost, so the measured
// overhead is relative to honest sweep work, not an empty loop.
Program MakeProgram() {
  const char* text =
      "program p(a, b, c) { locals i; i = 100; while (i != 0) { i = i - 1; } "
      "y = a + b * c; }";
  return Lower(ParseProgram(text).value());
}

struct Fixture {
  Program program = MakeProgram();
  SurveillanceMechanism checked{Program(program), VarSet{0}};
  ProgramAsMechanism comparand{Program(program)};
  AllowPolicy policy{3, VarSet{0}};
  AllowPolicy policy2{3, VarSet{0, 1}};
  InputDomain domain = InputDomain::Range(3, 0, 7);  // 512 points
};

void RunAudit(const Fixture& f, const CheckOptions& options) {
  benchmark::DoNotOptimize(CheckAll(f.checked, f.comparand, f.policy, f.policy2, f.domain,
                                    Observability::kValueOnly, options)
                               .EvaluatedPoints());
}

template <typename Fn>
double MinMillis(const Fn& fn, int trials) {
  double best = 1e300;
  for (int t = 0; t < trials; ++t) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const double ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
            .count();
    if (ms < best) best = ms;
  }
  return best;
}

void PrintReproduction() {
  PrintHeader("E20: observability overhead — disabled vs metrics vs metrics+trace");
  std::printf("  host hardware threads: %d\n\n", ThreadPool::HardwareThreads());

  const Fixture f;
  std::printf("  workload: E19's six-check audit, %llu-point grid, 100-iteration loop body\n\n",
              static_cast<unsigned long long>(f.domain.size()));

  PrintRow({"threads", "mode", "audit ms", "overhead"}, {8, 16, 10, 10});
  for (const int threads : {1, 4}) {
    const CheckOptions disabled = CheckOptions::Threads(threads);
    RunAudit(f, disabled);  // warm-up: caches and the pool, off the clock

    // The three modes are measured round-robin, one trial each per round, so
    // ambient load perturbs them equally instead of biasing whichever mode
    // happened to run during a quiet stretch; per-mode minimum wins.
    double disabled_ms = 1e300;
    double metrics_ms = 1e300;
    double full_ms = 1e300;
    for (int round = 0; round < 15; ++round) {
      disabled_ms = std::min(disabled_ms, MinMillis([&] { RunAudit(f, disabled); }, 1));
      metrics_ms = std::min(metrics_ms, MinMillis(
                                            [&] {
                                              MetricsRegistry registry;
                                              CheckOptions options = disabled;
                                              options.obs.metrics = &registry;
                                              RunAudit(f, options);
                                            },
                                            1));
      full_ms = std::min(full_ms, MinMillis(
                                      [&] {
                                        MetricsRegistry registry;
                                        TraceRecorder recorder;
                                        CheckOptions options = disabled;
                                        options.obs.metrics = &registry;
                                        options.obs.trace = &recorder;
                                        RunAudit(f, options);
                                      },
                                      1));
    }

    const auto pct = [&](double ms) {
      return FormatDouble(100.0 * (ms - disabled_ms) / disabled_ms, 1) + "%";
    };
    PrintRow({std::to_string(threads), "disabled", FormatDouble(disabled_ms, 2), "-"},
             {8, 16, 10, 10});
    PrintRow({"", "metrics", FormatDouble(metrics_ms, 2), pct(metrics_ms)}, {8, 16, 10, 10});
    PrintRow({"", "metrics+trace", FormatDouble(full_ms, 2), pct(full_ms)}, {8, 16, 10, 10});
  }
  std::printf(
      "\n  acceptance targets: disabled within 1%% of E19's recorded audit baseline;\n"
      "  metrics+trace within 5%% of disabled mode\n");
}

void BM_AuditObsDisabled(benchmark::State& state) {
  const Fixture f;
  const CheckOptions options = CheckOptions::Threads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    RunAudit(f, options);
  }
}
BENCHMARK(BM_AuditObsDisabled)->Arg(1)->Arg(4);

void BM_AuditObsMetrics(benchmark::State& state) {
  const Fixture f;
  MetricsRegistry registry;
  CheckOptions options = CheckOptions::Threads(static_cast<int>(state.range(0)));
  options.obs.metrics = &registry;
  for (auto _ : state) {
    RunAudit(f, options);
  }
}
BENCHMARK(BM_AuditObsMetrics)->Arg(1)->Arg(4);

void BM_AuditObsMetricsTrace(benchmark::State& state) {
  const Fixture f;
  CheckOptions options = CheckOptions::Threads(static_cast<int>(state.range(0)));
  MetricsRegistry registry;
  options.obs.metrics = &registry;
  for (auto _ : state) {
    // A fresh recorder per iteration: the span buffer must not grow without
    // bound across google-benchmark's adaptive iteration counts.
    TraceRecorder recorder;
    options.obs.trace = &recorder;
    RunAudit(f, options);
  }
}
BENCHMARK(BM_AuditObsMetricsTrace)->Arg(1)->Arg(4);

// The two hot primitives, in isolation.
void BM_CounterAdd(benchmark::State& state) {
  Counter counter;
  for (auto _ : state) {
    counter.Add(1);
  }
  benchmark::DoNotOptimize(counter.Value());
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram histogram;
  std::uint64_t v = 0;
  for (auto _ : state) {
    histogram.Record(v++);
  }
  benchmark::DoNotOptimize(histogram.Count());
}
BENCHMARK(BM_HistogramRecord);

}  // namespace
}  // namespace secpol

SECPOL_BENCH_MAIN(secpol::PrintReproduction)
