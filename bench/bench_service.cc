// E18 — the batch checking service: cold vs warm throughput, the cache
// hit-rate curve, and the scheduler's per-job overhead.
//
// The service memoizes completed check reports under content-addressed keys
// (JobCacheKey), so a repeated job costs a fingerprint + one sharded LRU
// lookup instead of an exhaustive grid sweep. This bench quantifies the
// three numbers that matter for capacity planning: (1) the warm/cold
// throughput ratio on a batch of repeated jobs (the acceptance target is
// >= 10x), (2) how batch wall time falls as the fraction of repeated jobs
// rises, and (3) the scheduler's fixed cost per job — admission, validation,
// fingerprinting, dispatch — measured on a batch that is 100% cache hits,
// where nothing else is left to pay for.

#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/service/service.h"
#include "src/util/strings.h"
#include "src/util/thread_pool.h"

namespace secpol {
namespace {

// Distinct jobs differ by an inner-loop bound, which both changes the
// program's fingerprint (distinct cache keys) and gives every evaluation a
// real cost, so a cold sweep is honest work rather than a no-op.
std::string ProgramText(int variant) {
  return "program p(a, b, c) { locals i; i = " + std::to_string(20 + variant) +
         "; while (i != 0) { i = i - 1; } y = a + b * c; }";
}

CheckJobSpec JobFor(int variant) {
  CheckJobSpec spec;
  spec.id = "job-" + std::to_string(variant);
  spec.program_text = ProgramText(variant);
  spec.allow = VarSet{0};
  spec.grid_lo = 0;
  spec.grid_hi = 4;  // 5^3 = 125 surveilled evaluations per cold job
  return spec;
}

std::vector<CheckJobSpec> DistinctJobs(int count) {
  std::vector<CheckJobSpec> jobs;
  jobs.reserve(count);
  for (int i = 0; i < count; ++i) {
    jobs.push_back(JobFor(i));
  }
  return jobs;
}

double BatchMillis(CheckService& service, const std::vector<CheckJobSpec>& jobs) {
  const auto start = std::chrono::steady_clock::now();
  const BatchReport report = service.RunBatch(jobs);
  benchmark::DoNotOptimize(report.stats.completed);
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

void PrintReproduction() {
  PrintHeader("E18: batch service — cold vs warm throughput and scheduler overhead");
  std::printf("  host hardware threads: %d\n\n", ThreadPool::HardwareThreads());

  const int kJobs = 64;
  const std::vector<CheckJobSpec> jobs = DistinctJobs(kJobs);

  // (1) Cold vs warm: the same batch twice on one service. The second pass
  // answers every job from the cache with byte-identical reports.
  {
    ServiceConfig config;
    config.concurrency = 1;
    CheckService service(config);
    const double cold_ms = BatchMillis(service, jobs);
    double warm_ms = BatchMillis(service, jobs);
    for (int trial = 0; trial < 5; ++trial) {  // min-of-trials: warm runs are tiny
      const double ms = BatchMillis(service, jobs);
      if (ms < warm_ms) warm_ms = ms;
    }
    const double speedup = warm_ms > 0 ? cold_ms / warm_ms : 0.0;
    PrintRow({"batch", "jobs", "wall ms", "jobs/s"}, {8, 6, 12, 12});
    PrintRow({"cold", std::to_string(kJobs), FormatDouble(cold_ms, 2),
              FormatDouble(kJobs / (cold_ms / 1000.0), 0)},
             {8, 6, 12, 12});
    PrintRow({"warm", std::to_string(kJobs), FormatDouble(warm_ms, 3),
              FormatDouble(kJobs / (warm_ms / 1000.0), 0)},
             {8, 6, 12, 12});
    std::printf("  warm/cold speedup: %sx (target: >= 10x)\n\n", FormatDouble(speedup, 1).c_str());
  }

  // (2) Hit-rate curve: batches where a growing fraction of the jobs repeat
  // an already-cached variant. Wall time should fall linearly in the hit
  // rate — the misses dominate everything.
  {
    PrintRow({"repeat %", "hits", "misses", "wall ms"}, {9, 6, 7, 12});
    for (const int repeat_pct : {0, 50, 90, 100}) {
      ServiceConfig config;
      config.concurrency = 1;
      CheckService service(config);
      // Pre-warm the repeated prefix: variants [0, repeated) are cached.
      const int repeated = kJobs * repeat_pct / 100;
      if (repeated > 0) {
        (void)service.RunBatch(DistinctJobs(repeated));
      }
      const double ms = BatchMillis(service, jobs);
      const CacheStats stats = service.cache().Stats();
      PrintRow({std::to_string(repeat_pct), std::to_string(repeated),
                std::to_string(kJobs - repeated), FormatDouble(ms, 2)},
               {9, 6, 7, 12});
      benchmark::DoNotOptimize(stats.hits);
    }
    std::printf("\n");
  }

  // (3) Scheduler overhead: with a fully warm cache every job's checker cost
  // is gone; what remains — admission, re-validation (parse + lower +
  // fingerprint), dispatch, stats — is the service's fixed per-job price.
  {
    ServiceConfig config;
    config.concurrency = 1;
    CheckService service(config);
    (void)service.RunBatch(jobs);  // warm everything
    double best_ms = BatchMillis(service, jobs);
    for (int trial = 0; trial < 7; ++trial) {
      const double ms = BatchMillis(service, jobs);
      if (ms < best_ms) best_ms = ms;
    }
    std::printf("  scheduler + fingerprint overhead: %s us per job (100%% hits)\n",
                FormatDouble(best_ms * 1000.0 / kJobs, 1).c_str());
  }
}

void BM_ColdBatch(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  const std::vector<CheckJobSpec> batch = DistinctJobs(jobs);
  for (auto _ : state) {
    ServiceConfig config;
    config.concurrency = 1;
    CheckService service(config);  // fresh cache every iteration
    benchmark::DoNotOptimize(service.RunBatch(batch).stats.executed);
  }
  state.counters["jobs"] = static_cast<double>(jobs);
}
BENCHMARK(BM_ColdBatch)->Arg(16)->Arg(64);

void BM_WarmBatch(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  const std::vector<CheckJobSpec> batch = DistinctJobs(jobs);
  ServiceConfig config;
  config.concurrency = 1;
  CheckService service(config);
  (void)service.RunBatch(batch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.RunBatch(batch).stats.cache_hits);
  }
  state.counters["jobs"] = static_cast<double>(jobs);
}
BENCHMARK(BM_WarmBatch)->Arg(16)->Arg(64);

void BM_CacheLookup(benchmark::State& state) {
  // The cache in isolation: one sharded-LRU hit, no scheduler around it.
  ResultCache cache(1024, 8);
  Fingerprinter fp;
  fp.Tag("bench");
  const Fingerprint key = fp.Digest();
  CachedResult value;
  value.report = std::string(256, 'r');
  cache.Insert(key, value);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Lookup(key)->exit_code);
  }
}
BENCHMARK(BM_CacheLookup);

}  // namespace
}  // namespace secpol

SECPOL_BENCH_MAIN(secpol::PrintReproduction)
