// E23 — the equivalence-class sweep (DESIGN.md §14): evaluation savings
// from constancy certificates, and the incremental-recheck win from the
// representative memo after a one-box program edit.
//
// The |D|^k wall: a point sweep evaluates the mechanism once per grid
// point, so cost scales as the full grid product. The class sweep
// partitions the grid by the policy image (analytically for allow(J) —
// zero policy evaluations), runs ONE tracked representative per class, and
// copies its outcome across every member the constancy certificate covers.
// For a mechanism that reads only allowed coordinates, mechanism
// evaluations collapse from |D|^k to |D|^|J| — the table below measures
// that ratio (the acceptance target is >= 10x fewer) together with the
// wall-clock speedup, which tracks it once per-evaluation cost dominates.
//
// The second table measures the memo layer: re-submitting a "class" job
// after an edit confined to a box the representatives never executed
// revalidates every memo entry against the new program's digest tree and
// spends ZERO representative evaluations — the incremental recheck. The
// result cache cannot help there (the program text changed, so the job's
// cache key changed); the memo is the layer below it.

#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/flowlang/lower.h"
#include "src/mechanism/classes.h"
#include "src/mechanism/outcome_table.h"
#include "src/service/service.h"
#include "src/surveillance/surveillance.h"
#include "src/util/strings.h"

namespace secpol {
namespace {

// A loop body gives every surveilled evaluation a real cost, so the
// evaluation-count ratio shows up in wall time too. Only coordinate `a` is
// read, so with allow={0} every class certifies.
std::string CertifyingProgram(int k, int loop) {
  std::string params = "a";
  for (int i = 1; i < k; ++i) {
    params += ", " + std::string(1, static_cast<char>('a' + i));
  }
  return "program p(" + params + ") { locals i; i = " + std::to_string(loop) +
         "; while (i != 0) { i = i - 1; } y = a; }";
}

struct BuildCost {
  double wall_ms = 0.0;
  ClassBuildStats stats;
};

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

// One point-mode and one class-mode table build over the same sources.
// Returns (point ms, class cost); asserts completion via DoNotOptimize.
std::pair<double, BuildCost> BuildBothWays(const ProtectionMechanism& mechanism,
                                           const SecurityPolicy& policy,
                                           const InputDomain& domain,
                                           const ClassPartition& partition) {
  OutcomeTableSources sources;
  sources.mechanism = &mechanism;
  sources.policy = &policy;

  auto start = std::chrono::steady_clock::now();
  const OutcomeTable point = BuildOutcomeTable(sources, domain, CheckOptions::Serial());
  const double point_ms = MillisSince(start);
  benchmark::DoNotOptimize(point.complete());

  BuildCost classed;
  ClassSweepContext context;
  context.partition = &partition;
  context.stats = &classed.stats;
  start = std::chrono::steady_clock::now();
  const OutcomeTable table =
      BuildOutcomeTableWithClasses(sources, domain, context, CheckOptions::Serial());
  classed.wall_ms = MillisSince(start);
  benchmark::DoNotOptimize(table.complete());
  return {point_ms, classed};
}

void PrintReproduction() {
  PrintHeader("E23: equivalence-class sweeps — breaking the |D|^k wall");

  // (1) Mechanism evaluations, point vs class, as the grid grows. The
  // surveillance mechanism reads only the allowed coordinate, so the class
  // sweep runs |D| representatives however large |D|^k gets.
  {
    PrintRow({"k", "points", "evals pt", "evals cls", "fewer", "pt ms", "cls ms", "speedup"},
             {3, 8, 9, 9, 8, 9, 9, 8});
    for (const int k : {3, 4, 5, 6}) {
      const InputDomain domain = InputDomain::Range(k, -1, 2);  // 4^k points
      const VarSet allowed = VarSet::Singleton(0);
      const AllowPolicy policy(k, allowed);
      const SurveillanceMechanism mechanism(
          MustCompile(CertifyingProgram(k, 40)), allowed);
      const ClassPartition partition = PartitionByAllow(domain, allowed);
      const auto [point_ms, classed] = BuildBothWays(mechanism, policy, domain, partition);
      const double fewer =
          classed.stats.mechanism_runs > 0
              ? static_cast<double>(domain.size()) /
                    static_cast<double>(classed.stats.mechanism_runs)
              : 0.0;
      const double speedup = classed.wall_ms > 0 ? point_ms / classed.wall_ms : 0.0;
      PrintRow({std::to_string(k), std::to_string(domain.size()),
                std::to_string(domain.size()),
                std::to_string(classed.stats.mechanism_runs),
                FormatDouble(fewer, 0) + "x", FormatDouble(point_ms, 2),
                FormatDouble(classed.wall_ms, 2), FormatDouble(speedup, 1) + "x"},
               {3, 8, 9, 9, 8, 9, 9, 8});
    }
    std::printf("  (acceptance target: >= 10x fewer mechanism evaluations)\n\n");
  }

  // (2) Incremental recheck through the service's representative memo: the
  // same class job cold, again warm (result-cache hit: no checker at all),
  // and after a dead-box edit (new cache key, but every representative
  // outcome revalidates from the memo).
  {
    // A heavy loop body makes the representative evaluations the dominant
    // cost of the cold class run (64 representatives for allow{0,1,2} over
    // 4^6 points; the 4096 certified copies are nearly free). The edited
    // resubmission revalidates every memo entry — the executed boxes are
    // untouched by the dead-branch edit — and pays for none of them.
    const std::string base_text =
        "program p(a, b, c, d, e, f) { locals i; i = 2000; "
        "while (i != 0) { i = i - 1; } "
        "if (a > 50) { y = b; } else { y = a; } }";
    const std::string edited_text =
        "program p(a, b, c, d, e, f) { locals i; i = 2000; "
        "while (i != 0) { i = i - 1; } "
        "if (a > 50) { y = b - 7; } else { y = a; } }";

    CheckJobSpec spec;
    spec.id = "e23";
    spec.program_text = base_text;
    spec.allow = VarSet::FirstN(3);
    spec.sweep_mode = "class";

    ServiceConfig config;
    config.concurrency = 1;
    CheckService service(config);

    const auto run = [&](const CheckJobSpec& job) {
      const auto start = std::chrono::steady_clock::now();
      const BatchReport report = service.RunBatch({job});
      benchmark::DoNotOptimize(report.stats.completed);
      return MillisSince(start);
    };

    const double cold_ms = run(spec);
    const std::uint64_t hits_cold = service.class_memo().hits();
    const double warm_ms = run(spec);  // result-cache hit, memo untouched
    CheckJobSpec edited = spec;
    edited.program_text = edited_text;
    const double edit_ms = run(edited);  // cache miss, memo revalidates
    const std::uint64_t hits_edit = service.class_memo().hits() - hits_cold;

    PrintRow({"submission", "wall ms", "memo hits", "speedup vs cold"}, {22, 10, 10, 16});
    PrintRow({"cold", FormatDouble(cold_ms, 2), "0", "1.0x"}, {22, 10, 10, 16});
    PrintRow({"identical (cache hit)", FormatDouble(warm_ms, 3), "0",
              FormatDouble(warm_ms > 0 ? cold_ms / warm_ms : 0.0, 1) + "x"},
             {22, 10, 10, 16});
    PrintRow({"dead-box edit (memo)", FormatDouble(edit_ms, 2), std::to_string(hits_edit),
              FormatDouble(edit_ms > 0 ? cold_ms / edit_ms : 0.0, 1) + "x"},
             {22, 10, 10, 16});
    std::printf(
        "  (the edit changes the job's cache key; the memo layer below the\n"
        "   cache still reuses every representative outcome)\n");
  }
}

void BM_PointTable(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const InputDomain domain = InputDomain::Range(k, -1, 2);
  const VarSet allowed = VarSet::Singleton(0);
  const AllowPolicy policy(k, allowed);
  const SurveillanceMechanism mechanism(
      MustCompile(CertifyingProgram(k, 40)), allowed);
  OutcomeTableSources sources;
  sources.mechanism = &mechanism;
  sources.policy = &policy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildOutcomeTable(sources, domain, CheckOptions::Serial()).complete());
  }
  state.counters["points"] = static_cast<double>(domain.size());
}
BENCHMARK(BM_PointTable)->Arg(4)->Arg(6);

void BM_ClassTable(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const InputDomain domain = InputDomain::Range(k, -1, 2);
  const VarSet allowed = VarSet::Singleton(0);
  const AllowPolicy policy(k, allowed);
  const SurveillanceMechanism mechanism(
      MustCompile(CertifyingProgram(k, 40)), allowed);
  const ClassPartition partition = PartitionByAllow(domain, allowed);
  OutcomeTableSources sources;
  sources.mechanism = &mechanism;
  sources.policy = &policy;
  for (auto _ : state) {
    ClassSweepContext context;
    context.partition = &partition;
    benchmark::DoNotOptimize(
        BuildOutcomeTableWithClasses(sources, domain, context, CheckOptions::Serial())
            .complete());
  }
  state.counters["points"] = static_cast<double>(domain.size());
}
BENCHMARK(BM_ClassTable)->Arg(4)->Arg(6);

void BM_ClassMemoLookup(benchmark::State& state) {
  ClassMemo memo;
  Fingerprinter fp;
  fp.Tag("bench");
  const Fingerprint context = fp.Digest();
  ClassMemo::Entry entry;
  entry.outcome = Outcome::Val(1, 1);
  memo.Insert(context, 0, entry);
  for (auto _ : state) {
    benchmark::DoNotOptimize(memo.Lookup(context, 0).has_value());
  }
}
BENCHMARK(BM_ClassMemoLookup);

}  // namespace
}  // namespace secpol

SECPOL_BENCH_MAIN(secpol::PrintReproduction)
