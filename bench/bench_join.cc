// E11 — Theorems 1 and 2: the join of sound mechanisms.
//
// Reproduces: joining sound mechanisms preserves soundness and only grows
// completeness (Theorem 1); join-closure over the library's mechanism zoo
// climbs toward — but need not reach — the finite maximal mechanism
// (Theorem 2 guarantees the ceiling exists).
//
// Benchmark: join run cost as a function of member count.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_util.h"
#include "src/corpus/generator.h"
#include "src/flowlang/lower.h"
#include "src/mechanism/completeness.h"
#include "src/mechanism/maximal.h"
#include "src/mechanism/soundness.h"
#include "src/policy/policy.h"
#include "src/staticflow/static_mechanisms.h"
#include "src/surveillance/surveillance.h"
#include "src/transforms/advisor.h"
#include "src/util/strings.h"

namespace secpol {
namespace {

void PrintReproduction() {
  PrintHeader("E11: join ladder — mean utility as sound mechanisms are joined (40 programs)");
  CorpusConfig config;
  config.num_inputs = 2;
  const auto corpus = MakeCorpus(config, 40, 14000);
  const VarSet allowed{0};
  const AllowPolicy policy(2, allowed);
  const InputDomain domain = InputDomain::Uniform(2, {0, 1, 2});

  double u_hw = 0, u_join2 = 0, u_join3 = 0, u_join4 = 0, u_max = 0;
  int all_sound = 0;
  for (const SourceProgram& s : corpus) {
    const Program q = Lower(s);
    auto hw = std::make_shared<SurveillanceMechanism>(
        Program(q), allowed, TimingMode::kTimeUnobservable, LabelDiscipline::kHighWater);
    auto ms = std::make_shared<SurveillanceMechanism>(Program(q), allowed);
    auto residual = std::make_shared<ResidualGuardMechanism>(Program(q), allowed,
                                                             PcDiscipline::kScopedPc);
    // A fourth member: surveillance over the advisor's best rewriting.
    const AdvisorReport advice = AdviseTransforms(s, allowed, domain);
    auto advised = std::make_shared<SurveillanceMechanism>(Lower(advice.best().program),
                                                           allowed);

    const auto join2 = Join(hw, ms);
    const auto join3 = Join(join2, residual);
    const auto join4 = Join(join3, advised);

    u_hw += MeasureUtility(*hw, domain);
    u_join2 += MeasureUtility(*join2, domain);
    u_join3 += MeasureUtility(*join3, domain);
    u_join4 += MeasureUtility(*join4, domain);

    const ProgramAsMechanism bare{Program(q)};
    u_max += MeasureUtility(
        *SynthesizeMaximalMechanism(bare, policy, domain, Observability::kValueOnly).mechanism,
        domain);

    if (CheckSoundness(*join4, policy, domain, Observability::kValueOnly).sound) {
      ++all_sound;
    }
  }
  const double n = static_cast<double>(corpus.size());
  PrintRow({"mechanism", "mean utility"}, {38, 12});
  PrintRow({"high-water", FormatDouble(u_hw / n, 3)}, {38, 12});
  PrintRow({"v surveillance", FormatDouble(u_join2 / n, 3)}, {38, 12});
  PrintRow({"v residual guard", FormatDouble(u_join3 / n, 3)}, {38, 12});
  PrintRow({"v advised-transform surveillance", FormatDouble(u_join4 / n, 3)}, {38, 12});
  PrintRow({"finite maximal (ceiling, Thm 2)", FormatDouble(u_max / n, 3)}, {38, 12});
  PrintRow({"4-way joins sound (Thm 1)", std::to_string(all_sound) + "/40"}, {38, 12});
  std::printf(
      "\n  Expected: utility is monotone along the join ladder, every join is sound,\n"
      "  and the ladder approaches but need not reach the maximal ceiling.\n");
}

void BM_JoinRun(benchmark::State& state) {
  CorpusConfig config;
  config.num_inputs = 2;
  const Program q = Lower(GenerateProgram(config, 21, "bench"));
  const VarSet allowed{0};
  std::vector<std::shared_ptr<const ProtectionMechanism>> members;
  for (int i = 0; i < state.range(0); ++i) {
    members.push_back(std::make_shared<SurveillanceMechanism>(Program(q), allowed));
  }
  const JoinMechanism join(members);
  const Input input = {1, 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(join.Run(input).kind);
  }
  state.counters["members"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_JoinRun)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace secpol

SECPOL_BENCH_MAIN(secpol::PrintReproduction)
