// E6 — the Observability Postulate and the timing channel.
//
// Reproduces Section 2's loop example: a constant program whose running time
// reveals its secret input, sound for value-only observation and unsound
// once steps are observable; and Theorem 3''s fix. The leak is quantified in
// bits per run with the channels module.
//
// Benchmarks: per-run cost of M vs M' (the price of timing safety).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/channels/timing.h"
#include "src/flowlang/lower.h"
#include "src/mechanism/soundness.h"
#include "src/policy/policy.h"
#include "src/surveillance/surveillance.h"
#include "src/util/strings.h"

namespace secpol {
namespace {

Program LoopProgram() {
  return MustCompile(
      "program loop(sec) { locals c; c = sec; while (c != 0) { c = c - 1; } y = 1; }");
}

void PrintReproduction() {
  PrintHeader("E6: the while-x!=0 program, policy allow() — nothing about sec may leak");
  const Program q = LoopProgram();
  const AllowPolicy policy = AllowPolicy::AllowNone(1);
  const InputDomain domain = InputDomain::Range(1, 0, 15);

  struct Entry {
    std::string name;
    const ProtectionMechanism& m;
  };
  const ProgramAsMechanism bare{Program(q)};
  const SurveillanceMechanism m = MakeSurveillanceM(Program(q), VarSet::Empty());
  const SurveillanceMechanism mp = MakeSurveillanceMPrime(Program(q), VarSet::Empty());

  PrintRow({"mechanism", "sound(value)", "sound(value+time)", "leak bits (w/ time)"},
           {26, 14, 18, 20});
  for (const Entry& e : {Entry{"bare program", bare}, Entry{"surveillance M", m},
                         Entry{"surveillance M'", mp}}) {
    const bool sv =
        CheckSoundness(e.m, policy, domain, Observability::kValueOnly).sound;
    const bool st =
        CheckSoundness(e.m, policy, domain, Observability::kValueAndTime).sound;
    const LeakReport leak = MeasureLeak(e.m, policy, domain, Observability::kValueAndTime);
    PrintRow({e.name, sv ? "yes" : "NO", st ? "yes" : "NO",
              FormatDouble(leak.max_leak_bits, 2)},
             {26, 14, 18, 20});
  }
  std::printf(
      "\n  Paper: the bare constant program looks sound until time is observable\n"
      "  (the Observability Postulate); M inherits the timing channel through the\n"
      "  moment its violation notice appears; M' aborts before the first disallowed\n"
      "  test and is sound even with time observable (Theorem 3').\n");

  PrintHeader("Timing-channel capacity vs secret range (bare program)");
  PrintRow({"secret range", "distinct timings", "bits/run"}, {14, 18, 10});
  for (const Value hi : {1, 3, 7, 15, 31}) {
    const InputDomain d = InputDomain::Range(1, 0, hi);
    const LeakReport leak = MeasureLeak(bare, policy, d, Observability::kValueAndTime);
    PrintRow({std::to_string(hi + 1), std::to_string(leak.max_distinct_outcomes),
              FormatDouble(leak.max_leak_bits, 2)},
             {14, 18, 10});
  }
  std::printf("  Expected: log2(range) bits — the timing channel is lossless here.\n");
}

void BM_PlainM(benchmark::State& state) {
  const Program q = LoopProgram();
  const SurveillanceMechanism m = MakeSurveillanceM(Program(q), VarSet::Empty());
  const Input input = {state.range(0)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.Run(input).kind);
  }
}
BENCHMARK(BM_PlainM)->Arg(10)->Arg(1000);

void BM_TimingSafeMPrime(benchmark::State& state) {
  const Program q = LoopProgram();
  const SurveillanceMechanism m = MakeSurveillanceMPrime(Program(q), VarSet::Empty());
  const Input input = {state.range(0)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.Run(input).kind);
  }
}
// M' aborts at the first disallowed test: constant cost regardless of the
// secret — compare against BM_PlainM growing with it.
BENCHMARK(BM_TimingSafeMPrime)->Arg(10)->Arg(1000);

}  // namespace
}  // namespace secpol

SECPOL_BENCH_MAIN(secpol::PrintReproduction)
