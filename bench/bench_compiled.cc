// E24 — the compiled surveillance fast path (DESIGN.md §15, ROADMAP item 3):
// ns/point of the interpreted reference vs the compiled mechanism vs the SoA
// block evaluator, on the loop-bearing configurations of E19 (the 512-point
// audit grid) and E13's example family (short branchy programs), plus the
// end-to-end audit job in both exec modes.
//
// What the fast path removes from the per-point loop: AST pointer chasing,
// a VarSet vector allocation per run, std::function dispatch, and (in the
// block evaluator) per-point scratch setup — reduced to two memsets and an
// input scatter against a register file reused across the whole shard. The
// acceptance target is a >= 5x ns/point reduction on the E13/E19
// configurations; byte-identity of every report is locked separately by
// tests/compiled_test.cc, the scenario matrix's exec axis, and the fuzzer's
// compiled-vs-interpreted oracle — this binary only measures.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/flowlang/lower.h"
#include "src/mechanism/domain.h"
#include "src/service/job.h"
#include "src/surveillance/compiled.h"
#include "src/surveillance/surveillance.h"
#include "src/util/strings.h"

namespace secpol {
namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

// E19's audit workload: a 100-iteration loop body over a 512-point grid.
Program E19Program() {
  return MustCompile(
      "program p(a, b, c) { locals i; i = 100; while (i != 0) { i = i - 1; } "
      "y = a + b; }");
}

// E13's example family: Example 9's branchy shape (short runs, dispatch
// overhead dominates) over the canonical table domain.
Program E13Program() {
  return MustCompile(
      "program ex9(x1, x2) { locals r; if (x1 == 0) { r = 0; } else { r = x2; } y = r; }");
}

struct Config {
  const char* label;
  Program program;
  VarSet allowed;
  InputDomain domain;
};

// ns/point over `repeat` full sweeps of the domain, interpreted vs compiled
// (virtual Run per point, thread_local scratch) vs the SoA block evaluator.
void MeasureConfig(const Config& config) {
  const SurveillanceMechanism interpreted(config.program, config.allowed);
  const CompiledSurveillanceMechanism compiled(config.program, config.allowed);
  const std::uint64_t points = config.domain.size();

  // SoA columns in rank order for the block entry point.
  std::vector<std::vector<Value>> columns(
      static_cast<std::size_t>(config.program.num_inputs()));
  config.domain.ForEach([&](InputView input) {
    for (std::size_t i = 0; i < columns.size(); ++i) {
      columns[i].push_back(input[i]);
    }
  });

  // Each mode is measured as the median of five rounds of `repeat` full
  // sweeps: the box this runs on sees multi-x interference spikes, and a
  // median round is robust to them without favouring either side.
  const int repeat = 8;
  const auto median_round = [&](const auto& one_round) {
    std::vector<double> rounds;
    for (int i = 0; i < 5; ++i) {
      const auto start = std::chrono::steady_clock::now();
      for (int r = 0; r < repeat; ++r) {
        one_round();
      }
      rounds.push_back(MillisSince(start) * 1e6 / static_cast<double>(points * repeat));
    }
    std::sort(rounds.begin(), rounds.end());
    return rounds[rounds.size() / 2];
  };
  const auto sweep_ns = [&](const ProtectionMechanism& mechanism) {
    return median_round([&] {
      config.domain.ForEach(
          [&](InputView input) { benchmark::DoNotOptimize(mechanism.Run(input).steps); });
    });
  };

  const double interp_ns = sweep_ns(interpreted);
  const double compiled_ns = sweep_ns(compiled);

  BcScratch scratch;
  std::vector<Outcome> block(points);
  const double block_ns = median_round([&] {
    RunCompiledBlock(compiled.compiled(), columns, 0, points, scratch, block);
    benchmark::DoNotOptimize(block.back().steps);
  });

  PrintRow({config.label, std::to_string(points), FormatDouble(interp_ns, 0),
            FormatDouble(compiled_ns, 0),
            FormatDouble(compiled_ns > 0 ? interp_ns / compiled_ns : 0.0, 1) + "x",
            FormatDouble(block_ns, 0),
            FormatDouble(block_ns > 0 ? interp_ns / block_ns : 0.0, 1) + "x"},
           {10, 8, 10, 10, 8, 10, 8});
}

void PrintReproduction() {
  PrintHeader("E24: the compiled surveillance fast path — ns/point vs the interpreter");

  PrintRow({"config", "points", "interp", "compiled", "faster", "block", "faster"},
           {10, 8, 10, 10, 8, 10, 8});
  MeasureConfig({"E19-audit", E19Program(), VarSet::Singleton(0),
                 InputDomain::Range(3, 0, 7)});
  MeasureConfig({"E13-ex9", E13Program(), VarSet::Singleton(0),
                 InputDomain::Range(2, -8, 7)});
  std::printf("  (ns/point; acceptance target: >= 5x on both configurations)\n\n");

  // End-to-end: the full E19-style audit job in both exec modes. The win is
  // diluted by the checkers' own reduction work but must survive the trip
  // through the job layer.
  {
    CheckJobSpec spec;
    spec.id = "e24";
    spec.checker = CheckerKind::kAudit;
    spec.program_text =
        "program p(a, b, c) { locals i; i = 100; while (i != 0) { i = i - 1; } y = a + b; }";
    spec.allow = VarSet::Singleton(0);
    spec.allow2 = VarSet::FirstN(3);
    spec.grid_lo = 0;
    spec.grid_hi = 7;

    const auto run_ms = [&](const std::string& exec_mode) {
      CheckJobSpec job = spec;
      job.exec_mode = exec_mode;
      const auto start = std::chrono::steady_clock::now();
      const JobResult result = ExecuteJob(job);
      benchmark::DoNotOptimize(result.exit_code);
      return MillisSince(start);
    };
    run_ms("interpreted");  // warm-up: fault tables, allocators
    const double interp_ms = run_ms("interpreted");
    const double compiled_ms = run_ms("compiled");
    PrintRow({"audit job", "interp ms", "compiled ms", "faster"}, {10, 10, 12, 8});
    PrintRow({"512-pt", FormatDouble(interp_ms, 2), FormatDouble(compiled_ms, 2),
              FormatDouble(compiled_ms > 0 ? interp_ms / compiled_ms : 0.0, 1) + "x"},
             {10, 10, 12, 8});
  }
}

void BM_InterpretedSweep(benchmark::State& state) {
  const Program program = E19Program();
  const SurveillanceMechanism mechanism(program, VarSet::Singleton(0));
  const InputDomain domain = InputDomain::Range(3, 0, 7);
  for (auto _ : state) {
    domain.ForEach(
        [&](InputView input) { benchmark::DoNotOptimize(mechanism.Run(input).steps); });
  }
  state.counters["points"] = static_cast<double>(domain.size());
}
BENCHMARK(BM_InterpretedSweep);

void BM_CompiledSweep(benchmark::State& state) {
  const Program program = E19Program();
  const CompiledSurveillanceMechanism mechanism(program, VarSet::Singleton(0));
  const InputDomain domain = InputDomain::Range(3, 0, 7);
  for (auto _ : state) {
    domain.ForEach(
        [&](InputView input) { benchmark::DoNotOptimize(mechanism.Run(input).steps); });
  }
  state.counters["points"] = static_cast<double>(domain.size());
}
BENCHMARK(BM_CompiledSweep);

void BM_CompiledBlockSweep(benchmark::State& state) {
  const Program program = E19Program();
  const CompiledSurveillanceMechanism mechanism(program, VarSet::Singleton(0));
  const InputDomain domain = InputDomain::Range(3, 0, 7);
  std::vector<std::vector<Value>> columns(3);
  domain.ForEach([&](InputView input) {
    for (std::size_t i = 0; i < columns.size(); ++i) {
      columns[i].push_back(input[i]);
    }
  });
  BcScratch scratch;
  std::vector<Outcome> block(domain.size());
  for (auto _ : state) {
    RunCompiledBlock(mechanism.compiled(), columns, 0, domain.size(), scratch, block);
    benchmark::DoNotOptimize(block.back().steps);
  }
  state.counters["points"] = static_cast<double>(domain.size());
}
BENCHMARK(BM_CompiledBlockSweep);

}  // namespace
}  // namespace secpol

SECPOL_BENCH_MAIN(secpol::PrintReproduction)
