// E4 — Example 1: Fenton's data-mark machine and the negative-inference
// leak in the guarded-halt semantics.
//
// Reproduces the paper's adjudication of the three candidate semantics for
// "if P = null then halt": skip-when-priv (sound on the witness, but
// undefined at program end), error-when-priv (unsound — the notice leaks
// whether x == 0), and the repaired machine that joins P into the release
// decision at every halt.
//
// Benchmark: data-mark machine throughput vs the bare Minsky machine.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/mechanism/soundness.h"
#include "src/minsky/data_mark.h"
#include "src/minsky/minsky.h"
#include "src/policy/policy.h"

namespace secpol {
namespace {

void PrintReproduction() {
  PrintHeader("E4: Example 1 — guarded-halt semantics on the negative-inference witness");
  const MinskyProgram witness = MakeNegativeInferenceWitness();
  const InputDomain domain = InputDomain::Range(1, 0, 5);
  const AllowPolicy policy = AllowPolicy::AllowNone(1);

  struct Variant {
    std::string name;
    GuardedHaltSemantics semantics;
    bool check_pc;
  };
  PrintRow({"halt semantics", "M(0)", "M(3)", "sound"}, {30, 12, 12, 7});
  for (const Variant& v : {
           Variant{"(a) skip when P = priv", GuardedHaltSemantics::kSkipWhenPriv, false},
           Variant{"(b) error when P = priv", GuardedHaltSemantics::kErrorWhenPriv, false},
           Variant{"repaired: halt joins P", GuardedHaltSemantics::kErrorWhenPriv, true},
       }) {
    DataMarkConfig config;
    config.priv_registers = VarSet{0};
    config.guarded_halt = v.semantics;
    config.check_pc_at_halt = v.check_pc;
    const DataMarkMachine m(witness, config);
    const auto report = CheckSoundness(m, policy, domain, Observability::kValueOnly);
    auto show = [&](Value x) {
      const Outcome o = m.Run(Input{x});
      return o.IsValue() ? "value " + std::to_string(o.value) : std::string("NOTICE");
    };
    PrintRow({v.name, show(0), show(3), report.sound ? "yes" : "NO"}, {30, 12, 12, 7});
  }
  std::printf(
      "\n  Paper: under interpretation (b) \"a program can be written that will output\n"
      "  an error message if and only if x = 0\" — the Holmes/Doyle negative\n"
      "  inference. The repaired machine is uniform, hence sound.\n");

  PrintHeader("Sanity: the data-mark machine still computes (marks off)");
  PrintRow({"machine", "inputs", "output"}, {10, 10, 8});
  DataMarkConfig clean;
  const DataMarkMachine add(MakeAddProgram(), clean);
  const DataMarkMachine mn(MakeMinProgram(), clean);
  PrintRow({"add", "(3, 4)", std::to_string(add.Run(Input{3, 4}).value)}, {10, 10, 8});
  PrintRow({"min", "(5, 2)", std::to_string(mn.Run(Input{5, 2}).value)}, {10, 10, 8});
}

void BM_BareMinsky(benchmark::State& state) {
  const MinskyProgram add = MakeAddProgram();
  const Input input = {static_cast<Value>(state.range(0)), static_cast<Value>(state.range(0))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunMinsky(add, input).output);
  }
}
BENCHMARK(BM_BareMinsky)->Arg(16)->Arg(256);

void BM_DataMarkMachine(benchmark::State& state) {
  DataMarkConfig config;
  config.priv_registers = VarSet{1};
  const DataMarkMachine m(MakeAddProgram(), config);
  const Input input = {static_cast<Value>(state.range(0)), static_cast<Value>(state.range(0))};
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.Run(input).kind);
  }
}
// The mark machinery should cost a small constant factor over the bare
// machine — the classic tagged-architecture overhead.
BENCHMARK(BM_DataMarkMachine)->Arg(16)->Arg(256);

}  // namespace
}  // namespace secpol

SECPOL_BENCH_MAIN(secpol::PrintReproduction)
