// E2 — Example 5's logon program and the page-boundary password attack.
//
// Reproduces: the logon program is unsound for allow(uid, pw) but leaks
// "little"; and the closing Section 2 war story — "the work factor can be
// reduced to n * K by appropriately placing candidate passwords across page
// boundaries and observing page movement."
//
// Benchmark: oracle calls (complexity counters) for both attacks.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bench/bench_util.h"
#include "src/channels/password_attack.h"
#include "src/mechanism/soundness.h"
#include "src/monitor/logon.h"
#include "src/policy/policy.h"
#include "src/util/strings.h"

namespace secpol {
namespace {

std::vector<int> WorstSecret(int k, int n) {
  return std::vector<int>(static_cast<size_t>(k), n - 1);
}

void PrintReproduction() {
  PrintHeader("E2a: Example 5 — logon as its own mechanism, allow(uid, pw)");
  const auto logon = MakeLogonProgram(2, 2);
  const AllowPolicy policy = MakeLogonPolicy();
  const InputDomain domain = InputDomain::PerInput({{0, 1}, {0, 1, 2, 3}, {0, 1}});
  const auto report = CheckSoundness(*logon, policy, domain, Observability::kValueOnly);
  PrintRow({"mechanism", "verdict", "policy classes"}, {12, 10, 15});
  PrintRow({"logon", report.sound ? "SOUND" : "UNSOUND", std::to_string(report.policy_classes)},
           {12, 10, 15});
  std::printf(
      "  Paper: unsound — yet \"workable in practice [because] the amount of\n"
      "  information obtained by the user is small\" (one accept/reject bit).\n");

  PrintHeader("E2b: work factor — brute force n^k vs page-boundary attack n*k");
  PrintRow({"k", "n", "n^k", "brute guesses", "page guesses", "speedup"},
           {4, 4, 12, 14, 13, 10});
  for (const auto& [k, n] : std::vector<std::pair<int, int>>{
           {2, 4}, {3, 4}, {4, 4}, {5, 4}, {6, 4}, {4, 8}, {4, 16}}) {
    const std::uint64_t space = static_cast<std::uint64_t>(std::pow(n, k));

    PasswordChecker brute_victim(WorstSecret(k, n), n);
    const AttackResult brute = BruteForceAttack(brute_victim, space + 1);

    PasswordChecker page_victim(WorstSecret(k, n), n);
    const AttackResult page = PageBoundaryAttack(page_victim);

    PrintRow({std::to_string(k), std::to_string(n), std::to_string(space),
              std::to_string(brute.guesses), std::to_string(page.guesses),
              FormatDouble(static_cast<double>(brute.guesses) /
                               static_cast<double>(page.guesses),
                           1) +
                  "x"},
             {4, 4, 12, 14, 13, 10});
  }
  std::printf(
      "\n  Expected shape: brute force grows as n^k, the paging attack as n*k —\n"
      "  the observable the designers forgot (page movement) collapses the search.\n");
}

void BM_BruteForce(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int n = 4;
  const std::uint64_t space = static_cast<std::uint64_t>(std::pow(n, k));
  for (auto _ : state) {
    PasswordChecker victim(WorstSecret(k, n), n);
    benchmark::DoNotOptimize(BruteForceAttack(victim, space + 1).guesses);
  }
  state.counters["oracle_calls"] = static_cast<double>(space);
}
BENCHMARK(BM_BruteForce)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

void BM_PageBoundaryAttack(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int n = 4;
  for (auto _ : state) {
    PasswordChecker victim(WorstSecret(k, n), n);
    benchmark::DoNotOptimize(PageBoundaryAttack(victim).guesses);
  }
  state.counters["oracle_calls"] = static_cast<double>(n * k);
}
BENCHMARK(BM_PageBoundaryAttack)->Arg(2)->Arg(4)->Arg(6)->Arg(8)->Arg(16)->Arg(32);

}  // namespace
}  // namespace secpol

SECPOL_BENCH_MAIN(secpol::PrintReproduction)
