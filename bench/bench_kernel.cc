// E17 — the resource-usage covert channel (and its mitigation).
//
// "Our model is useful for modeling phenomena ignored in other models — such
// as running time or page faults. ... in a general-purpose operating system
// information can be passed via resource usage patterns."
//
// The table transmits secrets of growing width through the shared buffer
// pool under both accounting modes; the benchmark measures channel
// throughput (bits per scheduling round are fixed by construction, so the
// interesting number is wall-clock per transmitted bit).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/monitor/kernel.h"
#include "src/util/strings.h"

namespace secpol {
namespace {

void PrintReproduction() {
  PrintHeader("E17: resource covert channel — shared buffer pool, 2 bits/round");
  PrintRow({"secret bits", "accounting", "sent", "recovered", "leak"}, {12, 13, 8, 10, 6});
  for (const int bits : {4, 8, 12, 16}) {
    const Value secret = 0x2F9C7 & ((Value{1} << bits) - 1);
    for (const ResourceAccounting accounting :
         {ResourceAccounting::kGlobalAccounting, ResourceAccounting::kPartitionedAccounting}) {
      const Value recovered = RunCovertChannel(secret, bits, accounting);
      PrintRow({std::to_string(bits), ResourceAccountingName(accounting),
                std::to_string(secret), std::to_string(recovered),
                recovered == secret ? "FULL" : "none"},
               {12, 13, 8, 10, 6});
    }
  }
  std::printf(
      "\n  Global accounting: the pool-wide free count is an observable the policy\n"
      "  forgot — the receiver reconstructs every secret bit-exactly. Partitioned\n"
      "  accounting removes the shared observable and the channel closes. Same\n"
      "  diagnosis as the paper's page-fault story: enumerate your observables.\n");
}

void BM_CovertTransmission(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  const Value secret = 0x12345678 & ((Value{1} << bits) - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RunCovertChannel(secret, bits, ResourceAccounting::kGlobalAccounting));
  }
  state.counters["bits"] = bits;
}
BENCHMARK(BM_CovertTransmission)->Arg(8)->Arg(16)->Arg(24);

void BM_KernelRound(benchmark::State& state) {
  for (auto _ : state) {
    MiniKernel kernel(8, ResourceAccounting::kGlobalAccounting);
    kernel.Spawn("a", [](ProcessContext& ctx) {
      ctx.AllocBuffer();
      return ctx.Round() < 8;
    });
    kernel.Spawn("b", [](ProcessContext& ctx) { return ctx.Round() < 8; });
    benchmark::DoNotOptimize(kernel.RunUntilIdle());
  }
}
BENCHMARK(BM_KernelRound);

}  // namespace
}  // namespace secpol

SECPOL_BENCH_MAIN(secpol::PrintReproduction)
