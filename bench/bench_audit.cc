// E19 — the multi-check audit: six checks for the price of one sweep.
//
// Run standalone, the six extensional checkers re-evaluate their sources per
// grid point: the checked mechanism is swept five times (soundness,
// integrity, completeness, maximal tabulation, leak) and the comparison
// mechanism once more. CheckAll builds one shared OutcomeTable — each
// mechanism outcome and policy image computed exactly once per point — and
// feeds six table-backed reducers from it, with every completed sub-report
// byte-identical to its standalone checker's (tests/audit_test.cc locks
// that). With evaluation cost c1 for the checked mechanism and c2 for the
// comparand, the expected win is (5*c1 + c2) / (c1 + c2): >= 3x whenever
// c1 >= c2, approaching 5x as the checked mechanism dominates. This bench
// measures the actual ratio on a loop-bearing program where evaluation is
// honest work, serial and parallel.
//
// Acceptance target: audit >= 3x faster than the six standalone checkers
// back-to-back on the same grid.

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/channels/timing.h"
#include "src/flowlang/lower.h"
#include "src/flowlang/parser.h"
#include "src/mechanism/check_options.h"
#include "src/mechanism/completeness.h"
#include "src/mechanism/domain.h"
#include "src/mechanism/integrity.h"
#include "src/mechanism/maximal.h"
#include "src/mechanism/mechanism.h"
#include "src/mechanism/policy_compare.h"
#include "src/mechanism/soundness.h"
#include "src/policy/policy.h"
#include "src/service/audit.h"
#include "src/surveillance/surveillance.h"
#include "src/util/strings.h"
#include "src/util/thread_pool.h"

namespace secpol {
namespace {

// A loop gives every evaluation a real cost, so the measured ratio reflects
// sweep work, not reducer bookkeeping.
Program MakeProgram() {
  const char* text =
      "program p(a, b, c) { locals i; i = 100; while (i != 0) { i = i - 1; } "
      "y = a + b * c; }";
  return Lower(ParseProgram(text).value());
}

struct Fixture {
  Program program = MakeProgram();
  SurveillanceMechanism checked{Program(program), VarSet{0}};
  ProgramAsMechanism comparand{Program(program)};
  AllowPolicy policy{3, VarSet{0}};
  AllowPolicy policy2{3, VarSet{0, 1}};
  InputDomain domain = InputDomain::Range(3, 0, 7);  // 512 points
};

// The six standalone checkers, back-to-back, exactly as six separate CLI
// invocations or batch jobs would run them.
void RunStandalone(const Fixture& f, const CheckOptions& options) {
  const Observability obs = Observability::kValueOnly;
  benchmark::DoNotOptimize(
      CheckSoundness(f.checked, f.policy, f.domain, obs, options).inputs_checked);
  benchmark::DoNotOptimize(
      CheckInformationPreservation(f.checked, f.policy, f.domain, obs, options)
          .inputs_checked);
  benchmark::DoNotOptimize(
      CompareCompleteness(f.checked, f.comparand, f.domain, options).both_value);
  benchmark::DoNotOptimize(
      SynthesizeMaximalMechanism(f.checked, f.policy, f.domain, obs, options).inputs);
  benchmark::DoNotOptimize(
      ComparePolicyDisclosure(f.policy, f.policy2, f.domain, options).reveals_at_most);
  benchmark::DoNotOptimize(MeasureLeak(f.checked, f.policy, f.domain, obs, options).policy_classes);
}

void RunAudit(const Fixture& f, const CheckOptions& options) {
  benchmark::DoNotOptimize(CheckAll(f.checked, f.comparand, f.policy, f.policy2, f.domain,
                                    Observability::kValueOnly, options)
                               .EvaluatedPoints());
}

template <typename Fn>
double MinMillis(const Fn& fn, int trials) {
  double best = 1e300;
  for (int t = 0; t < trials; ++t) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const double ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
            .count();
    if (ms < best) best = ms;
  }
  return best;
}

void PrintReproduction() {
  PrintHeader("E19: multi-check audit — one shared sweep vs six standalone checkers");
  std::printf("  host hardware threads: %d\n\n", ThreadPool::HardwareThreads());

  const Fixture f;
  std::printf("  grid: %llu points, surveillance vs bare over a 100-iteration loop body\n\n",
              static_cast<unsigned long long>(f.domain.size()));

  PrintRow({"threads", "six standalone ms", "audit ms", "speedup"}, {8, 18, 10, 8});
  for (const int threads : {1, 2, 4}) {
    const CheckOptions options = CheckOptions::Threads(threads);
    const double standalone_ms = MinMillis([&] { RunStandalone(f, options); }, 5);
    const double audit_ms = MinMillis([&] { RunAudit(f, options); }, 5);
    PrintRow({std::to_string(threads), FormatDouble(standalone_ms, 2),
              FormatDouble(audit_ms, 2), FormatDouble(standalone_ms / audit_ms, 2)},
             {8, 18, 10, 8});
  }
  std::printf("\n  acceptance target: audit >= 3x faster than the six standalone checks\n");
}

void BM_SixStandaloneChecks(benchmark::State& state) {
  const Fixture f;
  const CheckOptions options = CheckOptions::Threads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    RunStandalone(f, options);
  }
}
BENCHMARK(BM_SixStandaloneChecks)->Arg(1)->Arg(4);

void BM_AuditSharedTable(benchmark::State& state) {
  const Fixture f;
  const CheckOptions options = CheckOptions::Threads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    RunAudit(f, options);
  }
}
BENCHMARK(BM_AuditSharedTable)->Arg(1)->Arg(4);

}  // namespace
}  // namespace secpol

SECPOL_BENCH_MAIN(secpol::PrintReproduction)
