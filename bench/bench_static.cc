// E14 — Section 5: compile-time vs run-time enforcement.
//
// Reproduces: "Using static techniques to produce programs would result in
// efficient security enforcement. Of course, this requires that the security
// policy be known at compile time ... A different compilation would be
// required for each different security policy."
//
// The table reports, over a corpus: how often each static analysis
// certifies, the utility of static vs dynamic mechanisms, and the
// amortization story — certification is paid once, surveillance is paid on
// every run. Benchmarks measure both costs.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/corpus/generator.h"
#include "src/flowchart/interpreter.h"
#include "src/flowlang/lower.h"
#include "src/mechanism/completeness.h"
#include "src/policy/policy.h"
#include "src/staticflow/analysis.h"
#include "src/staticflow/static_mechanisms.h"
#include "src/surveillance/surveillance.h"
#include "src/util/strings.h"

namespace secpol {
namespace {

void PrintReproduction() {
  PrintHeader("E14: static certification vs dynamic surveillance (80 programs, allow(0) of 2)");
  CorpusConfig config;
  config.num_inputs = 2;
  const auto corpus = MakeCorpus(config, 80, 15000);
  const VarSet allowed{0};
  const InputDomain domain = InputDomain::Uniform(2, {0, 1, 2});

  int certified_mono = 0, certified_scoped = 0;
  double u_cert = 0, u_residual = 0, u_surv = 0;
  for (const SourceProgram& s : corpus) {
    const Program q = Lower(s);
    const StaticCertifiedMechanism mono(Program(q), allowed, PcDiscipline::kMonotonePc);
    const StaticCertifiedMechanism scoped(Program(q), allowed, PcDiscipline::kScopedPc);
    certified_mono += mono.certified() ? 1 : 0;
    certified_scoped += scoped.certified() ? 1 : 0;
    u_cert += MeasureUtility(scoped, domain);
    u_residual += MeasureUtility(
        ResidualGuardMechanism(Program(q), allowed, PcDiscipline::kScopedPc), domain);
    u_surv += MeasureUtility(MakeSurveillanceM(Program(q), allowed), domain);
  }
  const double n = static_cast<double>(corpus.size());
  PrintRow({"metric", "value"}, {42, 12});
  PrintRow({"certified, monotone-pc analysis", std::to_string(certified_mono) + "/80"},
           {42, 12});
  PrintRow({"certified, scoped-pc analysis", std::to_string(certified_scoped) + "/80"},
           {42, 12});
  PrintRow({"mean utility: certify-or-plug (scoped)", FormatDouble(u_cert / n, 3)}, {42, 12});
  PrintRow({"mean utility: residual guard (scoped)", FormatDouble(u_residual / n, 3)},
           {42, 12});
  PrintRow({"mean utility: dynamic surveillance", FormatDouble(u_surv / n, 3)}, {42, 12});
  std::printf(
      "\n  Expected shape: the scoped analysis certifies at least as often as the\n"
      "  monotone one. Static-scoped and dynamic surveillance are incomparable:\n"
      "  the scoped analysis forgets pc taint at join points (safe only because it\n"
      "  examines every path, which no sound dynamic monitor can mimic — see E16),\n"
      "  while surveillance releases input-dependently but drags its monotone\n"
      "  C-bar to the halt. Dynamic enforcement also pays label tracking on every\n"
      "  run, which the benchmarks below quantify.\n");
}

Program BenchProgram() {
  CorpusConfig config;
  config.num_inputs = 2;
  config.max_block_len = 6;
  return Lower(GenerateProgram(config, 31337, "bench"));
}

void BM_CertifyOnce(benchmark::State& state) {
  const Program q = BenchProgram();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        AnalyzeInformationFlow(q, PcDiscipline::kScopedPc).program_release_label.bits());
  }
}
BENCHMARK(BM_CertifyOnce);

void BM_CertifiedRun(benchmark::State& state) {
  // After certification: a plain interpreter run, zero enforcement overhead.
  const Program q = BenchProgram();
  const Input input = {1, 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunProgram(q, input).output);
  }
}
BENCHMARK(BM_CertifiedRun);

void BM_SurveilledRun(benchmark::State& state) {
  const Program q = BenchProgram();
  const SurveillanceMechanism m = MakeSurveillanceM(Program(q), VarSet{0});
  const Input input = {1, 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.Run(input).kind);
  }
}
// The per-run price of dynamic enforcement; certified runs avoid it but
// give up surveillance's input-dependent completeness.
BENCHMARK(BM_SurveilledRun);

}  // namespace
}  // namespace secpol

SECPOL_BENCH_MAIN(secpol::PrintReproduction)
