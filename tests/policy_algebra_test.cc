// Tests for policy comparison (RevealsAtMost), the product policy, and the
// aggregate-sum policy — including the antitonicity of soundness in
// disclosure and Theorem 2 machinery on a beyond-allow policy.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "src/flowlang/lower.h"
#include "src/mechanism/maximal.h"
#include "src/mechanism/policy_compare.h"
#include "src/mechanism/soundness.h"
#include "src/policy/policy.h"
#include "src/policy/refinement.h"
#include "src/surveillance/surveillance.h"

namespace secpol {
namespace {

TEST(RevealsAtMostTest, AllowPoliciesOrderBySubset) {
  const InputDomain domain = InputDomain::Range(3, 0, 2);
  const VarSet sets[] = {VarSet::Empty(), VarSet{0}, VarSet{1}, VarSet{0, 1}, VarSet{0, 1, 2}};
  for (const VarSet j1 : sets) {
    for (const VarSet j2 : sets) {
      const AllowPolicy p1(3, j1);
      const AllowPolicy p2(3, j2);
      EXPECT_EQ(RevealsAtMost(p1, p2, domain), j1.SubsetOf(j2))
          << p1.name() << " vs " << p2.name();
    }
  }
}

TEST(RevealsAtMostTest, SumRevealsAtMostIdentityButNotConversely) {
  const InputDomain domain = InputDomain::Range(2, 0, 3);
  const AggregateSumPolicy sum(2);
  const AllowPolicy all = AllowPolicy::AllowAll(2);
  EXPECT_TRUE(RevealsAtMost(sum, all, domain));
  EXPECT_FALSE(RevealsAtMost(all, sum, domain));
}

TEST(RevealsAtMostTest, ReflexiveAndTransitive) {
  const InputDomain domain = InputDomain::Range(2, 0, 2);
  const AllowPolicy a = AllowPolicy::AllowNone(2);
  const AllowPolicy b(2, VarSet{0});
  const AllowPolicy c = AllowPolicy::AllowAll(2);
  EXPECT_TRUE(RevealsAtMost(b, b, domain));
  EXPECT_TRUE(RevealsAtMost(a, b, domain));
  EXPECT_TRUE(RevealsAtMost(b, c, domain));
  EXPECT_TRUE(RevealsAtMost(a, c, domain));
}

TEST(RevealsAtMostTest, SoundnessIsAntitoneInDisclosure) {
  // M sound for the stricter policy => sound for anything it reveals at
  // most. Surveillance with allow(0) is sound for allow(0); allow(0)
  // reveals at most allow(0,1); hence sound for allow(0,1) too.
  const Program q = MustCompile("program q(a, b) { y = a + 1; }");
  const SurveillanceMechanism m = MakeSurveillanceM(Program(q), VarSet{0});
  const InputDomain domain = InputDomain::Range(2, 0, 2);
  const AllowPolicy strict(2, VarSet{0});
  const AllowPolicy loose = AllowPolicy::AllowAll(2);
  ASSERT_TRUE(RevealsAtMost(strict, loose, domain));
  ASSERT_TRUE(CheckSoundness(m, strict, domain, Observability::kValueOnly).sound);
  EXPECT_TRUE(CheckSoundness(m, loose, domain, Observability::kValueOnly).sound);
}

TEST(ProductPolicyTest, ClassesAreCommonRefinement) {
  const auto p = std::make_shared<AllowPolicy>(2, VarSet{0});
  const auto q = std::make_shared<AggregateSumPolicy>(2);
  const ProductPolicy product(p, q);
  // (0,2) and (0,1): same p-image (x0 = 0), different sums -> distinct.
  EXPECT_NE(product.Image(Input{0, 2}), product.Image(Input{0, 1}));
  // (0,2) and (1,1): same sum, different x0 -> distinct.
  EXPECT_NE(product.Image(Input{0, 2}), product.Image(Input{1, 1}));
  // Identical inputs -> identical images.
  EXPECT_EQ(product.Image(Input{1, 2}), product.Image(Input{1, 2}));
  EXPECT_NE(product.name().find("*"), std::string::npos);
}

TEST(ProductPolicyTest, BothConstituentsRevealAtMostTheProduct) {
  const InputDomain domain = InputDomain::Range(2, 0, 3);
  const auto p = std::make_shared<AllowPolicy>(2, VarSet{0});
  const auto q = std::make_shared<AggregateSumPolicy>(2);
  const ProductPolicy product(p, q);
  EXPECT_TRUE(RevealsAtMost(*p, product, domain));
  EXPECT_TRUE(RevealsAtMost(*q, product, domain));
}

TEST(ProductPolicyTest, MechanismSoundForConstituentIsSoundForProduct) {
  const Program q_prog = MustCompile("program q(a, b) { y = a; }");
  const SurveillanceMechanism m = MakeSurveillanceM(Program(q_prog), VarSet{0});
  const InputDomain domain = InputDomain::Range(2, 0, 2);
  const auto p1 = std::make_shared<AllowPolicy>(2, VarSet{0});
  const auto p2 = std::make_shared<AggregateSumPolicy>(2);
  ASSERT_TRUE(CheckSoundness(m, *p1, domain, Observability::kValueOnly).sound);
  const ProductPolicy product(p1, p2);
  EXPECT_TRUE(CheckSoundness(m, product, domain, Observability::kValueOnly).sound);
}

// --- The aggregate-sum policy exercises the full generality of Theorem 2 ---

TEST(AggregateSumTest, SumProgramIsSoundForIt) {
  const Program q = MustCompile("program q(a, b) { y = a + b; }");
  const ProgramAsMechanism m{Program(q)};
  const AggregateSumPolicy policy(2);
  EXPECT_TRUE(CheckSoundness(m, policy, InputDomain::Range(2, 0, 3),
                             Observability::kValueOnly)
                  .sound);
}

TEST(AggregateSumTest, ProjectionIsNotSoundForIt) {
  const Program q = MustCompile("program q(a, b) { y = a; }");
  const ProgramAsMechanism m{Program(q)};
  const AggregateSumPolicy policy(2);
  EXPECT_FALSE(CheckSoundness(m, policy, InputDomain::Range(2, 0, 3),
                              Observability::kValueOnly)
                   .sound);
}

TEST(AggregateSumTest, LabelMechanismsCannotExpressIt) {
  // Surveillance labels track which inputs flowed, not what function of
  // them: even the sum program — perfectly sound for the policy — violates
  // under any allow(J) proxy that tries to stand in for the aggregate.
  const Program q = MustCompile("program q(a, b) { y = a + b; }");
  const SurveillanceMechanism none = MakeSurveillanceM(Program(q), VarSet::Empty());
  EXPECT_TRUE(none.Run(Input{1, 2}).IsViolation());
}

TEST(AggregateSumTest, MaximalSynthesisHandlesIt) {
  // Theorem 2's construction is policy-agnostic: classes are sum-fibers, Q
  // is constant on each, so the maximal mechanism releases everywhere.
  const Program q = MustCompile("program q(a, b) { y = a + b; }");
  const ProgramAsMechanism bare{Program(q)};
  const AggregateSumPolicy policy(2);
  const InputDomain domain = InputDomain::Range(2, 0, 3);
  const auto synth =
      SynthesizeMaximalMechanism(bare, policy, domain, Observability::kValueOnly);
  EXPECT_EQ(synth.released_classes, synth.policy_classes);
  EXPECT_EQ(synth.policy_classes, 7u);  // sums 0..6
  EXPECT_TRUE(
      CheckSoundness(*synth.mechanism, policy, domain, Observability::kValueOnly).sound);

  // And for a program NOT constant on sum-fibers, maximal releases nothing
  // on the mixed fibers but stays sound.
  const Program proj = MustCompile("program p(a, b) { y = a; }");
  const ProgramAsMechanism bare_proj{Program(proj)};
  const auto synth_proj =
      SynthesizeMaximalMechanism(bare_proj, policy, domain, Observability::kValueOnly);
  EXPECT_LT(synth_proj.released_classes, synth_proj.policy_classes);
  EXPECT_TRUE(CheckSoundness(*synth_proj.mechanism, policy, domain,
                             Observability::kValueOnly)
                  .sound);
}

// --- History-dependent enforcement end to end (QueryBudgetPolicy) ---

TEST(QueryBudgetTest, BudgetRespectingMechanismIsSound) {
  // Inputs: (s0, s1, budget). The mechanism answers the sum of the first
  // min(budget, 2) secrets — exactly the policy image, so it is sound.
  const QueryBudgetPolicy policy(2);
  const FunctionMechanism m("budgeted-sum", 3, [](InputView in) {
    const Value budget = std::clamp<Value>(in[2], 0, 2);
    Value sum = 0;
    for (Value i = 0; i < budget; ++i) {
      sum += in[static_cast<size_t>(i)];
    }
    return Outcome::Val(sum, 3);
  });
  const InputDomain domain = InputDomain::PerInput({{0, 1, 2}, {0, 1, 2}, {0, 1, 2, 9}});
  EXPECT_TRUE(CheckSoundness(m, policy, domain, Observability::kValueOnly).sound);
}

TEST(QueryBudgetTest, BudgetIgnoringMechanismIsUnsound) {
  // Answers both secrets regardless of the budget: leaks when budget < 2.
  const QueryBudgetPolicy policy(2);
  const FunctionMechanism m("greedy-sum", 3, [](InputView in) {
    return Outcome::Val(in[0] + 10 * in[1], 3);
  });
  const InputDomain domain = InputDomain::PerInput({{0, 1, 2}, {0, 1, 2}, {0, 1, 2}});
  const auto report = CheckSoundness(m, policy, domain, Observability::kValueOnly);
  EXPECT_FALSE(report.sound);
  // The counterexample must involve a budget below 2.
  ASSERT_TRUE(report.counterexample.has_value());
  EXPECT_LT(report.counterexample->input_a[2], 2);
}

TEST(QueryBudgetTest, MaximalSynthesisRespectsHistoryClasses) {
  const QueryBudgetPolicy policy(2);
  const FunctionMechanism q("greedy-sum", 3, [](InputView in) {
    return Outcome::Val(in[0] + 10 * in[1], 3);
  });
  const InputDomain domain = InputDomain::PerInput({{0, 1}, {0, 1}, {0, 1, 2}});
  const auto synth =
      SynthesizeMaximalMechanism(q, policy, domain, Observability::kValueOnly);
  EXPECT_TRUE(
      CheckSoundness(*synth.mechanism, policy, domain, Observability::kValueOnly).sound);
  // Full-budget classes are singletons (everything revealed): released.
  EXPECT_GT(synth.released_classes, 0u);
  // Low-budget classes collapse distinct secrets: not all released.
  EXPECT_LT(synth.released_classes, synth.policy_classes);
}

}  // namespace
}  // namespace secpol
