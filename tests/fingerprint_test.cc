// Tests for canonical content fingerprints — the cache keys of the batch
// checking service.
//
// The golden hashes pinned here are load-bearing: the fingerprint encoding
// is the persistence format of the result cache, so an accidental change to
// any AppendFingerprint hook (or to the Fingerprinter framing, or to the
// Murmur3 construction) must fail THIS suite loudly rather than silently
// serve stale cache entries under new keys (or worse, fresh results under
// old keys). If you changed the encoding on purpose: bump the cache-key
// format version in JobCacheKey and re-pin these values.

#include "src/util/fingerprint.h"

#include <gtest/gtest.h>

#include <string>

#include "src/flowlang/lower.h"
#include "src/flowlang/parser.h"
#include "src/policy/policy.h"
#include "src/policy/refinement.h"
#include "src/service/job.h"

namespace secpol {
namespace {

Program Compile(const std::string& source) {
  Result<SourceProgram> parsed = ParseProgram(source);
  EXPECT_TRUE(parsed.ok()) << (parsed.ok() ? "" : parsed.error().ToString());
  return Lower(parsed.value());
}

TEST(FingerprintTest, HexRoundTrip) {
  const Fingerprint fp{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  EXPECT_EQ(fp.ToHex(), "0123456789abcdeffedcba9876543210");
  EXPECT_EQ(Fingerprint::FromHex(fp.ToHex()), fp);
  EXPECT_EQ(Fingerprint::FromHex("0123456789ABCDEFFEDCBA9876543210"), fp);
}

TEST(FingerprintTest, FromHexRejectsMalformedInput) {
  EXPECT_FALSE(Fingerprint::FromHex("").has_value());
  EXPECT_FALSE(Fingerprint::FromHex("abc").has_value());
  EXPECT_FALSE(Fingerprint::FromHex(std::string(31, '0')).has_value());
  EXPECT_FALSE(Fingerprint::FromHex(std::string(33, '0')).has_value());
  EXPECT_FALSE(Fingerprint::FromHex("0123456789abcdeffedcba987654321g").has_value());
}

TEST(FingerprintTest, EncodingIsUnambiguous) {
  // Length-prefixed strings: ("ab","c") and ("a","bc") must not collide.
  Fingerprinter a;
  a.Str("ab");
  a.Str("c");
  Fingerprinter b;
  b.Str("a");
  b.Str("bc");
  EXPECT_NE(a.Digest(), b.Digest());

  // Tags are domain separators, not plain strings.
  Fingerprinter c;
  c.Tag("x");
  Fingerprinter d;
  d.Str("x");
  EXPECT_NE(c.Digest(), d.Digest());

  // Integer kinds are distinguished even for equal values.
  Fingerprinter e;
  e.U64(7);
  Fingerprinter f;
  f.I64(7);
  EXPECT_NE(e.Digest(), f.Digest());

  // List framing: [1,2]+[3] vs [1]+[2,3].
  Fingerprinter g;
  g.I64List({1, 2});
  g.I64List({3});
  Fingerprinter h;
  h.I64List({1});
  h.I64List({2, 3});
  EXPECT_NE(g.Digest(), h.Digest());
}

TEST(FingerprintTest, DigestIsPureAndIncremental) {
  Fingerprinter fp;
  fp.Str("hello");
  const Fingerprint first = fp.Digest();
  EXPECT_EQ(fp.Digest(), first);  // digest does not consume the stream
  fp.I32(1);
  EXPECT_NE(fp.Digest(), first);
}

TEST(ProgramFingerprintTest, StructurallyEqualProgramsAgree) {
  const Program p1 = Compile("program p(a, b) { y = a + b; }");
  const Program p2 = Compile("program p(a,   b) { y = a + b; }");  // formatting only
  EXPECT_EQ(p1.ContentFingerprint(), p2.ContentFingerprint());
}

TEST(ProgramFingerprintTest, BehaviouralDifferencesChangeTheHash) {
  const Program base = Compile("program p(a, b) { y = a + b; }");
  // Different constant.
  EXPECT_NE(base.ContentFingerprint(),
            Compile("program p(a, b) { y = a + 2; }").ContentFingerprint());
  // Different operator.
  EXPECT_NE(base.ContentFingerprint(),
            Compile("program p(a, b) { y = a * b; }").ContentFingerprint());
  // Different variable.
  EXPECT_NE(base.ContentFingerprint(),
            Compile("program p(a, b) { y = b + b; }").ContentFingerprint());
  // Different control flow.
  EXPECT_NE(base.ContentFingerprint(),
            Compile("program p(a, b) { if (a == 0) { y = 1; } else { y = 2; } }")
                .ContentFingerprint());
  // Names reach mechanism names and report text, so they are covered too.
  EXPECT_NE(base.ContentFingerprint(),
            Compile("program q(a, b) { y = a + b; }").ContentFingerprint());
}

TEST(PolicyFingerprintTest, PolicyKindsAndParametersSeparate) {
  Fingerprinter a1;
  AllowPolicy(3, VarSet{0, 2}).AppendFingerprint(&a1);
  Fingerprinter a2;
  AllowPolicy(3, VarSet{0, 1}).AppendFingerprint(&a2);
  EXPECT_NE(a1.Digest(), a2.Digest());

  Fingerprinter a3;
  AllowPolicy(4, VarSet{0, 2}).AppendFingerprint(&a3);
  EXPECT_NE(a1.Digest(), a3.Digest());

  Fingerprinter d;
  DirectoryGatedPolicy(2, 1).AppendFingerprint(&d);
  Fingerprinter q;
  QueryBudgetPolicy(3).AppendFingerprint(&q);
  EXPECT_NE(d.Digest(), q.Digest());

  // Product composition is structural, not name-based.
  Fingerprinter p1;
  ProductPolicy(std::make_shared<AllowPolicy>(2, VarSet{0}),
                std::make_shared<AllowPolicy>(2, VarSet{1}))
      .AppendFingerprint(&p1);
  Fingerprinter p2;
  ProductPolicy(std::make_shared<AllowPolicy>(2, VarSet{1}),
                std::make_shared<AllowPolicy>(2, VarSet{0}))
      .AppendFingerprint(&p2);
  EXPECT_NE(p1.Digest(), p2.Digest());
}

TEST(JobCacheKeyTest, EvaluationKnobsDoNotChangeTheKey) {
  CheckJobSpec spec;
  spec.program_text = "program p(a, b) { y = a; }";
  spec.allow = VarSet{0};
  const PreparedJob base = PrepareJob(spec).value();

  CheckJobSpec tuned = spec;
  tuned.id = "another-label";
  tuned.num_threads = 7;
  tuned.deadline_ms = 1234;
  tuned.priority = 9;
  EXPECT_EQ(PrepareJob(tuned).value().key, base.key);
}

TEST(JobCacheKeyTest, EverythingReportAffectingChangesTheKey) {
  CheckJobSpec spec;
  spec.program_text = "program p(a, b) { y = a; }";
  spec.allow = VarSet{0};
  const Fingerprint base = PrepareJob(spec).value().key;

  auto key_of = [](CheckJobSpec s) { return PrepareJob(s).value().key; };

  CheckJobSpec c = spec;
  c.checker = CheckerKind::kLeak;
  EXPECT_NE(key_of(c), base);
  c = spec;
  c.allow = VarSet{1};
  EXPECT_NE(key_of(c), base);
  c = spec;
  c.mechanism = "bare";
  EXPECT_NE(key_of(c), base);
  c = spec;
  c.grid_hi = 3;
  EXPECT_NE(key_of(c), base);
  c = spec;
  c.observe_time = true;
  EXPECT_NE(key_of(c), base);
  c = spec;
  c.fault_spec = "throw@1";
  EXPECT_NE(key_of(c), base);
  c = spec;
  c.retries = 2;
  EXPECT_NE(key_of(c), base);
  c = spec;
  c.program_text = "program p(a, b) { y = b; }";
  EXPECT_NE(key_of(c), base);
}

// ---------------------------------------------------------------------------
// Golden hashes. These pin the canonical encoding itself. Do not update them
// casually — see the file comment.

TEST(GoldenFingerprintTest, Murmur3KnownAnswers) {
  EXPECT_EQ(Murmur3_128("", 0).ToHex(), "00000000000000000000000000000000");
  const std::string fox = "The quick brown fox jumps over the lazy dog";
  EXPECT_EQ(Murmur3_128(fox.data(), fox.size()).ToHex(), "e34bbc7bbc071b6c7a433ca9c49a9347");
  const std::string abc = "abc";
  EXPECT_EQ(Murmur3_128(abc.data(), abc.size()).ToHex(), "b4963f3f3fad78673ba2744126ca2d52");
}

TEST(GoldenFingerprintTest, ProgramCorpus) {
  EXPECT_EQ(Compile("program p(a, b) { y = a; }").ContentFingerprint().ToHex(),
            "4a9ce9ef3b9782803a5c0d4c979a7895");
  EXPECT_EQ(Compile("program p(a, b) { y = a * b + 1; }").ContentFingerprint().ToHex(),
            "36c89f17eaa59e128672a5a9a6526b78");
  EXPECT_EQ(
      Compile("program p(x) { if (x > 0) { y = 1; } else { y = 2; } }")
          .ContentFingerprint()
          .ToHex(),
      "4cf6a5de84ee9710d4e53c5722d351fd");
  EXPECT_EQ(
      Compile("program p(n) { locals c; c = n; while (c != 0) { y = y + c; c = c - 1; } }")
          .ContentFingerprint()
          .ToHex(),
      "36683b4b809b6687cb1ff32e781130c0");
}

TEST(GoldenFingerprintTest, Policies) {
  Fingerprinter a;
  AllowPolicy(3, VarSet{0, 2}).AppendFingerprint(&a);
  EXPECT_EQ(a.Digest().ToHex(), "951e292111cff4a5a7c2c0c57a8a7b85");

  Fingerprinter p;
  ProductPolicy(std::make_shared<AllowPolicy>(2, VarSet{0}),
                std::make_shared<QueryBudgetPolicy>(1))
      .AppendFingerprint(&p);
  EXPECT_EQ(p.Digest().ToHex(), "21a8bed7b000212171a06fb403801256");
}

TEST(GoldenFingerprintTest, JobCacheKeys) {
  CheckJobSpec spec;
  spec.program_text = "program p(a, b) { y = a; }";
  spec.allow = VarSet{0};
  EXPECT_EQ(PrepareJob(spec).value().key.ToHex(), "3fcecdf6a68b5362f59e6a4052fb4f54");

  spec.checker = CheckerKind::kPolicyCompare;
  spec.allow2 = VarSet{0, 1};
  spec.grid_lo = 0;
  spec.grid_hi = 1;
  EXPECT_EQ(PrepareJob(spec).value().key.ToHex(), "a0153ba9c1735ae116f8026b9593bb4f");
}

TEST(GoldenFingerprintTest, AuditJobCacheKey) {
  // The audit job reuses the existing key fields (mechanism2 and allow2 were
  // already fingerprinted for completeness / policy-compare jobs), so adding
  // kAudit must not perturb the other checkers' keys — the pins above — and
  // the audit's own key is pinned here.
  CheckJobSpec spec;
  spec.checker = CheckerKind::kAudit;
  spec.program_text = "program p(a, b) { y = a; }";
  spec.allow = VarSet{0};
  spec.allow2 = VarSet{0, 1};
  spec.mechanism2 = "bare";
  EXPECT_EQ(PrepareJob(spec).value().key.ToHex(), "64d4f1dc16bb4c337725fec1867d157d");
}

}  // namespace
}  // namespace secpol
