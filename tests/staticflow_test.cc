// Tests for CFG analyses, postdominators, control dependence, static
// information flow (Section 5), and the static mechanisms.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/corpus/generator.h"
#include "src/flowlang/lower.h"
#include "src/mechanism/completeness.h"
#include "src/mechanism/soundness.h"
#include "src/policy/policy.h"
#include "src/staticflow/analysis.h"
#include "src/staticflow/cfg.h"
#include "src/staticflow/dominance.h"
#include "src/staticflow/static_mechanisms.h"
#include "src/surveillance/surveillance.h"

namespace secpol {
namespace {

Program Diamond() {
  return MustCompile("program d(x) { if (x == 0) { y = 1; } else { y = 2; } y = y + 1; }");
}

Program Loop() {
  return MustCompile(
      "program l(n) { locals c; c = n; while (c != 0) { y = y + 1; c = c - 1; } }");
}

TEST(CfgTest, SuccessorsAndPredecessors) {
  const Program p = Diamond();
  const Cfg cfg(p);
  EXPECT_EQ(cfg.num_nodes(), p.num_boxes());
  // Start box has one successor; every halt feeds the virtual exit.
  EXPECT_EQ(cfg.Successors(p.start_box()).size(), 1u);
  for (int h : cfg.ReachableHalts()) {
    ASSERT_EQ(cfg.Successors(h).size(), 1u);
    EXPECT_EQ(cfg.Successors(h)[0], cfg.virtual_exit());
  }
  // Edge symmetry.
  for (int n = 0; n < cfg.num_nodes(); ++n) {
    for (int s : cfg.Successors(n)) {
      const auto& preds = cfg.Predecessors(s);
      EXPECT_NE(std::find(preds.begin(), preds.end(), n), preds.end());
    }
  }
}

TEST(CfgTest, ReachabilityAndHalts) {
  const Program p = Diamond();
  const Cfg cfg(p);
  EXPECT_TRUE(cfg.Reachable(p.start_box()));
  EXPECT_EQ(cfg.ReachableHalts().size(), 1u);
}

// Locate the single decision box of a program.
int FindDecision(const Program& p) {
  for (int i = 0; i < p.num_boxes(); ++i) {
    if (p.box(i).kind == Box::Kind::kDecision) {
      return i;
    }
  }
  return -1;
}

TEST(PostDominatorTest, DiamondJoin) {
  const Program p = Diamond();
  const Cfg cfg(p);
  const PostDominators pdom(cfg);
  const int decision = FindDecision(p);
  ASSERT_GE(decision, 0);

  // The join (the `y = y + 1` box) postdominates the decision; neither arm
  // does.
  int join = -1;
  for (int i = 0; i < p.num_boxes(); ++i) {
    if (p.box(i).kind == Box::Kind::kAssign && p.box(i).var == p.output_var() &&
        p.box(i).expr.FreeVars().Contains(p.output_var())) {
      join = i;
    }
  }
  ASSERT_GE(join, 0);
  EXPECT_TRUE(pdom.PostDominates(join, decision));
  EXPECT_EQ(pdom.ImmediatePostDominator(decision), join);

  const int t = p.box(decision).true_next;
  const int f = p.box(decision).false_next;
  EXPECT_FALSE(pdom.PostDominates(t, decision));
  EXPECT_FALSE(pdom.PostDominates(f, decision));
}

TEST(PostDominatorTest, ReflexiveAndExit) {
  const Program p = Diamond();
  const Cfg cfg(p);
  const PostDominators pdom(cfg);
  for (int n = 0; n < cfg.num_nodes(); ++n) {
    if (cfg.Reachable(n)) {
      EXPECT_TRUE(pdom.PostDominates(n, n));
      EXPECT_TRUE(pdom.PostDominates(cfg.virtual_exit(), n));
    }
  }
}

TEST(ControlDependenceTest, ArmsDependOnDecisionJoinDoesNot) {
  const Program p = Diamond();
  const Cfg cfg(p);
  const PostDominators pdom(cfg);
  const int decision = FindDecision(p);
  const int t = p.box(decision).true_next;

  const auto& deps_t = pdom.ControlDependences(t);
  EXPECT_NE(std::find(deps_t.begin(), deps_t.end(), decision), deps_t.end());

  const int join = pdom.ImmediatePostDominator(decision);
  const auto& deps_join = pdom.ControlDependences(join);
  EXPECT_EQ(std::find(deps_join.begin(), deps_join.end(), decision), deps_join.end());
}

TEST(ControlDependenceTest, LoopBodyDependsOnLoopDecision) {
  const Program p = Loop();
  const Cfg cfg(p);
  const PostDominators pdom(cfg);
  const int decision = FindDecision(p);
  const int body = p.box(decision).true_next;
  const auto& deps = pdom.ControlDependences(body);
  EXPECT_NE(std::find(deps.begin(), deps.end(), decision), deps.end());
  // Classic: the loop decision is control-dependent on itself.
  const auto& self = pdom.ControlDependences(decision);
  EXPECT_NE(std::find(self.begin(), self.end(), decision), self.end());
}

// --- Static flow analysis ---

TEST(AnalysisTest, DirectFlowLabels) {
  const Program p = MustCompile("program q(a, b) { y = a; }");
  for (const PcDiscipline d : {PcDiscipline::kMonotonePc, PcDiscipline::kScopedPc}) {
    const StaticFlowResult flow = AnalyzeInformationFlow(p, d);
    EXPECT_EQ(flow.program_release_label, VarSet{0}) << PcDisciplineName(d);
  }
}

TEST(AnalysisTest, ImplicitFlowCaptured) {
  const Program p = MustCompile("program q(x) { if (x == 0) { y = 1; } else { y = 2; } }");
  for (const PcDiscipline d : {PcDiscipline::kMonotonePc, PcDiscipline::kScopedPc}) {
    const StaticFlowResult flow = AnalyzeInformationFlow(p, d);
    EXPECT_EQ(flow.program_release_label, VarSet{0}) << PcDisciplineName(d);
  }
}

TEST(AnalysisTest, NegativeInferenceBranchNotTakenCaptured) {
  // y assigned only on one arm: the merge must still taint y with x.
  const Program p = MustCompile("program q(x) { if (x == 0) { y = 1; } }");
  for (const PcDiscipline d : {PcDiscipline::kMonotonePc, PcDiscipline::kScopedPc}) {
    const StaticFlowResult flow = AnalyzeInformationFlow(p, d);
    EXPECT_TRUE(flow.program_release_label.Contains(0)) << PcDisciplineName(d);
  }
}

TEST(AnalysisTest, ScopedPcForgetsAfterJoinMonotoneDoesNot) {
  // After the join, y is overwritten with a constant. The scoped analysis
  // clears the taint; the monotone one keeps the pc contribution forever.
  const Program p = MustCompile(
      "program q(x) { locals r; if (x == 0) { r = 1; } else { r = 2; } y = 7; }");
  const StaticFlowResult monotone = AnalyzeInformationFlow(p, PcDiscipline::kMonotonePc);
  const StaticFlowResult scoped = AnalyzeInformationFlow(p, PcDiscipline::kScopedPc);
  EXPECT_TRUE(monotone.program_release_label.Contains(0));
  EXPECT_FALSE(scoped.program_release_label.Contains(0));
}

TEST(AnalysisTest, LoopReachesFixpoint) {
  // y += a inside an n-bounded loop must pick up both a and n (via the loop
  // test).
  const Program p = MustCompile(
      "program q(a, n) { locals c; c = n; while (c != 0) { y = y + a; c = c - 1; } }");
  for (const PcDiscipline d : {PcDiscipline::kMonotonePc, PcDiscipline::kScopedPc}) {
    const StaticFlowResult flow = AnalyzeInformationFlow(p, d);
    EXPECT_TRUE(flow.program_release_label.Contains(0)) << PcDisciplineName(d);
    EXPECT_TRUE(flow.program_release_label.Contains(1)) << PcDisciplineName(d);
    EXPECT_GE(flow.rounds, 2);
  }
}

TEST(AnalysisTest, StaticMergesAllPaths) {
  const Program p =
      MustCompile("program w(x1, x2) { y = x1; if (x2 == 0) { y = x2; } }");
  const StaticFlowResult flow = AnalyzeInformationFlow(p, PcDiscipline::kMonotonePc);
  EXPECT_EQ(flow.program_release_label, (VarSet{0, 1}));
}

// --- Static mechanisms ---

TEST(StaticMechanismTest, CertifiedProgramRunsClean) {
  const Program p = MustCompile("program q(pub, sec) { y = pub * 2; }");
  const StaticCertifiedMechanism m(Program(p), VarSet{0});
  EXPECT_TRUE(m.certified());
  EXPECT_EQ(m.Run(Input{3, 9}).value, 6);
}

TEST(StaticMechanismTest, UncertifiedProgramIsPlugged) {
  const Program p = MustCompile("program q(pub, sec) { y = sec; }");
  const StaticCertifiedMechanism m(Program(p), VarSet{0});
  EXPECT_FALSE(m.certified());
  EXPECT_TRUE(m.Run(Input{3, 9}).IsViolation());
}

class StaticSoundnessTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StaticSoundnessTest, BothDisciplinesSoundOnCorpus) {
  CorpusConfig config;
  config.num_inputs = 2;
  const Program q = Lower(GenerateProgram(config, GetParam(), "static"));
  const InputDomain domain = InputDomain::Uniform(2, {-1, 0, 2});
  const AllowPolicy policy(2, VarSet{0});
  for (const PcDiscipline d : {PcDiscipline::kMonotonePc, PcDiscipline::kScopedPc}) {
    const StaticCertifiedMechanism certify(Program(q), VarSet{0}, d);
    EXPECT_TRUE(CheckSoundness(certify, policy, domain, Observability::kValueOnly).sound)
        << "certify seed " << GetParam() << " " << PcDisciplineName(d);
    const ResidualGuardMechanism residual(Program(q), VarSet{0}, d);
    EXPECT_TRUE(CheckSoundness(residual, policy, domain, Observability::kValueOnly).sound)
        << "residual seed " << GetParam() << " " << PcDisciplineName(d);
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, StaticSoundnessTest,
                         ::testing::Range<std::uint64_t>(5000, 5040));

TEST(StaticMechanismTest, ResidualGuardReleasesPerHalt) {
  // Example 9's shape after tail duplication: each arm has its own halt.
  const Program p = MustCompile(
      "program q(x1, x2) { if (x1 == 0) { y = 0; halt; } else { y = x2; halt; } }");
  const ResidualGuardMechanism m(Program(p), VarSet{0}, PcDiscipline::kScopedPc);
  // x1 allowed; x2 not. The clean arm releases, the leaky arm violates:
  // "the protection mechanism need only give a violation notice in case
  // x1 != 0".
  EXPECT_TRUE(m.Run(Input{0, 9}).IsValue());
  EXPECT_TRUE(m.Run(Input{1, 9}).IsViolation());

  // Batch certification can only plug the whole program here.
  const StaticCertifiedMechanism certify(Program(p), VarSet{0}, PcDiscipline::kScopedPc);
  EXPECT_FALSE(certify.certified());
  const InputDomain domain = InputDomain::Range(2, 0, 2);
  const CompletenessStats stats = CompareCompleteness(m, certify, domain);
  EXPECT_EQ(stats.Relation(), CompletenessRelation::kFirstMore);
}

TEST(StaticMechanismTest, ScopedAtLeastAsCompleteAsMonotoneOnCorpus) {
  CorpusConfig config;
  config.num_inputs = 2;
  const InputDomain domain = InputDomain::Uniform(2, {0, 1, 2});
  for (std::uint64_t seed = 5200; seed < 5230; ++seed) {
    const Program q = Lower(GenerateProgram(config, seed, "cmp"));
    const StaticCertifiedMechanism mono(Program(q), VarSet{0}, PcDiscipline::kMonotonePc);
    const StaticCertifiedMechanism scoped(Program(q), VarSet{0}, PcDiscipline::kScopedPc);
    // Certification is monotone in label precision: if the monotone-pc
    // analysis certifies, the scoped one must too.
    if (mono.certified()) {
      EXPECT_TRUE(scoped.certified()) << "seed " << seed;
    }
    const CompletenessStats stats = CompareCompleteness(scoped, mono, domain);
    EXPECT_EQ(stats.second_only, 0u) << "seed " << seed;
  }
}

TEST(StaticMechanismTest, DynamicSurveillanceBeatsStaticCertification) {
  // The forgetting witness: dynamic releases on the x2 == 0 fiber; static
  // (path-insensitive) cannot certify at all.
  const Program p =
      MustCompile("program w(x1, x2) { y = x1; if (x2 == 0) { y = x2; } }");
  const SurveillanceMechanism dynamic = MakeSurveillanceM(Program(p), VarSet{1});
  const StaticCertifiedMechanism statics(Program(p), VarSet{1}, PcDiscipline::kScopedPc);
  const InputDomain domain = InputDomain::Range(2, 0, 2);
  const CompletenessStats stats = CompareCompleteness(dynamic, statics, domain);
  EXPECT_EQ(stats.Relation(), CompletenessRelation::kFirstMore);
}

TEST(StaticMechanismTest, NamesIdentifyConfiguration) {
  const Program p = MustCompile("program q(a) { y = a; }");
  const StaticCertifiedMechanism m(Program(p), VarSet{0}, PcDiscipline::kMonotonePc);
  EXPECT_NE(m.name().find("monotone-pc"), std::string::npos);
  const ResidualGuardMechanism r(Program(p), VarSet{0}, PcDiscipline::kScopedPc);
  EXPECT_NE(r.name().find("scoped-pc"), std::string::npos);
}

}  // namespace
}  // namespace secpol
