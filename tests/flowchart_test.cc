// Unit tests for the flowchart IR, builder, validator, and interpreter.

#include <gtest/gtest.h>

#include "src/flowchart/builder.h"
#include "src/flowchart/dot.h"
#include "src/flowchart/interpreter.h"
#include "src/flowchart/program.h"

namespace secpol {
namespace {

// y = x0 + x1, straight line.
Program MakeAdder() {
  ProgramBuilder b("adder", {"x0", "x1"}, {});
  b.Assign(b.OutputVar(), Add(V(0), V(1)));
  b.HaltBox();
  return b.Build();
}

// if (x0 != 0) y = 1 else y = 2.
Program MakeBrancher() {
  ProgramBuilder b("brancher", {"x0"}, {});
  const int d = b.Decision(Ne(V(0), C(0)));
  const int t = b.Assign(b.OutputVar(), C(1));
  const int e = b.Assign(b.OutputVar(), C(2));
  const int h = b.HaltBox();
  b.SetBranches(d, t, e);
  b.Goto(t, h);
  b.Goto(e, h);
  return b.Build();
}

// while (x0 != 0 is impossible: inputs immutable) — instead: r = x0; while
// (r != 0) { y = y + 2; r = r - 1; }  => y = 2 * max(x0, 0 for negatives it
// loops forever) — we use non-negative inputs in tests.
Program MakeLooper() {
  ProgramBuilder b("looper", {"x0"}, {"r"});
  const int r = b.Var("r");
  b.Assign(r, V(0));
  const int d = b.Decision(Ne(V(r), C(0)));
  const int body1 = b.Assign(b.OutputVar(), Add(V(b.OutputVar()), C(2)));
  const int body2 = b.Assign(r, Sub(V(r), C(1)));
  const int h = b.HaltBox();
  b.SetBranches(d, body1, h);
  b.Goto(body2, d);
  (void)body2;
  return b.Build();
}

TEST(ProgramTest, VariableLayout) {
  const Program p = MakeLooper();
  EXPECT_EQ(p.num_inputs(), 1);
  EXPECT_EQ(p.num_locals(), 1);
  EXPECT_EQ(p.num_vars(), 3);
  EXPECT_EQ(p.output_var(), 2);
  EXPECT_EQ(p.VarName(0), "x0");
  EXPECT_EQ(p.VarName(1), "r");
  EXPECT_EQ(p.VarName(2), "y");
  EXPECT_TRUE(p.IsInputVar(0));
  EXPECT_FALSE(p.IsInputVar(1));
  EXPECT_EQ(p.FindVar("r"), 1);
  EXPECT_EQ(p.FindVar("nope"), -1);
}

TEST(ProgramTest, ReferencedInputs) {
  EXPECT_EQ(MakeAdder().ReferencedInputs(), (VarSet{0, 1}));
  ProgramBuilder b("unused_input", {"x0", "x1"}, {});
  b.Assign(b.OutputVar(), V(1));
  b.HaltBox();
  EXPECT_EQ(b.Build().ReferencedInputs(), VarSet{1});
}

TEST(InterpreterTest, StraightLine) {
  const Program p = MakeAdder();
  const ExecResult r = RunProgram(p, Input{3, 4});
  EXPECT_TRUE(r.halted);
  EXPECT_EQ(r.output, 7);
  EXPECT_EQ(r.steps, 3u);  // start, assign, halt
  EXPECT_EQ(r.halt_box, 2);
}

TEST(InterpreterTest, Branches) {
  const Program p = MakeBrancher();
  EXPECT_EQ(RunProgram(p, Input{5}).output, 1);
  EXPECT_EQ(RunProgram(p, Input{0}).output, 2);
  EXPECT_EQ(RunProgram(p, Input{-1}).output, 1);
}

TEST(InterpreterTest, LoopComputesAndCountsSteps) {
  const Program p = MakeLooper();
  const ExecResult r0 = RunProgram(p, Input{0});
  const ExecResult r3 = RunProgram(p, Input{3});
  EXPECT_EQ(r0.output, 0);
  EXPECT_EQ(r3.output, 6);
  // Each iteration costs 3 boxes (decision + 2 assignments).
  EXPECT_EQ(r3.steps, r0.steps + 3 * 3);
}

TEST(InterpreterTest, FuelExhaustion) {
  // r never reaches 0 for negative input; the fuel bound must trip.
  const Program p = MakeLooper();
  const ExecResult r = RunProgram(p, Input{-1}, /*fuel=*/100);
  EXPECT_FALSE(r.halted);
  EXPECT_EQ(r.steps, 100u);
}

TEST(InterpreterTest, LocalsInitializedToZero) {
  ProgramBuilder b("reads_local", {"x0"}, {"r"});
  b.Assign(b.OutputVar(), Add(V(b.Var("r")), C(5)));
  b.HaltBox();
  EXPECT_EQ(RunProgram(b.Build(), Input{99}).output, 5);
}

TEST(ValidationTest, RejectsAssignToInput) {
  Program p("bad", {"x0"}, {});
  Box start;
  start.kind = Box::Kind::kStart;
  start.next = 1;
  p.AddBox(start);
  Box assign;
  assign.kind = Box::Kind::kAssign;
  assign.var = 0;  // input!
  assign.expr = C(1);
  assign.next = 2;
  p.AddBox(assign);
  Box halt;
  halt.kind = Box::Kind::kHalt;
  p.AddBox(halt);
  const auto result = p.Validate();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("input variable"), std::string::npos);
}

TEST(ValidationTest, RejectsMissingStart) {
  Program p("bad", {}, {});
  Box halt;
  halt.kind = Box::Kind::kHalt;
  p.AddBox(halt);
  EXPECT_FALSE(p.Validate().ok());
}

TEST(ValidationTest, RejectsDanglingEdge) {
  Program p("bad", {}, {});
  Box start;
  start.kind = Box::Kind::kStart;
  start.next = 7;  // out of range
  p.AddBox(start);
  Box halt;
  halt.kind = Box::Kind::kHalt;
  p.AddBox(halt);
  EXPECT_FALSE(p.Validate().ok());
}

TEST(ValidationTest, RejectsNoReachableHalt) {
  Program p("bad", {}, {});
  Box start;
  start.kind = Box::Kind::kStart;
  start.next = 1;
  p.AddBox(start);
  Box spin;
  spin.kind = Box::Kind::kAssign;
  spin.var = 0;  // y (no inputs/locals)
  spin.expr = C(0);
  spin.next = 1;  // self-loop
  p.AddBox(spin);
  Box halt;  // unreachable
  halt.kind = Box::Kind::kHalt;
  p.AddBox(halt);
  const auto result = p.Validate();
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("reachable"), std::string::npos);
}

TEST(ValidationTest, RejectsOutOfRangeVariableInExpr) {
  Program p("bad", {"x0"}, {});
  Box start;
  start.kind = Box::Kind::kStart;
  start.next = 1;
  p.AddBox(start);
  Box assign;
  assign.kind = Box::Kind::kAssign;
  assign.var = 1;  // y
  assign.expr = V(9);
  assign.next = 2;
  p.AddBox(assign);
  Box halt;
  halt.kind = Box::Kind::kHalt;
  p.AddBox(halt);
  EXPECT_FALSE(p.Validate().ok());
}

TEST(EquivalenceTest, IdenticalProgramsEquivalent) {
  EXPECT_TRUE(FunctionallyEquivalentOnGrid(MakeAdder(), MakeAdder(), {-2, -1, 0, 1, 2}));
}

TEST(EquivalenceTest, DifferentProgramsCaught) {
  ProgramBuilder b("adder_off_by_one", {"x0", "x1"}, {});
  b.Assign(b.OutputVar(), Add(Add(V(0), V(1)), C(1)));
  b.HaltBox();
  EXPECT_FALSE(FunctionallyEquivalentOnGrid(MakeAdder(), b.Build(), {0, 1}));
}

TEST(EquivalenceTest, ArityMismatchRejected) {
  ProgramBuilder b("one_input", {"x0"}, {});
  b.Assign(b.OutputVar(), V(0));
  b.HaltBox();
  EXPECT_FALSE(FunctionallyEquivalentOnGrid(MakeAdder(), b.Build(), {0, 1}));
}

TEST(DotTest, EmitsAllBoxShapes) {
  const std::string dot = ProgramToDot(MakeBrancher());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("shape=diamond"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  EXPECT_NE(dot.find("START"), std::string::npos);
  EXPECT_NE(dot.find("HALT"), std::string::npos);
  EXPECT_NE(dot.find("label=\"T\""), std::string::npos);
}

TEST(ProgramTest, ToStringListsBoxes) {
  const std::string text = MakeBrancher().ToString();
  EXPECT_NE(text.find("START"), std::string::npos);
  EXPECT_NE(text.find("if (x0 != 0)"), std::string::npos);
  EXPECT_NE(text.find("y <- 1"), std::string::npos);
}

}  // namespace
}  // namespace secpol
