// Tests for covert-channel measurement, the paging simulator, and the
// page-boundary password attack (Section 2's closing example).

#include <gtest/gtest.h>

#include <cmath>

#include "src/channels/paging.h"
#include "src/channels/password_attack.h"
#include "src/channels/timing.h"
#include "src/flowlang/lower.h"
#include "src/mechanism/mechanism.h"
#include "src/policy/policy.h"
#include "src/surveillance/surveillance.h"

namespace secpol {
namespace {

TEST(LeakMeasureTest, SoundMechanismLeaksZeroBits) {
  const Program q = MustCompile("program q(pub, sec) { y = pub; }");
  const SurveillanceMechanism m = MakeSurveillanceM(Program(q), VarSet{0});
  const AllowPolicy policy(2, VarSet{0});
  const InputDomain domain = InputDomain::Range(2, 0, 3);
  const LeakReport report = MeasureLeak(m, policy, domain, Observability::kValueOnly);
  EXPECT_EQ(report.max_distinct_outcomes, 1u);
  EXPECT_DOUBLE_EQ(report.max_leak_bits, 0.0);
  EXPECT_EQ(report.leaky_classes, 0u);
}

TEST(LeakMeasureTest, TimingChannelQuantified) {
  // The loop program: 4 secret values -> 4 distinct step counts -> 2 bits.
  const Program q = MustCompile(
      "program loop(sec) { locals c; c = sec; while (c != 0) { c = c - 1; } y = 1; }");
  const ProgramAsMechanism m{Program(q)};
  const AllowPolicy policy = AllowPolicy::AllowNone(1);
  const InputDomain domain = InputDomain::Range(1, 0, 3);

  const LeakReport value_only = MeasureLeak(m, policy, domain, Observability::kValueOnly);
  EXPECT_DOUBLE_EQ(value_only.max_leak_bits, 0.0);

  const LeakReport with_time = MeasureLeak(m, policy, domain, Observability::kValueAndTime);
  EXPECT_EQ(with_time.max_distinct_outcomes, 4u);
  EXPECT_DOUBLE_EQ(with_time.max_leak_bits, 2.0);
  EXPECT_EQ(with_time.leaky_classes, 1u);
  EXPECT_NE(with_time.ToString().find("bits/run"), std::string::npos);
}

TEST(LeakMeasureTest, UnsoundValueLeakVisibleWithoutTime) {
  const Program q = MustCompile("program q(sec) { y = sec; }");
  const ProgramAsMechanism m{Program(q)};
  const LeakReport report = MeasureLeak(m, AllowPolicy::AllowNone(1),
                                        InputDomain::Range(1, 0, 7), Observability::kValueOnly);
  EXPECT_DOUBLE_EQ(report.max_leak_bits, 3.0);
}

TEST(PagedMemoryTest, FaultsOncePerPage) {
  PagedMemory memory(4);
  memory.Access(0);
  memory.Access(1);
  memory.Access(3);
  EXPECT_EQ(memory.faults(), 1u);
  memory.Access(4);
  EXPECT_EQ(memory.faults(), 2u);
  EXPECT_TRUE(memory.Resident(0));
  EXPECT_TRUE(memory.Resident(1));
  EXPECT_FALSE(memory.Resident(2));
}

TEST(PagedMemoryTest, FlushEvictsEverything) {
  PagedMemory memory(4);
  memory.Access(0);
  memory.FlushAll();
  EXPECT_FALSE(memory.Resident(0));
  memory.Access(0);
  EXPECT_EQ(memory.faults(), 2u);
}

TEST(PasswordCheckerTest, AcceptsOnlyTheSecret) {
  PasswordChecker checker({1, 2, 3}, 4);
  PagedMemory memory(1024);
  EXPECT_TRUE(checker.Check({1, 2, 3}, memory, 0));
  EXPECT_FALSE(checker.Check({1, 2, 0}, memory, 0));
  EXPECT_FALSE(checker.Check({1, 2}, memory, 0));
  EXPECT_EQ(checker.attempts(), 3u);
}

TEST(PasswordCheckerTest, EarlyExitTouchesOnlyComparedCells) {
  PasswordChecker checker({5, 5, 5}, 6);
  PagedMemory memory(1);  // one cell per page: faults == cells touched
  checker.Check({0, 5, 5}, memory, 0);
  EXPECT_EQ(memory.faults(), 1u);  // mismatch at position 0
  memory.FlushAll();
  checker.Check({5, 0, 5}, memory, 0);
  EXPECT_EQ(memory.faults(), 3u);  // 1 flushed + positions 0 and 1 touched
}

TEST(BruteForceTest, RecoversTheSecret) {
  PasswordChecker checker({2, 1}, 3);
  const AttackResult result = BruteForceAttack(checker, 1000);
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.recovered, (std::vector<int>{2, 1}));
  // Lexicographic position of (2,1) in base 3 is 2*3+1 = 7 -> 8 guesses.
  EXPECT_EQ(result.guesses, 8u);
}

TEST(BruteForceTest, GivesUpAtTheGuessCap) {
  PasswordChecker checker({2, 2, 2}, 3);
  const AttackResult result = BruteForceAttack(checker, 5);
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.guesses, 5u);
}

TEST(PageBoundaryTest, RecoversTheSecret) {
  PasswordChecker checker({3, 0, 2, 1}, 4);
  const AttackResult result = PageBoundaryAttack(checker);
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.recovered, (std::vector<int>{3, 0, 2, 1}));
}

// The headline claim: n^k brute force vs n*k page probing.
struct WorkFactorCase {
  int k;
  int n;
};

class WorkFactorTest : public ::testing::TestWithParam<WorkFactorCase> {};

TEST_P(WorkFactorTest, PageAttackIsLinearPerPosition) {
  const auto& c = GetParam();
  // Worst-case secret for both attacks: the lexicographically last string.
  std::vector<int> secret(static_cast<size_t>(c.k), c.n - 1);

  PasswordChecker brute_victim(secret, c.n);
  const std::uint64_t space = static_cast<std::uint64_t>(std::pow(c.n, c.k));
  const AttackResult brute = BruteForceAttack(brute_victim, space + 1);
  ASSERT_TRUE(brute.found);
  EXPECT_EQ(brute.guesses, space);  // the full n^k

  PasswordChecker page_victim(secret, c.n);
  const AttackResult page = PageBoundaryAttack(page_victim);
  ASSERT_TRUE(page.found);
  EXPECT_LE(page.guesses, static_cast<std::uint64_t>(c.n) * c.k);
  if (space > static_cast<std::uint64_t>(c.n) * c.k) {
    EXPECT_LT(page.guesses, brute.guesses);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, WorkFactorTest,
                         ::testing::Values(WorkFactorCase{2, 2}, WorkFactorCase{3, 3},
                                           WorkFactorCase{4, 4}, WorkFactorCase{5, 3},
                                           WorkFactorCase{6, 2}, WorkFactorCase{4, 8}));

TEST(PageBoundaryTest, WorksForEverySecretInASmallSpace) {
  // Exhaustive: every 3-symbol secret over a 3-letter alphabet.
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      for (int c = 0; c < 3; ++c) {
        PasswordChecker checker({a, b, c}, 3);
        const AttackResult result = PageBoundaryAttack(checker);
        ASSERT_TRUE(result.found) << a << b << c;
        EXPECT_EQ(result.recovered, (std::vector<int>{a, b, c}));
        EXPECT_LE(result.guesses, 9u);
      }
    }
  }
}

}  // namespace
}  // namespace secpol
