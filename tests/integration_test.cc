// End-to-end integration: source text -> parser -> flowchart -> the full
// mechanism zoo -> soundness checker, plus the cross-mechanism completeness
// ladder and Theorem 1 at scale.

#include <gtest/gtest.h>

#include <memory>

#include "src/corpus/generator.h"
#include "src/flowlang/lower.h"
#include "src/flowlang/parser.h"
#include "src/mechanism/completeness.h"
#include "src/mechanism/maximal.h"
#include "src/mechanism/soundness.h"
#include "src/policy/policy.h"
#include "src/staticflow/static_mechanisms.h"
#include "src/surveillance/instrument.h"
#include "src/surveillance/surveillance.h"
#include "src/transforms/advisor.h"

namespace secpol {
namespace {

// Builds every sound mechanism the library offers for (q, allow(J)).
std::vector<std::shared_ptr<const ProtectionMechanism>> AllMechanisms(const Program& q,
                                                                      VarSet allowed) {
  std::vector<std::shared_ptr<const ProtectionMechanism>> out;
  out.push_back(std::make_shared<PlugMechanism>(q.num_inputs()));
  out.push_back(std::make_shared<SurveillanceMechanism>(
      Program(q), allowed, TimingMode::kTimeUnobservable, LabelDiscipline::kSurveillance));
  out.push_back(std::make_shared<SurveillanceMechanism>(
      Program(q), allowed, TimingMode::kTimeUnobservable, LabelDiscipline::kHighWater));
  out.push_back(std::make_shared<SurveillanceMechanism>(
      Program(q), allowed, TimingMode::kTimeObservable, LabelDiscipline::kSurveillance));
  out.push_back(std::make_shared<InstrumentedMechanism>(q, allowed));
  out.push_back(std::make_shared<StaticCertifiedMechanism>(Program(q), allowed,
                                                           PcDiscipline::kMonotonePc));
  out.push_back(std::make_shared<StaticCertifiedMechanism>(Program(q), allowed,
                                                           PcDiscipline::kScopedPc));
  out.push_back(
      std::make_shared<ResidualGuardMechanism>(Program(q), allowed, PcDiscipline::kScopedPc));
  return out;
}

class EndToEndTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EndToEndTest, EveryMechanismSoundEveryPolicyEveryProgram) {
  CorpusConfig config;
  config.num_inputs = 2;
  const SourceProgram source = GenerateProgram(config, GetParam(), "e2e");
  const Program q = Lower(source);
  const InputDomain domain = InputDomain::Uniform(2, {-1, 0, 2});

  for (const VarSet allowed : {VarSet::Empty(), VarSet{0}, VarSet{1}, VarSet{0, 1}}) {
    const AllowPolicy policy(2, allowed);
    for (const auto& mechanism : AllMechanisms(q, allowed)) {
      const auto report =
          CheckSoundness(*mechanism, policy, domain, Observability::kValueOnly);
      EXPECT_TRUE(report.sound) << "seed " << GetParam() << " mech " << mechanism->name()
                                << " policy " << policy.name() << "\n"
                                << source.ToString() << report.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, EndToEndTest, ::testing::Range<std::uint64_t>(7000, 7030));

TEST(IntegrationTest, CompletenessLadderHoldsOnCorpus) {
  // plug <= static-certify <= residual-guard and plug <= high-water <=
  // surveillance <= finite-maximal, for every sampled program and policy.
  CorpusConfig config;
  config.num_inputs = 2;
  const InputDomain domain = InputDomain::Uniform(2, {0, 1, 2});
  for (std::uint64_t seed = 7100; seed < 7120; ++seed) {
    const Program q = Lower(GenerateProgram(config, seed, "ladder"));
    const VarSet allowed{0};
    const AllowPolicy policy(2, allowed);

    const PlugMechanism plug(2);
    const SurveillanceMechanism hw = MakeHighWaterMechanism(Program(q), allowed);
    const SurveillanceMechanism ms = MakeSurveillanceM(Program(q), allowed);
    const StaticCertifiedMechanism cert(Program(q), allowed, PcDiscipline::kScopedPc);
    const ResidualGuardMechanism residual(Program(q), allowed, PcDiscipline::kScopedPc);
    const ProgramAsMechanism bare{Program(q)};
    const auto maximal =
        SynthesizeMaximalMechanism(bare, policy, domain, Observability::kValueOnly);

    auto leq = [&](const ProtectionMechanism& lo, const ProtectionMechanism& hi) {
      EXPECT_EQ(CompareCompleteness(hi, lo, domain).second_only, 0u)
          << "seed " << seed << ": " << lo.name() << " !<= " << hi.name();
    };
    leq(plug, cert);
    leq(cert, residual);
    leq(plug, hw);
    leq(hw, ms);
    leq(ms, *maximal.mechanism);
    leq(residual, *maximal.mechanism);
  }
}

TEST(IntegrationTest, JoinOfTheWholeZooIsSoundAndDominates) {
  CorpusConfig config;
  config.num_inputs = 2;
  const InputDomain domain = InputDomain::Uniform(2, {0, 1, 2});
  for (std::uint64_t seed = 7200; seed < 7210; ++seed) {
    const Program q = Lower(GenerateProgram(config, seed, "join"));
    const VarSet allowed{1};
    const AllowPolicy policy(2, allowed);
    const auto members = AllMechanisms(q, allowed);
    const JoinMechanism joined(members);
    EXPECT_TRUE(
        CheckSoundness(joined, policy, domain, Observability::kValueOnly).sound)
        << "seed " << seed;
    for (const auto& member : members) {
      EXPECT_EQ(CompareCompleteness(joined, *member, domain).second_only, 0u)
          << "seed " << seed << " member " << member->name();
    }
  }
}

TEST(IntegrationTest, SourceToMechanismPipeline) {
  // The full user journey from README: write a program, pick a policy, run
  // a monitor.
  const char* source = R"(
    program payroll(salary, bonus_secret) {
      locals total;
      total = salary * 12;
      y = total;
    })";
  const auto parsed = ParseProgram(source);
  ASSERT_TRUE(parsed.ok());
  const Program q = Lower(parsed.value());

  const SurveillanceMechanism m = MakeSurveillanceM(Program(q), VarSet{0});
  const Outcome ok = m.Run(Input{1000, 55});
  ASSERT_TRUE(ok.IsValue());
  EXPECT_EQ(ok.value, 12000);

  EXPECT_TRUE(CheckSoundness(m, AllowPolicy(2, VarSet{0}), InputDomain::Range(2, 0, 3),
                             Observability::kValueOnly)
                  .sound);
}

TEST(IntegrationTest, AdvisorOutputFeedsStraightIntoEnforcement) {
  const SourceProgram q = MustParseProgram(R"(
    program ex7(x1, x2) {
      locals r;
      if (x1 == 1) { r = 1; } else { r = 2; }
      if (r == 1) { y = 1; } else { y = 1; }
    })");
  const InputDomain domain = InputDomain::Range(2, 0, 2);
  const AdvisorReport report = AdviseTransforms(q, VarSet{1}, domain);
  const SurveillanceMechanism best = MakeSurveillanceM(Lower(report.best().program), VarSet{1});
  EXPECT_DOUBLE_EQ(MeasureUtility(best, domain), 1.0);
  EXPECT_TRUE(CheckSoundness(best, AllowPolicy(2, VarSet{1}), domain,
                             Observability::kValueOnly)
                  .sound);
}

TEST(IntegrationTest, MaximalGapExistsOnSomeProgram) {
  // The Theorem 4 landscape: on the p.49 witness the finite maximal strictly
  // dominates surveillance. Integration-level restatement of the unit test,
  // driven through the full pipeline.
  const Program q = MustCompile(
      "program witness(x1, x2) { if (x1 == 0) { y = 1; } else { y = 1; } }");
  const AllowPolicy policy(2, VarSet{1});
  const InputDomain domain = InputDomain::Range(2, 0, 1);
  const ProgramAsMechanism bare{Program(q)};
  const auto maximal =
      SynthesizeMaximalMechanism(bare, policy, domain, Observability::kValueOnly);
  const SurveillanceMechanism ms = MakeSurveillanceM(Program(q), VarSet{1});
  EXPECT_EQ(CompareCompleteness(*maximal.mechanism, ms, domain).Relation(),
            CompletenessRelation::kFirstMore);
}

}  // namespace
}  // namespace secpol
