// Tests for the surveillance mechanism family: Theorems 3 and 3', the
// Section 4 witness programs, the high-water comparison, the unsound
// naive-scoped discipline, and the instrumenter/interpreter agreement.

#include <gtest/gtest.h>

#include "src/corpus/generator.h"
#include "src/flowlang/lower.h"
#include "src/mechanism/completeness.h"
#include "src/mechanism/maximal.h"
#include "src/mechanism/soundness.h"
#include "src/policy/policy.h"
#include "src/surveillance/instrument.h"
#include "src/surveillance/surveillance.h"
#include "src/util/strings.h"

namespace secpol {
namespace {

// The Section 4 (p.48) witness separating surveillance from high-water mark:
//   y = x1; if (x2 == 0) { y = x2; }
// Policy allow(2) — in 0-based coordinates allow{1} (x2 is input 1).
// Mh always outputs Lambda; Ms outputs Lambda only when x2 != 0.
Program MakeForgettingWitness() {
  return MustCompile("program witness(x1, x2) { y = x1; if (x2 == 0) { y = x2; } }");
}

// The Section 4 (p.49) witness showing surveillance is not maximal:
// branch on x1, both arms assign the same constant. Q is constant, hence
// sound as its own mechanism for allow(2); Ms always outputs Lambda.
Program MakeNotMaximalWitness() {
  return MustCompile(
      "program witness(x1, x2) { if (x1 == 0) { y = 1; } else { y = 1; } }");
}

TEST(SurveillanceTest, TracksDirectFlows) {
  const Program q = MustCompile("program q(a, b) { y = a + 1; }");
  const SurveillanceMechanism allowed = MakeSurveillanceM(Program(q), VarSet{0});
  const SurveillanceMechanism denied = MakeSurveillanceM(Program(q), VarSet{1});
  EXPECT_TRUE(allowed.Run(Input{3, 9}).IsValue());
  EXPECT_EQ(allowed.Run(Input{3, 9}).value, 4);
  EXPECT_TRUE(denied.Run(Input{3, 9}).IsViolation());
}

TEST(SurveillanceTest, TracksImplicitFlowThroughPc) {
  // y never reads x directly; the branch leaks it into the pc label.
  const Program q = MustCompile("program q(x) { if (x == 0) { y = 1; } else { y = 2; } }");
  const SurveillanceMechanism m = MakeSurveillanceM(Program(q), VarSet::Empty());
  EXPECT_TRUE(m.Run(Input{0}).IsViolation());
  EXPECT_TRUE(m.Run(Input{1}).IsViolation());
}

TEST(SurveillanceTest, PcLabelPersistsAfterJoin) {
  // Monotone C-bar: even assignments after the join are tainted.
  const Program q = MustCompile(
      "program q(x) { locals r; if (x == 0) { r = 1; } else { r = 2; } y = 7; }");
  const SurveillanceMechanism m = MakeSurveillanceM(Program(q), VarSet::Empty());
  // y = 7 is a constant, but C-bar already contains x.
  EXPECT_TRUE(m.Run(Input{0}).IsViolation());
}

TEST(SurveillanceTest, ForgettingOverwritesLabels) {
  const Program q = MustCompile("program q(a, b) { y = a; y = b; }");
  const SurveillanceMechanism m = MakeSurveillanceM(Program(q), VarSet{1});
  EXPECT_TRUE(m.Run(Input{5, 6}).IsValue());
  EXPECT_EQ(m.Run(Input{5, 6}).value, 6);
}

TEST(SurveillanceTest, TraceExposesLabels) {
  const Program q = MustCompile("program q(a, b) { locals r; r = a; y = r + b; }");
  const SurveillanceMechanism m = MakeSurveillanceM(Program(q), VarSet{0, 1});
  const SurveillanceTrace trace = m.RunTraced(Input{1, 2});
  EXPECT_TRUE(trace.outcome.IsValue());
  const Program& p = m.program();
  EXPECT_EQ(trace.labels[p.FindVar("r")], VarSet{0});
  EXPECT_EQ(trace.labels[p.output_var()], (VarSet{0, 1}));
  EXPECT_EQ(trace.pc_label, VarSet::Empty());
}

// --- Theorem 3: soundness when time is unobservable ---

class SurveillanceSoundnessTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SurveillanceSoundnessTest, SoundOnRandomProgram) {
  CorpusConfig config;
  config.num_inputs = 3;
  const SourceProgram source = GenerateProgram(config, GetParam(), "prog");
  const Program q = Lower(source);
  const InputDomain domain = InputDomain::Uniform(3, {-1, 0, 2});
  // Try several policies per program.
  for (const VarSet allowed : {VarSet::Empty(), VarSet{0}, VarSet{1, 2}, VarSet{0, 1, 2}}) {
    const AllowPolicy policy(3, allowed);
    const SurveillanceMechanism m = MakeSurveillanceM(Program(q), allowed);
    const auto report = CheckSoundness(m, policy, domain, Observability::kValueOnly);
    EXPECT_TRUE(report.sound) << "seed " << GetParam() << " policy " << policy.name() << "\n"
                              << source.ToString() << report.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, SurveillanceSoundnessTest,
                         ::testing::Range<std::uint64_t>(1000, 1040));

// --- Theorem 3': the timing-safe variant ---

class MPrimeSoundnessTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MPrimeSoundnessTest, SoundEvenWithObservableTime) {
  CorpusConfig config;
  config.num_inputs = 3;
  const SourceProgram source = GenerateProgram(config, GetParam(), "prog");
  const Program q = Lower(source);
  const InputDomain domain = InputDomain::Uniform(3, {-1, 0, 2});
  for (const VarSet allowed : {VarSet::Empty(), VarSet{0}, VarSet{1, 2}}) {
    const AllowPolicy policy(3, allowed);
    const SurveillanceMechanism m = MakeSurveillanceMPrime(Program(q), allowed);
    const auto report = CheckSoundness(m, policy, domain, Observability::kValueAndTime);
    EXPECT_TRUE(report.sound) << "seed " << GetParam() << " policy " << policy.name() << "\n"
                              << source.ToString() << report.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, MPrimeSoundnessTest,
                         ::testing::Range<std::uint64_t>(2000, 2040));

TEST(TimingTest, PlainSurveillanceUnsoundUnderObservableTime) {
  // The loop program: M releases y = 1 always (labels empty — the loop
  // condition taints C-bar... it tests c which derives from x, so it
  // violates; use a program whose *only* leak is timing: loop on an allowed
  // input, compute y from nothing).
  const Program q = MustCompile(
      "program loop(pub, sec) { locals c; c = pub * 0 + sec * 0 + pub; "
      "while (c != 0) { c = c - 1; } y = 1; }");
  // Hmm: loop counter derives from pub only; add a second, secret-driven
  // loop to create the timing leak while keeping labels allowed:
  const Program q2 = MustCompile(
      "program loop2(pub, sec) { locals c; c = sec; while (c != 0) { c = c - 1; } y = 1; }");
  (void)q;
  const AllowPolicy policy(2, VarSet{0});
  const InputDomain domain = InputDomain::PerInput({{0, 1}, {0, 1, 2, 3}});

  // M releases the constant... it must NOT: the loop tests c (label {sec}),
  // so C-bar gets tainted and M violates — uniformly. Check value-only
  // soundness first:
  const SurveillanceMechanism m = MakeSurveillanceM(Program(q2), VarSet{0});
  EXPECT_TRUE(CheckSoundness(m, policy, domain, Observability::kValueOnly).sound);
  // But the *time at which the violation is emitted* still depends on sec:
  // M is unsound once time is observable. This is exactly why M' aborts
  // before the first disallowed test.
  EXPECT_FALSE(CheckSoundness(m, policy, domain, Observability::kValueAndTime).sound);

  const SurveillanceMechanism mp = MakeSurveillanceMPrime(Program(q2), VarSet{0});
  EXPECT_TRUE(CheckSoundness(mp, policy, domain, Observability::kValueAndTime).sound);
}

TEST(TimingTest, MPrimeAbortsBeforeDisallowedTest) {
  const Program q = MustCompile(
      "program q(sec) { locals c; c = sec; while (c != 0) { c = c - 1; } y = 1; }");
  const SurveillanceMechanism mp = MakeSurveillanceMPrime(Program(q), VarSet::Empty());
  const Outcome o1 = mp.Run(Input{1});
  const Outcome o2 = mp.Run(Input{7});
  EXPECT_TRUE(o1.IsViolation());
  EXPECT_TRUE(o2.IsViolation());
  // Identical timing regardless of the secret: the abort happens at the
  // first test.
  EXPECT_EQ(o1.steps, o2.steps);
}

// --- Section 4: surveillance vs high-water mark ---

TEST(HighWaterTest, WitnessSeparatesMsFromMh) {
  const Program q = MakeForgettingWitness();
  const VarSet allowed{1};  // allow(x2)
  const SurveillanceMechanism ms = MakeSurveillanceM(Program(q), allowed);
  const SurveillanceMechanism mh = MakeHighWaterMechanism(Program(q), allowed);

  // "Mh always outputs Lambda; on the other hand, Ms outputs Lambda only
  // when x2 != 0."
  const InputDomain domain = InputDomain::Range(2, 0, 2);
  domain.ForEach([&](InputView input) {
    EXPECT_TRUE(mh.Run(input).IsViolation()) << FormatInput(input);
    EXPECT_EQ(ms.Run(input).IsValue(), input[1] == 0) << FormatInput(input);
  });

  const CompletenessStats stats = CompareCompleteness(ms, mh, domain);
  EXPECT_EQ(stats.Relation(), CompletenessRelation::kFirstMore);
}

TEST(HighWaterTest, HighWaterIsSoundToo) {
  CorpusConfig config;
  config.num_inputs = 2;
  const InputDomain domain = InputDomain::Uniform(2, {0, 1, 3});
  for (std::uint64_t seed = 3000; seed < 3020; ++seed) {
    const Program q = Lower(GenerateProgram(config, seed, "hw"));
    const VarSet allowed{0};
    const SurveillanceMechanism mh = MakeHighWaterMechanism(Program(q), allowed);
    EXPECT_TRUE(CheckSoundness(mh, AllowPolicy(2, allowed), domain,
                               Observability::kValueOnly)
                    .sound)
        << "seed " << seed;
  }
}

TEST(HighWaterTest, SurveillanceAlwaysAtLeastAsCompleteOnCorpus) {
  CorpusConfig config;
  config.num_inputs = 2;
  const InputDomain domain = InputDomain::Uniform(2, {0, 1, 3});
  for (std::uint64_t seed = 3100; seed < 3130; ++seed) {
    const Program q = Lower(GenerateProgram(config, seed, "cmp"));
    const VarSet allowed{0};
    const SurveillanceMechanism ms = MakeSurveillanceM(Program(q), allowed);
    const SurveillanceMechanism mh = MakeHighWaterMechanism(Program(q), allowed);
    const CompletenessStats stats = CompareCompleteness(ms, mh, domain);
    EXPECT_EQ(stats.second_only, 0u) << "seed " << seed;  // Ms >= Mh, always
  }
}

// --- Section 4 (p.49): surveillance is not maximal ---

TEST(NotMaximalTest, SurveillanceAlwaysViolatesOnWitness) {
  const Program q = MakeNotMaximalWitness();
  const VarSet allowed{1};  // allow(x2)
  const SurveillanceMechanism ms = MakeSurveillanceM(Program(q), allowed);
  const InputDomain domain = InputDomain::Range(2, 0, 1);
  domain.ForEach(
      [&](InputView input) { EXPECT_TRUE(ms.Run(input).IsViolation()) << FormatInput(input); });
}

TEST(NotMaximalTest, QItselfIsSoundAndStrictlyMoreComplete) {
  const Program q = MakeNotMaximalWitness();
  const AllowPolicy policy(2, VarSet{1});
  const InputDomain domain = InputDomain::Range(2, 0, 1);

  const ProgramAsMechanism mmax{Program(q)};  // Q is constant: sound
  EXPECT_TRUE(CheckSoundness(mmax, policy, domain, Observability::kValueOnly).sound);

  const SurveillanceMechanism ms = MakeSurveillanceM(Program(q), VarSet{1});
  const CompletenessStats stats = CompareCompleteness(mmax, ms, domain);
  EXPECT_EQ(stats.Relation(), CompletenessRelation::kFirstMore);

  // And the synthesized maximal mechanism agrees with Q here.
  const auto synth =
      SynthesizeMaximalMechanism(mmax, policy, domain, Observability::kValueOnly);
  EXPECT_EQ(synth.released_classes, synth.policy_classes);
}

// --- The naive scoped-pc discipline is unsound (E16) ---

TEST(NaiveScopedTest, CheckerExhibitsTheImplicitFlowLeak) {
  const Program q = MustCompile("program q(x) { if (x == 0) { y = 1; } }");
  const SurveillanceMechanism naive(Program(q), VarSet::Empty(),
                                    TimingMode::kTimeUnobservable,
                                    LabelDiscipline::kNaiveScopedPc);
  // x == 0: assignment under taint -> violation. x != 0: y untouched, pc
  // restored at the join -> releases 0. The difference leaks x == 0.
  EXPECT_TRUE(naive.Run(Input{0}).IsViolation());
  EXPECT_TRUE(naive.Run(Input{1}).IsValue());

  const auto report = CheckSoundness(naive, AllowPolicy::AllowNone(1),
                                     InputDomain::Range(1, 0, 1), Observability::kValueOnly);
  EXPECT_FALSE(report.sound);
  ASSERT_TRUE(report.counterexample.has_value());
}

TEST(NaiveScopedTest, MonotonePcClosesTheLeak) {
  const Program q = MustCompile("program q(x) { if (x == 0) { y = 1; } }");
  const SurveillanceMechanism ms = MakeSurveillanceM(Program(q), VarSet::Empty());
  EXPECT_TRUE(CheckSoundness(ms, AllowPolicy::AllowNone(1), InputDomain::Range(1, 0, 1),
                             Observability::kValueOnly)
                  .sound);
}

// --- The literal Section 3 instrumenter ---

TEST(InstrumentTest, InstrumentedProgramValidatesAndRuns) {
  const Program q = MakeForgettingWitness();
  const Program m = InstrumentSurveillance(q, VarSet{1});
  EXPECT_TRUE(m.Validate().ok());
  EXPECT_EQ(m.num_inputs(), q.num_inputs());
  // Shadow variables double the count (plus C-bar).
  EXPECT_EQ(m.num_vars(), 2 * q.num_vars() + 1);
}

TEST(InstrumentTest, AgreesWithInterpreterOnWitnesses) {
  for (const Program& q : {MakeForgettingWitness(), MakeNotMaximalWitness()}) {
    for (const VarSet allowed : {VarSet::Empty(), VarSet{0}, VarSet{1}, VarSet{0, 1}}) {
      const SurveillanceMechanism interp = MakeSurveillanceM(Program(q), allowed);
      const InstrumentedMechanism inst(q, allowed);
      InputDomain::Range(2, -1, 2).ForEach([&](InputView input) {
        const Outcome a = interp.Run(input);
        const Outcome b = inst.Run(input);
        EXPECT_TRUE(a.ObservablyEquals(b, Observability::kValueOnly))
            << q.name() << " " << allowed.ToString() << " " << FormatInput(input) << ": "
            << a.ToString() << " vs " << b.ToString();
      });
    }
  }
}

class InstrumentAgreementTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InstrumentAgreementTest, AgreesWithInterpreterOnRandomPrograms) {
  CorpusConfig config;
  config.num_inputs = 2;
  config.num_value_locals = 2;
  const Program q = Lower(GenerateProgram(config, GetParam(), "inst"));
  const VarSet allowed{0};
  const SurveillanceMechanism interp = MakeSurveillanceM(Program(q), allowed);
  const InstrumentedMechanism inst(q, allowed);
  InputDomain::Uniform(2, {-1, 0, 2}).ForEach([&](InputView input) {
    const Outcome a = interp.Run(input);
    const Outcome b = inst.Run(input);
    EXPECT_TRUE(a.ObservablyEquals(b, Observability::kValueOnly))
        << "seed " << GetParam() << " input " << FormatInput(input) << ": " << a.ToString()
        << " vs " << b.ToString();
  });
}

INSTANTIATE_TEST_SUITE_P(Corpus, InstrumentAgreementTest,
                         ::testing::Range<std::uint64_t>(4000, 4050));

TEST(InstrumentTest, InstrumentedMechanismIsSound) {
  CorpusConfig config;
  config.num_inputs = 2;
  const InputDomain domain = InputDomain::Uniform(2, {0, 1, 2});
  for (std::uint64_t seed = 4200; seed < 4215; ++seed) {
    const Program q = Lower(GenerateProgram(config, seed, "inst_sound"));
    const InstrumentedMechanism inst(q, VarSet{1});
    EXPECT_TRUE(CheckSoundness(inst, AllowPolicy(2, VarSet{1}), domain,
                               Observability::kValueOnly)
                    .sound)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace secpol
