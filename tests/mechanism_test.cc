// Tests for the mechanism framework: outcomes, trivial mechanisms
// (Example 3), the soundness checker, the completeness order (Section 4),
// the join operator (Theorem 1), and finite maximal synthesis (Theorem 2).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/corpus/generator.h"
#include "src/flowlang/lower.h"
#include "src/mechanism/completeness.h"
#include "src/mechanism/domain.h"
#include "src/mechanism/maximal.h"
#include "src/mechanism/mechanism.h"
#include "src/mechanism/soundness.h"
#include "src/policy/policy.h"
#include "src/util/rng.h"

namespace secpol {
namespace {

TEST(OutcomeTest, ObservableEquality) {
  const Outcome v1 = Outcome::Val(3, 10);
  const Outcome v2 = Outcome::Val(3, 99);
  const Outcome v3 = Outcome::Val(4, 10);
  const Outcome n1 = Outcome::Violation(10, "a");
  const Outcome n2 = Outcome::Violation(20, "b");

  EXPECT_TRUE(v1.ObservablyEquals(v2, Observability::kValueOnly));
  EXPECT_FALSE(v1.ObservablyEquals(v2, Observability::kValueAndTime));
  EXPECT_FALSE(v1.ObservablyEquals(v3, Observability::kValueOnly));
  // All violation notices are one notice (Section 4) — but their timing is
  // observable when time is.
  EXPECT_TRUE(n1.ObservablyEquals(n2, Observability::kValueOnly));
  EXPECT_FALSE(n1.ObservablyEquals(n2, Observability::kValueAndTime));
  EXPECT_FALSE(v1.ObservablyEquals(n1, Observability::kValueOnly));
}

TEST(OutcomeTest, ToStringDistinguishesKinds) {
  EXPECT_NE(Outcome::Val(1, 2).ToString().find("value 1"), std::string::npos);
  EXPECT_NE(Outcome::Violation(2, "x").ToString().find("VIOLATION"), std::string::npos);
}

TEST(DomainTest, SizeAndEnumerate) {
  const InputDomain domain = InputDomain::Uniform(2, {0, 1, 2});
  EXPECT_EQ(domain.size(), 9u);
  const auto all = domain.Enumerate();
  ASSERT_EQ(all.size(), 9u);
  EXPECT_EQ(all.front(), (Input{0, 0}));
  EXPECT_EQ(all.back(), (Input{2, 2}));
}

TEST(DomainTest, PerInputAndRange) {
  const InputDomain domain = InputDomain::PerInput({{0, 1}, {5}});
  EXPECT_EQ(domain.size(), 2u);
  EXPECT_EQ(domain.Enumerate()[1], (Input{1, 5}));

  const InputDomain range = InputDomain::Range(1, -1, 1);
  EXPECT_EQ(range.size(), 3u);
}

TEST(DomainTest, SizeSaturatesInsteadOfOverflowing) {
  // 2^64 tuples: 64 binary coordinates overflow uint64 exactly by one bit.
  const InputDomain domain = InputDomain::Uniform(64, {0, 1});
  EXPECT_EQ(domain.CheckedSize(), std::nullopt);
  EXPECT_EQ(domain.size(), UINT64_MAX);

  const InputDomain fits = InputDomain::Uniform(63, {0, 1});
  EXPECT_EQ(fits.CheckedSize(), std::uint64_t{1} << 63);
  EXPECT_EQ(fits.size(), std::uint64_t{1} << 63);
}

TEST(DomainTest, EnumerateRefusesHugeGrids) {
  // 10^10 tuples would OOM; Enumerate refuses with an empty vector (a real
  // grid always has at least one tuple, so empty is unambiguous).
  const InputDomain huge = InputDomain::Range(10, 0, 9);
  EXPECT_GT(huge.size(), InputDomain::kEnumerateCap);
  EXPECT_TRUE(huge.Enumerate().empty());

  const InputDomain overflowing = InputDomain::Uniform(64, {0, 1});
  EXPECT_TRUE(overflowing.Enumerate().empty());
}

TEST(DomainTest, ForEachRangeMatchesForEach) {
  const InputDomain domain = InputDomain::PerInput({{0, 1, 2}, {7, 8}});
  std::vector<Input> all;
  domain.ForEach([&](InputView input) { all.emplace_back(input.begin(), input.end()); });

  std::vector<Input> mid;
  domain.ForEachRange(2, 5, [&](std::uint64_t rank, InputView input) {
    EXPECT_EQ(Input(input.begin(), input.end()), all[rank]);
    mid.emplace_back(input.begin(), input.end());
    return true;
  });
  ASSERT_EQ(mid.size(), 3u);
  EXPECT_EQ(mid.front(), all[2]);
  EXPECT_EQ(mid.back(), all[4]);

  // Clipping and early exit.
  std::uint64_t visited = 0;
  domain.ForEachRange(4, 99, [&](std::uint64_t, InputView) {
    ++visited;
    return false;  // stop after the first tuple
  });
  EXPECT_EQ(visited, 1u);
}

TEST(DomainTest, ZeroArity) {
  const InputDomain domain = InputDomain::Uniform(0, {1, 2, 3});
  EXPECT_EQ(domain.size(), 1u);
  int calls = 0;
  domain.ForEach([&](InputView input) {
    EXPECT_TRUE(input.empty());
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

// --- Example 3: the two trivial protection mechanisms ---

TEST(Example3, PlugIsSoundForEveryPolicy) {
  const PlugMechanism plug(2);
  const InputDomain domain = InputDomain::Range(2, 0, 2);
  for (const VarSet allowed : {VarSet::Empty(), VarSet{0}, VarSet{0, 1}}) {
    const AllowPolicy policy(2, allowed);
    const auto report =
        CheckSoundness(plug, policy, domain, Observability::kValueAndTime);
    EXPECT_TRUE(report.sound) << policy.name();
  }
}

TEST(Example3, ProgramAsItsOwnMechanismMayBeUnsound) {
  // Q(x0, x1) = x1; sound for allow(1), unsound for allow(0).
  const Program q = MustCompile("program q(x0, x1) { y = x1; }");
  const ProgramAsMechanism m{Program(q)};
  const InputDomain domain = InputDomain::Range(2, 0, 2);

  EXPECT_TRUE(
      CheckSoundness(m, AllowPolicy(2, VarSet{1}), domain, Observability::kValueOnly).sound);
  const auto bad =
      CheckSoundness(m, AllowPolicy(2, VarSet{0}), domain, Observability::kValueOnly);
  EXPECT_FALSE(bad.sound);
  ASSERT_TRUE(bad.counterexample.has_value());
  // The counterexample inputs agree on the allowed coordinate.
  EXPECT_EQ(bad.counterexample->input_a[0], bad.counterexample->input_b[0]);
}

TEST(SoundnessTest, ReportCountsClasses) {
  const Program q = MustCompile("program q(x0, x1) { y = x0; }");
  const ProgramAsMechanism m{Program(q)};
  const InputDomain domain = InputDomain::Range(2, 0, 2);
  const auto report =
      CheckSoundness(m, AllowPolicy(2, VarSet{0}), domain, Observability::kValueOnly);
  EXPECT_TRUE(report.sound);
  EXPECT_EQ(report.inputs_checked, 9u);
  EXPECT_EQ(report.policy_classes, 3u);
  EXPECT_NE(report.ToString().find("SOUND"), std::string::npos);
}

// The Section 2 running-time example: Q(x) loops x times then outputs 1.
// Constant as a value function, but its step count encodes x.
std::shared_ptr<ProtectionMechanism> MakeTimingLoopMechanism() {
  const Program q = MustCompile(
      "program loop(x) { locals c; c = x; while (c != 0) { c = c - 1; } y = 1; }");
  return std::make_shared<ProgramAsMechanism>(q);
}

TEST(ObservabilityPostulate, ConstantProgramSoundForValueOnly) {
  const auto m = MakeTimingLoopMechanism();
  const InputDomain domain = InputDomain::Range(1, 0, 4);
  EXPECT_TRUE(
      CheckSoundness(*m, AllowPolicy::AllowNone(1), domain, Observability::kValueOnly).sound);
}

TEST(ObservabilityPostulate, SameProgramUnsoundOnceTimeIsObservable) {
  const auto m = MakeTimingLoopMechanism();
  const InputDomain domain = InputDomain::Range(1, 0, 4);
  const auto report =
      CheckSoundness(*m, AllowPolicy::AllowNone(1), domain, Observability::kValueAndTime);
  EXPECT_FALSE(report.sound);
}

// --- Completeness (Section 4) ---

TEST(CompletenessTest, PlugIsLeastIdentityIsGreatest) {
  const Program q = MustCompile("program q(x) { y = x; }");
  const ProgramAsMechanism identity{Program(q)};
  const PlugMechanism plug(1);
  const InputDomain domain = InputDomain::Range(1, 0, 3);

  const CompletenessStats stats = CompareCompleteness(identity, plug, domain);
  EXPECT_EQ(stats.Relation(), CompletenessRelation::kFirstMore);
  EXPECT_EQ(stats.first_only, 4u);
  EXPECT_EQ(stats.both_value, 0u);
  EXPECT_DOUBLE_EQ(stats.FirstUtility(), 1.0);
  EXPECT_DOUBLE_EQ(stats.SecondUtility(), 0.0);
}

TEST(CompletenessTest, EquivalentMechanisms) {
  const PlugMechanism p1(1);
  const PlugMechanism p2(1);
  const InputDomain domain = InputDomain::Range(1, 0, 3);
  EXPECT_EQ(CompareCompleteness(p1, p2, domain).Relation(),
            CompletenessRelation::kEquivalent);
}

TEST(CompletenessTest, IncomparableMechanisms) {
  // m1 answers on even inputs, m2 on odd.
  auto on_parity = [](Value parity) {
    return std::make_shared<FunctionMechanism>("parity", 1, [parity](InputView in) {
      if ((in[0] % 2 + 2) % 2 == parity) {
        return Outcome::Val(in[0], 1);
      }
      return Outcome::Violation(1);
    });
  };
  const auto even = on_parity(0);
  const auto odd = on_parity(1);
  const InputDomain domain = InputDomain::Range(1, 0, 3);
  EXPECT_EQ(CompareCompleteness(*even, *odd, domain).Relation(),
            CompletenessRelation::kIncomparable);
}

TEST(CompletenessTest, MeasureUtility) {
  const PlugMechanism plug(1);
  const InputDomain domain = InputDomain::Range(1, 0, 9);
  EXPECT_DOUBLE_EQ(MeasureUtility(plug, domain), 0.0);
}

// --- Theorem 1: the join of sound mechanisms is sound and an upper bound ---

TEST(Theorem1, JoinIsUpperBoundAndSound) {
  // Q(x0, x1) = x0 (computed two ways); policy allow(0).
  // m_even releases on even x1 (violates otherwise) — NOT sound.
  // Instead build two sound mechanisms with different coverage:
  //   m_zero releases only when x0 == 0; m_pos releases only when x0 > 0.
  auto make = [](auto release_if) {
    return std::make_shared<FunctionMechanism>("partial", 2,
                                               [release_if](InputView in) {
                                                 if (release_if(in[0])) {
                                                   return Outcome::Val(in[0], 1);
                                                 }
                                                 return Outcome::Violation(1);
                                               });
  };
  const auto m_zero = make([](Value x) { return x == 0; });
  const auto m_pos = make([](Value x) { return x > 0; });
  const AllowPolicy policy(2, VarSet{0});
  const InputDomain domain = InputDomain::Range(2, 0, 2);

  ASSERT_TRUE(CheckSoundness(*m_zero, policy, domain, Observability::kValueOnly).sound);
  ASSERT_TRUE(CheckSoundness(*m_pos, policy, domain, Observability::kValueOnly).sound);

  const auto joined = Join(m_zero, m_pos);
  EXPECT_TRUE(CheckSoundness(*joined, policy, domain, Observability::kValueOnly).sound);

  // M1 v M2 >= M1 and >= M2.
  const auto vs1 = CompareCompleteness(*joined, *m_zero, domain);
  const auto vs2 = CompareCompleteness(*joined, *m_pos, domain);
  EXPECT_EQ(vs1.second_only, 0u);
  EXPECT_EQ(vs2.second_only, 0u);
  // And here strictly more complete than each member.
  EXPECT_EQ(vs1.Relation(), CompletenessRelation::kFirstMore);
  EXPECT_EQ(vs2.Relation(), CompletenessRelation::kFirstMore);
}

TEST(Theorem1, JoinReleasesWhereAnyMemberReleases) {
  const auto always = std::make_shared<FunctionMechanism>(
      "always", 1, [](InputView in) { return Outcome::Val(in[0], 1); });
  const auto never = std::make_shared<PlugMechanism>(1);
  const auto joined = Join(never, always);
  EXPECT_TRUE(joined->Run(Input{7}).IsValue());
  EXPECT_EQ(joined->Run(Input{7}).value, 7);

  const auto both_never = Join(never, std::make_shared<PlugMechanism>(1));
  EXPECT_TRUE(both_never->Run(Input{7}).IsViolation());
}

TEST(Theorem1, JoinOfManyMembers) {
  std::vector<std::shared_ptr<const ProtectionMechanism>> members;
  for (Value target = 0; target < 4; ++target) {
    members.push_back(std::make_shared<FunctionMechanism>(
        "only" + std::to_string(target), 1, [target](InputView in) {
          return in[0] == target ? Outcome::Val(in[0], 1) : Outcome::Violation(1);
        }));
  }
  const JoinMechanism joined(members);
  for (Value x = 0; x < 4; ++x) {
    EXPECT_TRUE(joined.Run(Input{x}).IsValue());
  }
  EXPECT_TRUE(joined.Run(Input{9}).IsViolation());
  EXPECT_NE(joined.name().find(" v "), std::string::npos);
}

// --- Theorem 2 (finite form): the synthesized maximal mechanism dominates ---

TEST(Theorem2, MaximalReleasesExactlyConstantClasses) {
  // Q(x0, x1) = x0 * 0 + (x1 == x1 ? 5 : 0) = 5 — constant; allow().
  const Program constant = MustCompile("program c(x0) { y = 5; }");
  const ProgramAsMechanism q{Program(constant)};
  const InputDomain domain = InputDomain::Range(1, 0, 3);
  const auto synth = SynthesizeMaximalMechanism(q, AllowPolicy::AllowNone(1), domain,
                                                Observability::kValueOnly);
  EXPECT_EQ(synth.policy_classes, 1u);
  EXPECT_EQ(synth.released_classes, 1u);
  EXPECT_TRUE(synth.mechanism->Run(Input{2}).IsValue());
}

TEST(Theorem2, MaximalIsSoundAndDominatesEverySoundMechanismWeTry) {
  const Program q_src = MustCompile("program q(x0, x1) { y = x0 + (x1 - x1); }");
  const ProgramAsMechanism q{Program(q_src)};
  const AllowPolicy policy(2, VarSet{0});
  const InputDomain domain = InputDomain::Range(2, 0, 2);

  const auto synth =
      SynthesizeMaximalMechanism(q, policy, domain, Observability::kValueOnly);
  EXPECT_TRUE(
      CheckSoundness(*synth.mechanism, policy, domain, Observability::kValueOnly).sound);
  // Q depends only on x0, so every class is constant and maximal == Q.
  EXPECT_EQ(synth.released_classes, synth.policy_classes);

  const PlugMechanism plug(2);
  const auto stats = CompareCompleteness(*synth.mechanism, plug, domain);
  EXPECT_EQ(stats.second_only, 0u);
}

TEST(Theorem2, MaximalUnderTimeRequiresConstantSteps) {
  // Value constant, steps vary with the hidden input: under kValueAndTime
  // the class is not constant, so nothing is released.
  const Program loop = MustCompile(
      "program loop(x) { locals c; c = x; while (c != 0) { c = c - 1; } y = 1; }");
  const ProgramAsMechanism q{Program(loop)};
  const InputDomain domain = InputDomain::Range(1, 0, 3);

  const auto value_only = SynthesizeMaximalMechanism(q, AllowPolicy::AllowNone(1), domain,
                                                     Observability::kValueOnly);
  EXPECT_EQ(value_only.released_classes, 1u);

  const auto with_time = SynthesizeMaximalMechanism(q, AllowPolicy::AllowNone(1), domain,
                                                    Observability::kValueAndTime);
  EXPECT_EQ(with_time.released_classes, 0u);
  EXPECT_TRUE(CheckSoundness(*with_time.mechanism, AllowPolicy::AllowNone(1), domain,
                             Observability::kValueAndTime)
                  .sound);
}

// "The sound protection mechanisms form a lattice" — join and meet laws.
TEST(MechanismLatticeTest, MeetIsSoundLowerBound) {
  auto make = [](auto release_if) {
    return std::make_shared<FunctionMechanism>("partial", 2,
                                               [release_if](InputView in) {
                                                 if (release_if(in[0])) {
                                                   return Outcome::Val(in[0], 1);
                                                 }
                                                 return Outcome::Violation(1);
                                               });
  };
  const auto m_small = make([](Value x) { return x <= 1; });
  const auto m_even = make([](Value x) { return x % 2 == 0; });
  const AllowPolicy policy(2, VarSet{0});
  const InputDomain domain = InputDomain::Range(2, 0, 3);

  ASSERT_TRUE(CheckSoundness(*m_small, policy, domain, Observability::kValueOnly).sound);
  ASSERT_TRUE(CheckSoundness(*m_even, policy, domain, Observability::kValueOnly).sound);

  const auto met = Meet(m_small, m_even);
  EXPECT_TRUE(CheckSoundness(*met, policy, domain, Observability::kValueOnly).sound);
  // Lower bound: each member is at least as complete as the meet.
  EXPECT_EQ(CompareCompleteness(*m_small, *met, domain).second_only, 0u);
  EXPECT_EQ(CompareCompleteness(*m_even, *met, domain).second_only, 0u);
  // Releases exactly on the intersection: x = 0 only.
  EXPECT_TRUE(met->Run(Input{0, 0}).IsValue());
  EXPECT_TRUE(met->Run(Input{1, 0}).IsViolation());  // odd
  EXPECT_TRUE(met->Run(Input{2, 0}).IsViolation());  // > 1
  EXPECT_NE(met->name().find(" ^ "), std::string::npos);
}

TEST(MechanismLatticeTest, AbsorptionOnValueSets) {
  // join(m, meet(m, n)) releases exactly where m does (and dually).
  auto make = [](auto release_if) {
    return std::make_shared<FunctionMechanism>("partial", 1,
                                               [release_if](InputView in) {
                                                 if (release_if(in[0])) {
                                                   return Outcome::Val(in[0], 1);
                                                 }
                                                 return Outcome::Violation(1);
                                               });
  };
  const auto m = make([](Value x) { return x < 2; });
  const auto n = make([](Value x) { return x % 2 == 0; });
  const InputDomain domain = InputDomain::Range(1, 0, 4);

  const auto join_absorb = Join(m, Meet(m, n));
  EXPECT_EQ(CompareCompleteness(*join_absorb, *m, domain).Relation(),
            CompletenessRelation::kEquivalent);
  const auto meet_absorb = Meet(m, Join(m, n));
  EXPECT_EQ(CompareCompleteness(*meet_absorb, *m, domain).Relation(),
            CompletenessRelation::kEquivalent);
}

TEST(TableMechanismTest, StoresAndReplaysOutcomes) {
  TableMechanism table("t", 1);
  table.Set(Input{0}, Outcome::Val(5, 1));
  table.Set(Input{1}, Outcome::Violation(0));
  EXPECT_EQ(table.table_size(), 2u);
  EXPECT_TRUE(table.Run(Input{0}).IsValue());
  EXPECT_TRUE(table.Run(Input{1}).IsViolation());
}

// An input outside the tabulated domain must fail closed as a *typed*
// exception the sweep's abort barrier can catch — never by killing the
// process, which would take every sibling job in a batch down with it.
TEST(TableMechanismTest, OutOfDomainInputThrowsTypedError) {
  TableMechanism table("t", 1);
  table.Set(Input{0}, Outcome::Val(5, 1));
  EXPECT_THROW(table.Run(Input{7}), OutOfDomainError);
  try {
    table.Run(Input{7});
    FAIL() << "expected OutOfDomainError";
  } catch (const OutOfDomainError& e) {
    // The message names the mechanism, so a batch report's abort reason is
    // actionable. OutOfDomainError is-a runtime_error, so generic barriers
    // still catch it.
    EXPECT_NE(std::string(e.what()).find("'t'"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("domain"), std::string::npos);
  }
  // The table itself is intact after the throw.
  EXPECT_TRUE(table.Run(Input{0}).IsValue());
}

TEST(ProgramAsMechanismTest, FuelExhaustionBecomesViolation) {
  const Program loop = MustCompile(
      "program diverge(x) { locals c; c = 0 - 1; while (c != 0) { c = c - 1; } }");
  const ProgramAsMechanism m(Program(loop), /*fuel=*/50);
  EXPECT_TRUE(m.Run(Input{0}).IsViolation());
}

// --- Fuzzed invariants ---

// Soundness is a property of the *set* of grid points, not of their
// enumeration order: permuting each coordinate's candidate-value list
// permutes the grid but cannot change the verdict. (The counterexample found
// first may differ; the verdict may not.)
TEST(SoundnessPropertyTest, VerdictInvariantUnderCoordinatePermutation) {
  CorpusConfig config;
  const auto corpus = MakeCorpus(config, 20, /*seed=*/4242);
  Rng rng(4242);
  for (const SourceProgram& source : corpus) {
    const ProgramAsMechanism m{Lower(source)};
    VarSet allowed;
    for (int i = 0; i < config.num_inputs; ++i) {
      if (rng.Chance(1, 2)) {
        allowed.Insert(i);
      }
    }
    const AllowPolicy policy(config.num_inputs, allowed);

    std::vector<std::vector<Value>> per_input(config.num_inputs, {-1, 0, 1, 2});
    const InputDomain domain = InputDomain::PerInput(per_input);
    // Fisher-Yates shuffle of every coordinate's value list.
    for (auto& values : per_input) {
      for (size_t i = values.size(); i > 1; --i) {
        std::swap(values[i - 1], values[rng.NextBelow(i)]);
      }
    }
    const InputDomain permuted = InputDomain::PerInput(per_input);

    for (const Observability obs :
         {Observability::kValueOnly, Observability::kValueAndTime}) {
      EXPECT_EQ(CheckSoundness(m, policy, domain, obs).sound,
                CheckSoundness(m, policy, permuted, obs).sound)
          << source.name << " " << policy.name() << " " << ObservabilityName(obs);
    }
  }
}

// Example 3 as a fuzzed invariant: "pulling the plug" is sound for *every*
// policy — any arity, any allowed set, any grid, any observability, any
// thread count.
TEST(SoundnessPropertyTest, PlugIsSoundForEveryRandomPolicy) {
  Rng rng(99);
  for (int trial = 0; trial < 64; ++trial) {
    const int num_inputs = 1 + static_cast<int>(rng.NextBelow(4));
    const PlugMechanism plug(num_inputs);
    VarSet allowed;
    for (int i = 0; i < num_inputs; ++i) {
      if (rng.Chance(1, 2)) {
        allowed.Insert(i);
      }
    }
    const AllowPolicy policy(num_inputs, allowed);
    const Value lo = rng.NextInRange(-3, 0);
    const InputDomain domain = InputDomain::Range(num_inputs, lo, lo + rng.NextInRange(1, 3));
    const Observability obs =
        rng.Chance(1, 2) ? Observability::kValueOnly : Observability::kValueAndTime;
    const CheckOptions options = CheckOptions::Threads(1 + static_cast<int>(rng.NextBelow(4)));
    const auto report = CheckSoundness(plug, policy, domain, obs, options);
    EXPECT_TRUE(report.sound) << policy.name() << " over " << domain.ToString();
    EXPECT_EQ(report.inputs_checked, domain.size());
  }
}

}  // namespace
}  // namespace secpol
