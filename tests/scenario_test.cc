// Tests for the scenario engine itself (src/scenario): cross-product
// semantics, golden-stable names, job-spec validity, the runner's clean
// battery, the witness minimizer, and a seeded fuzzer smoke run with
// end-to-end witness replay.
//
// The full 20736-scenario differential sweep lives in scenario_matrix_test.cc
// under the `scenario` ctest label; this file is tier-1 and keeps to samples.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/corpus/generator.h"
#include "src/flowlang/parser.h"
#include "src/scenario/fuzzer.h"
#include "src/scenario/minimize.h"
#include "src/scenario/runner.h"
#include "src/scenario/scenario.h"
#include "src/service/job.h"
#include "src/util/fingerprint.h"
#include "src/util/json.h"

namespace secpol {
namespace {

// ---------------------------------------------------------------------------
// Cross-product semantics.

TEST(ScenarioEngineTest, CrossProductOrderAndNamesOnTinyAxes) {
  std::vector<ScenarioAxis> axes;
  axes.push_back({"letter",
                  {{"a0", [](ScenarioConfig* c) { c->threads = 1; }},
                   {"a1", [](ScenarioConfig* c) { c->threads = 2; }}}});
  axes.push_back({"digit",
                  {{"b0", [](ScenarioConfig* c) { c->grid_hi = 0; }},
                   {"b1", [](ScenarioConfig* c) { c->grid_hi = 1; }},
                   {"b2", [](ScenarioConfig* c) { c->grid_hi = 2; }}}});

  const std::vector<Scenario> scenarios = MakeScenarios(axes);
  ASSERT_EQ(scenarios.size(), 6u);
  const char* expected[] = {"a0.b0", "a0.b1", "a0.b2", "a1.b0", "a1.b1", "a1.b2"};
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(scenarios[i].name, expected[i]);
  }
  // Both axes' edits applied: the last scenario carries a1's and b2's knobs.
  EXPECT_EQ(scenarios.back().config.threads, 2);
  EXPECT_EQ(scenarios.back().config.grid_hi, 2);
  EXPECT_TRUE(MakeScenarios({}).empty());
}

TEST(ScenarioEngineTest, DefaultMatrixShapeAndUniqueNames) {
  const std::vector<Scenario> scenarios = MakeScenarios(DefaultAxes());
  // 6 programs x 4 policies x 4 mechanisms x 3 grids x 3 faults x 3 thread
  // counts x 2 deadlines x 2 sweep modes x 2 exec modes. The >= 1000 bound is
  // the acceptance criterion; the exact count pins the shipped axes.
  EXPECT_EQ(scenarios.size(), 20736u);
  EXPECT_GE(scenarios.size(), 1000u);

  std::set<std::string> names;
  for (const Scenario& scenario : scenarios) {
    EXPECT_TRUE(names.insert(scenario.name).second) << "duplicate " << scenario.name;
  }
}

TEST(ScenarioEngineTest, DeterministicOrderingAcrossCalls) {
  const std::vector<Scenario> first = MakeScenarios(DefaultAxes());
  const std::vector<Scenario> second = MakeScenarios(DefaultAxes());
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    ASSERT_EQ(first[i].name, second[i].name) << "index " << i;
  }
  EXPECT_EQ(first.front().name, "s0.pnone.surv.g2.fok.t1.dfull.swp.exi");
  EXPECT_EQ(first.back().name, "s5.pall.static.g4.fabort.t7.d1ms.swc.exc");
}

// The golden name fingerprint: scenario names appear in CI logs and bug
// reports, and a name must denote the same configuration forever. Renaming
// an axis value, reordering axes, or resizing the matrix all land here. If
// the change is intentional, update the pin (and expect old scenario names
// in bug reports to stop replaying).
TEST(ScenarioEngineTest, NameListMatchesGoldenFingerprint) {
  Fingerprinter fp;
  fp.Tag("scenario-names");
  const std::vector<Scenario> scenarios = MakeScenarios(DefaultAxes());
  fp.U64(scenarios.size());
  for (const Scenario& scenario : scenarios) {
    fp.Str(scenario.name);
  }
  EXPECT_EQ(fp.Digest().ToHex(), "db5eace2240fa630f1bdf6602b9dd4cb");
}

// ---------------------------------------------------------------------------
// Scenario -> job mapping.

TEST(ScenarioEngineTest, EveryScenarioBuildsAPreparableJob) {
  for (const Scenario& scenario : MakeScenarios(DefaultAxes())) {
    const CheckJobSpec spec = BuildJobSpec(scenario);
    EXPECT_EQ(spec.id, scenario.name);
    const Result<PreparedJob> prepared = PrepareJob(spec);
    ASSERT_TRUE(prepared.ok()) << scenario.name << ": " << prepared.error().ToString();
  }
}

TEST(ScenarioEngineTest, ProgramTextIsDeterministicAndParses) {
  const ScenarioConfig config;
  for (int i = 0; i < 6; ++i) {
    ScenarioConfig c = config;
    c.program_seed = kDefaultProgramSeedBase + static_cast<std::uint64_t>(i);
    const std::string text = ScenarioProgramText(c);
    EXPECT_EQ(text, ScenarioProgramText(c));
    EXPECT_TRUE(ParseProgram(text).ok()) << text;
  }
}

TEST(ScenarioEngineTest, FaultAxisExpandsToFaultSpecs) {
  Scenario scenario;
  scenario.name = "probe";
  scenario.config.fault = ScenarioFault::kNone;
  EXPECT_EQ(BuildJobSpec(scenario).fault_spec, "");
  scenario.config.fault = ScenarioFault::kTransient;
  const CheckJobSpec transient = BuildJobSpec(scenario);
  EXPECT_FALSE(transient.fault_spec.empty());
  EXPECT_GE(transient.retries, 1);
  scenario.config.fault = ScenarioFault::kAbort;
  EXPECT_FALSE(BuildJobSpec(scenario).fault_spec.empty());
}

// ---------------------------------------------------------------------------
// The runner: a stratified sample covering every fault mode, every mechanism
// kind and a deadline, cheap enough for tier-1. (The full matrix is the
// labeled scenario_matrix_test.)

TEST(ScenarioRunnerTest, SampledScenariosHoldTheirInvariants) {
  const std::vector<Scenario> all = MakeScenarios(DefaultAxes());
  std::vector<Scenario> sample;
  // One scenario per (mechanism, fault) cell plus one d1ms case, drawn
  // deterministically: first match wins.
  for (const char* mech : {"surv", "hw", "table", "static"}) {
    for (const char* fault : {"fok", "ftrans", "fabort"}) {
      const std::string want = std::string(".") + mech + ".";
      const std::string want_fault = std::string(".") + fault + ".";
      const auto it = std::find_if(all.begin(), all.end(), [&](const Scenario& s) {
        return s.name.find(want) != std::string::npos &&
               s.name.find(want_fault) != std::string::npos &&
               s.name.find(".dfull") != std::string::npos;
      });
      ASSERT_NE(it, all.end());
      sample.push_back(*it);
    }
  }
  const auto deadline_it = std::find_if(all.begin(), all.end(), [](const Scenario& s) {
    return s.name.find(".d1ms") != std::string::npos;
  });
  ASSERT_NE(deadline_it, all.end());
  sample.push_back(*deadline_it);

  // One class-sweep scenario per mechanism kind (clean, unbounded): the
  // runner's point-mode reference makes each a class ≡ point identity check.
  for (const char* mech : {"surv", "hw", "table", "static"}) {
    const std::string want = std::string(".") + mech + ".";
    const auto it = std::find_if(all.begin(), all.end(), [&](const Scenario& s) {
      return s.name.find(want) != std::string::npos &&
             s.name.find(".fok.") != std::string::npos &&
             s.name.find(".dfull.swc") != std::string::npos;
    });
    ASSERT_NE(it, all.end());
    sample.push_back(*it);
  }

  // One compiled-exec scenario per mechanism kind (clean, unbounded,
  // point-sweep): the runner's interpreted reference makes each a
  // compiled ≡ interpreted identity check.
  for (const char* mech : {"surv", "hw", "table", "static"}) {
    const std::string want = std::string(".") + mech + ".";
    const auto it = std::find_if(all.begin(), all.end(), [&](const Scenario& s) {
      return s.name.find(want) != std::string::npos &&
             s.name.find(".fok.") != std::string::npos &&
             s.name.find(".dfull.swp.exc") != std::string::npos;
    });
    ASSERT_NE(it, all.end());
    sample.push_back(*it);
  }

  ScenarioRunner runner;
  const ScenarioSummary summary = runner.RunAll(sample);
  EXPECT_EQ(summary.scenarios, sample.size());
  EXPECT_GT(summary.checks, 0u);
  EXPECT_TRUE(summary.ok()) << summary.ToString();
}

// ---------------------------------------------------------------------------
// The witness minimizer.

TEST(MinimizeTest, SizeMeasuresCountStatementsAndExprNodes) {
  const SourceProgram p =
      MustParseProgram("program p(a) { y = a + 1; if (a > 0) { y = 0; } }");
  // Statements: y=, if, y= (inner). Exprs: (a+1: 3 nodes), (a>0: 3), (0: 1).
  EXPECT_EQ(CountStmts(p), 3);
  EXPECT_EQ(ProgramSize(p), 3 + 7);
}

TEST(MinimizeTest, ShrinksToTheStatementsThePredicateNeeds) {
  // The predicate wants a while loop; everything else is noise to delete.
  const SourceProgram p = MustParseProgram(
      "program p(a, b) { locals v, c; v = a + b; y = v * 2; c = 2; "
      "while (c != 0) { y = y + 1; c = c - 1; } y = y - b; }");
  const WitnessPredicate has_loop = [](const SourceProgram& candidate) {
    return candidate.ToString().find("while") != std::string::npos;
  };
  ASSERT_TRUE(has_loop(p));
  MinimizeStats stats;
  const SourceProgram minimized = MinimizeWitness(p, has_loop, MinimizeOptions(), &stats);
  EXPECT_TRUE(has_loop(minimized));
  EXPECT_LT(ProgramSize(minimized), ProgramSize(p));
  EXPECT_EQ(stats.initial_size, ProgramSize(p));
  EXPECT_EQ(stats.final_size, ProgramSize(minimized));
  EXPECT_GT(stats.candidates_accepted, 0);
  // Nothing but the loop scaffold should survive: the while statement and
  // at most its body/counter support.
  EXPECT_LE(CountStmts(minimized), 3);
}

TEST(MinimizeTest, AlreadyMinimalProgramIsAFixpoint) {
  const SourceProgram p = MustParseProgram("program p(a) { y = a; }");
  const WitnessPredicate always = [](const SourceProgram&) { return true; };
  MinimizeStats stats;
  const SourceProgram minimized = MinimizeWitness(p, always, MinimizeOptions(), &stats);
  // `always` lets every edit through, so it shrinks to the empty body — and
  // then no edit applies.
  EXPECT_EQ(CountStmts(minimized), 0);
  const SourceProgram again = MinimizeWitness(minimized, always);
  EXPECT_EQ(again.ToString(), minimized.ToString());
}

TEST(MinimizeTest, BudgetBoundsPredicateEvaluations) {
  const SourceProgram p = MustParseProgram(
      "program p(a, b) { y = a; y = y + b; y = y * 2; y = y - a; y = y + 1; }");
  int calls = 0;
  const WitnessPredicate counting = [&calls](const SourceProgram&) {
    ++calls;
    return true;
  };
  MinimizeOptions options;
  options.max_candidates = 3;
  MinimizeStats stats;
  MinimizeWitness(p, counting, options, &stats);
  EXPECT_LE(stats.candidates_tried, 3);
  EXPECT_LE(calls, 3 + 1);  // + the caller-contract check on entry
}

// ---------------------------------------------------------------------------
// The fuzzer: a fixed-seed smoke run. Zero true disagreements is the same
// gate CI enforces; determinism in the seed is what makes any future failure
// reproducible from the log line alone.

FuzzerConfig SmokeConfig() {
  FuzzerConfig config;
  config.seed = 20260809;
  config.iterations = 30;
  config.threads = 7;
  config.minimize_budget = 512;
  return config;
}

TEST(FuzzerTest, FixedSeedSmokeRunIsCleanAndDeterministic) {
  DisagreementFuzzer fuzzer(SmokeConfig());
  const FuzzReport report = fuzzer.Run();
  EXPECT_TRUE(report.clean()) << report.ToString();
  EXPECT_EQ(report.stats.disagreements, 0u);
  EXPECT_EQ(report.stats.iterations, 30u);
  EXPECT_GT(report.stats.features, 0u);
  EXPECT_GT(report.stats.novel_inputs, 0u);

  DisagreementFuzzer replay(SmokeConfig());
  const FuzzReport second = replay.Run();
  EXPECT_EQ(second.ToString(), report.ToString());
  ASSERT_EQ(second.findings.size(), report.findings.size());
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    EXPECT_EQ(second.findings[i].program_text, report.findings[i].program_text);
    EXPECT_EQ(second.findings[i].kind, report.findings[i].kind);
  }
}

TEST(FuzzerTest, ExpectedFindingsSurfaceAndReplay) {
  // The paper predicts timing leaks and static-dynamic gaps in any
  // sufficiently varied corpus; the smoke budget is enough to meet at least
  // one expected phenomenon, and its (minimized) witness must replay from
  // its serialized form alone.
  FuzzerConfig config = SmokeConfig();
  config.iterations = 60;
  DisagreementFuzzer fuzzer(config);
  const FuzzReport report = fuzzer.Run();
  ASSERT_TRUE(report.clean()) << report.ToString();
  ASSERT_GT(report.stats.expected_findings, 0u) << report.ToString();
  for (const FuzzFinding& finding : report.findings) {
    const Result<FuzzFinding> round_tripped = FindingFromJson(finding.ToJson());
    ASSERT_TRUE(round_tripped.ok()) << round_tripped.error().ToString();
    const Result<bool> replayed = ReplayFinding(round_tripped.value());
    ASSERT_TRUE(replayed.ok()) << replayed.error().ToString();
    EXPECT_TRUE(replayed.value())
        << FindingKindName(finding.kind) << " witness did not reproduce:\n"
        << finding.program_text;
  }
}

// ---------------------------------------------------------------------------
// Witness serialization and replay, independent of any fuzzer run.

TEST(WitnessTest, HandWrittenTimingLeakWitnessReplays) {
  // Sound for values (y == pub on every input) but the then-arm runs longer,
  // so observing time splits the allow(0) classes: the Theorem 3 / 3' gap.
  FuzzFinding finding;
  finding.kind = FindingKind::kTimingLeakWitness;
  finding.program_text =
      "program p(pub, sec) { if (sec > 0) { y = pub; y = y; } else { y = pub; } }";
  finding.allow_bits = 1;  // allow(0) = {pub}
  finding.grid_lo = -1;
  finding.grid_hi = 1;
  const Result<bool> replayed = ReplayFinding(finding);
  ASSERT_TRUE(replayed.ok()) << replayed.error().ToString();
  EXPECT_TRUE(replayed.value());

  // The same program is NOT a surveillance-unsound witness: the monitor
  // masks nothing here (y never reads sec), so that kind must not reproduce.
  finding.kind = FindingKind::kSurveillanceUnsound;
  const Result<bool> unsound = ReplayFinding(finding);
  ASSERT_TRUE(unsound.ok());
  EXPECT_FALSE(unsound.value());
}

TEST(WitnessTest, SerializationRejectsMalformedWitnesses) {
  EXPECT_FALSE(FindingFromJson(Json::MakeArray()).ok());
  Json no_kind = Json::MakeObject();
  no_kind.Set("program", Json::MakeString("program p(a) { y = a; }"));
  EXPECT_FALSE(FindingFromJson(no_kind).ok());
  Json bad_kind = Json::MakeObject();
  bad_kind.Set("kind", Json::MakeString("warp-drive"));
  bad_kind.Set("program", Json::MakeString("program p(a) { y = a; }"));
  bad_kind.Set("allow_bits", Json::MakeInt(1));
  EXPECT_FALSE(FindingFromJson(bad_kind).ok());
  FuzzFinding unparsable;
  unparsable.kind = FindingKind::kTimingLeakWitness;
  unparsable.program_text = "not a program";
  EXPECT_FALSE(ReplayFinding(unparsable).ok());
}

TEST(WitnessTest, KindNamesRoundTrip) {
  for (FindingKind kind :
       {FindingKind::kParallelMismatch, FindingKind::kAuditMismatch,
        FindingKind::kCacheMismatch, FindingKind::kTableMismatch,
        FindingKind::kServeMismatch, FindingKind::kClassVsPointMismatch,
        FindingKind::kCompiledVsInterpretedMismatch,
        FindingKind::kSurveillanceUnsound, FindingKind::kStaticCertifiedUnsound,
        FindingKind::kTransformChangedMeaning, FindingKind::kTimingLeakWitness,
        FindingKind::kTransformCompletenessFlip, FindingKind::kStaticDynamicGap}) {
    const std::string name = FindingKindName(kind);
    EXPECT_NE(name, "?");
    ASSERT_TRUE(ParseFindingKind(name).has_value()) << name;
    EXPECT_EQ(*ParseFindingKind(name), kind);
  }
  EXPECT_FALSE(ParseFindingKind("?").has_value());
}

// ---------------------------------------------------------------------------
// The checked-in regression corpus: every witness file the fuzzer ever
// promoted must keep replaying. Expected-kind witnesses are permanent
// exhibits (must still reproduce); disagreement-kind witnesses are fixed
// bugs (must NOT reproduce — if one does, the bug is back).

TEST(WitnessTest, CheckedInRegressionWitnessesReplay) {
  const std::filesystem::path dir = SECPOL_REGRESSION_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  int witnesses = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".json") {
      continue;
    }
    ++witnesses;
    std::ifstream in(entry.path());
    std::stringstream buffer;
    buffer << in.rdbuf();
    const Result<Json> parsed = Json::Parse(buffer.str());
    ASSERT_TRUE(parsed.ok()) << entry.path() << ": " << parsed.error().ToString();
    const Result<FuzzFinding> finding = FindingFromJson(parsed.value());
    ASSERT_TRUE(finding.ok()) << entry.path() << ": " << finding.error().ToString();
    const Result<bool> replayed = ReplayFinding(finding.value());
    ASSERT_TRUE(replayed.ok()) << entry.path() << ": " << replayed.error().ToString();
    if (IsDisagreement(finding.value().kind)) {
      EXPECT_FALSE(replayed.value())
          << entry.path() << ": fixed disagreement reproduces again";
    } else {
      EXPECT_TRUE(replayed.value()) << entry.path() << ": exhibit no longer reproduces";
    }
  }
  EXPECT_GT(witnesses, 0) << "no witness files in " << dir;
}

}  // namespace
}  // namespace secpol
