// Tests for the miniature multiprogramming kernel and the resource-usage
// covert channel ("information can be passed via resource usage patterns").

#include <gtest/gtest.h>

#include "src/monitor/kernel.h"

namespace secpol {
namespace {

TEST(MiniKernelTest, AllocAndFreeAccounting) {
  MiniKernel kernel(4, ResourceAccounting::kGlobalAccounting);
  int allocs = 0;
  kernel.Spawn("p", [&allocs](ProcessContext& ctx) {
    if (allocs < 3) {
      EXPECT_TRUE(ctx.AllocBuffer());
      ++allocs;
      return true;
    }
    return false;
  });
  kernel.RunUntilIdle();
  EXPECT_EQ(kernel.held_by(0), 3);
  EXPECT_EQ(kernel.free_count(), 1);
}

TEST(MiniKernelTest, PoolExhaustionFailsAlloc) {
  MiniKernel kernel(2, ResourceAccounting::kGlobalAccounting);
  bool third_failed = false;
  kernel.Spawn("p", [&third_failed](ProcessContext& ctx) {
    ctx.AllocBuffer();
    ctx.AllocBuffer();
    third_failed = !ctx.AllocBuffer();
    return false;
  });
  kernel.RunUntilIdle();
  EXPECT_TRUE(third_failed);
}

TEST(MiniKernelTest, FreeWithoutHoldingFails) {
  MiniKernel kernel(2, ResourceAccounting::kGlobalAccounting);
  bool failed = false;
  kernel.Spawn("p", [&failed](ProcessContext& ctx) {
    failed = !ctx.FreeBuffer();
    return false;
  });
  kernel.RunUntilIdle();
  EXPECT_TRUE(failed);
}

TEST(MiniKernelTest, PartitionedQuotaCapsAllocation) {
  MiniKernel kernel(4, ResourceAccounting::kPartitionedAccounting);
  int granted = 0;
  kernel.Spawn("hog", [&granted](ProcessContext& ctx) {
    while (ctx.AllocBuffer()) {
      ++granted;
    }
    return false;
  });
  kernel.Spawn("other", [](ProcessContext&) { return false; });
  kernel.RunUntilIdle();
  EXPECT_EQ(granted, 2);  // pool 4 / 2 processes
}

TEST(MiniKernelTest, RoundRobinInterleavesAndTerminates) {
  MiniKernel kernel(4, ResourceAccounting::kGlobalAccounting);
  std::vector<int> order;
  kernel.Spawn("a", [&order](ProcessContext& ctx) {
    order.push_back(0);
    return ctx.Round() < 2;
  });
  kernel.Spawn("b", [&order](ProcessContext& ctx) {
    order.push_back(1);
    return ctx.Round() < 1;
  });
  const Value rounds = kernel.RunUntilIdle();
  EXPECT_GE(rounds, 3);
  // Round 0: a then b; round 1: a then b(last); round 2: a(last).
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 1, 0}));
}

TEST(MiniKernelTest, MaxRoundsBoundsRunaways) {
  MiniKernel kernel(1, ResourceAccounting::kGlobalAccounting);
  kernel.Spawn("spin", [](ProcessContext&) { return true; });
  EXPECT_EQ(kernel.RunUntilIdle(/*max_rounds=*/10), 10);
}

TEST(MiniKernelTest, GlobalObservableSeesOtherProcesses) {
  MiniKernel kernel(4, ResourceAccounting::kGlobalAccounting);
  Value observed = -1;
  kernel.Spawn("alloc", [](ProcessContext& ctx) {
    ctx.AllocBuffer();
    return false;
  });
  kernel.Spawn("watch", [&observed](ProcessContext& ctx) {
    observed = ctx.ReadFreeCount();
    return false;
  });
  kernel.RunUntilIdle();
  EXPECT_EQ(observed, 3);  // the other process's allocation is visible
}

TEST(MiniKernelTest, PartitionedObservableIsLocalOnly) {
  MiniKernel kernel(4, ResourceAccounting::kPartitionedAccounting);
  Value observed = -1;
  kernel.Spawn("alloc", [](ProcessContext& ctx) {
    ctx.AllocBuffer();
    return false;
  });
  kernel.Spawn("watch", [&observed](ProcessContext& ctx) {
    observed = ctx.ReadFreeCount();
    return false;
  });
  kernel.RunUntilIdle();
  EXPECT_EQ(observed, 2);  // own quota, untouched by the other process
}

// --- The covert channel itself ---

class CovertChannelTest : public ::testing::TestWithParam<Value> {};

TEST_P(CovertChannelTest, GlobalAccountingLeaksTheSecretExactly) {
  const Value secret = GetParam();
  const Value recovered =
      RunCovertChannel(secret, /*secret_bits=*/12, ResourceAccounting::kGlobalAccounting);
  EXPECT_EQ(recovered, secret);
}

INSTANTIATE_TEST_SUITE_P(Secrets, CovertChannelTest,
                         ::testing::Values<Value>(0, 1, 0x555, 0xABC, 0xFFF, 0x123));

TEST(CovertChannelTest, PartitionedAccountingClosesTheChannel) {
  int leaked = 0;
  const std::vector<Value> secrets = {0x001, 0x123, 0x456, 0x789, 0xABC, 0xDEF};
  for (const Value secret : secrets) {
    const Value recovered = RunCovertChannel(secret, /*secret_bits=*/12,
                                             ResourceAccounting::kPartitionedAccounting);
    if (recovered == secret) {
      ++leaked;
    }
  }
  // The receiver's observable is constant under partitioning: it cannot
  // track the sender (at most one accidental collision tolerated).
  EXPECT_LE(leaked, 1);
}

TEST(CovertChannelTest, ChannelWidthIsConfigurable) {
  for (int bits_per_round : {1, 2, 4}) {
    EXPECT_EQ(RunCovertChannel(0x2A5, 10, ResourceAccounting::kGlobalAccounting,
                               bits_per_round),
              0x2A5)
        << bits_per_round;
  }
}

}  // namespace
}  // namespace secpol
