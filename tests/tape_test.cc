// Tests for the one-way tape machine and the tab(i) soundness matrix (E15).

#include <gtest/gtest.h>

#include "src/mechanism/soundness.h"
#include "src/policy/policy.h"
#include "src/tape/tape.h"

namespace secpol {
namespace {

TEST(TapeMachineTest, MaterializesBlocks) {
  TapeMachine tape({{2, 7}, {3, 9}});
  EXPECT_EQ(tape.Read(), 7);
  tape.Advance();
  tape.Advance();
  EXPECT_EQ(tape.Read(), 9);
}

TEST(TapeMachineTest, ReadPastEndYieldsZero) {
  TapeMachine tape({{1, 5}});
  tape.Advance();
  EXPECT_EQ(tape.Read(), 0);
}

TEST(TapeMachineTest, WalkCostDependsOnSkippedLengths) {
  TapeMachine a({{2, 7}, {1, 9}});
  a.Tab(1, SeekStrategy::kWalk);
  TapeMachine b({{5, 7}, {1, 9}});
  b.Tab(1, SeekStrategy::kWalk);
  EXPECT_LT(a.steps(), b.steps());
}

TEST(TapeMachineTest, TabLinearAlsoDependsOnSkippedLengths) {
  TapeMachine a({{2, 7}, {1, 9}});
  a.Tab(1, SeekStrategy::kTabLinear);
  TapeMachine b({{5, 7}, {1, 9}});
  b.Tab(1, SeekStrategy::kTabLinear);
  EXPECT_LT(a.steps(), b.steps());
}

TEST(TapeMachineTest, TabConstantIsUniform) {
  TapeMachine a({{2, 7}, {1, 9}});
  a.Tab(1, SeekStrategy::kTabConstant);
  TapeMachine b({{50, 7}, {1, 9}});
  b.Tab(1, SeekStrategy::kTabConstant);
  EXPECT_EQ(a.steps(), b.steps());
  EXPECT_EQ(a.steps(), 1u);
}

TEST(BlockReaderTest, ReadsTargetSymbol) {
  const auto reader = MakeBlockReader(2, 1, SeekStrategy::kTabConstant);
  // (len0, sym0, len1, sym1)
  EXPECT_EQ(reader->Run(Input{3, 7, 2, 9}).value, 9);
  EXPECT_EQ(reader->Run(Input{0, 7, 2, 9}).value, 9);
}

TEST(BlockReaderTest, EmptyTargetBlockReadsZero) {
  const auto reader = MakeBlockReader(2, 1, SeekStrategy::kTabConstant);
  EXPECT_EQ(reader->Run(Input{3, 7, 0, 9}).value, 0);
}

TEST(BlockReaderTest, BlockCoordinatesHelper) {
  EXPECT_EQ(BlockCoordinates(0), (VarSet{0, 1}));
  EXPECT_EQ(BlockCoordinates(2), (VarSet{4, 5}));
}

// --- The E15 soundness matrix ---

struct TapeCase {
  SeekStrategy strategy;
  Observability obs;
  bool expect_sound;
};

class TapeSoundnessTest : public ::testing::TestWithParam<TapeCase> {};

TEST_P(TapeSoundnessTest, MatrixEntry) {
  const TapeCase& c = GetParam();
  // Two blocks; policy allow(z2) — the paper's allow(2), coordinates {2,3}.
  const auto reader = MakeBlockReader(2, 1, c.strategy);
  const AllowPolicy policy(4, BlockCoordinates(1));
  const InputDomain domain = InputDomain::PerInput({
      {0, 1, 3},  // len of z1 — the disallowed length the walk leaks
      {5, 6},     // symbol of z1
      {1, 2},     // len of z2
      {8, 9},     // symbol of z2
  });
  const auto report = CheckSoundness(*reader, policy, domain, c.obs);
  EXPECT_EQ(report.sound, c.expect_sound)
      << SeekStrategyName(c.strategy) << " / " << ObservabilityName(c.obs) << "\n"
      << report.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, TapeSoundnessTest,
    ::testing::Values(
        // Time unobservable: every strategy is sound (the value never
        // depends on z1).
        TapeCase{SeekStrategy::kWalk, Observability::kValueOnly, true},
        TapeCase{SeekStrategy::kTabLinear, Observability::kValueOnly, true},
        TapeCase{SeekStrategy::kTabConstant, Observability::kValueOnly, true},
        // Time observable: "no program Q can read z2 and also be sound...
        // it will encode the length of z1" — unless tab is constant-time.
        TapeCase{SeekStrategy::kWalk, Observability::kValueAndTime, false},
        TapeCase{SeekStrategy::kTabLinear, Observability::kValueAndTime, false},
        TapeCase{SeekStrategy::kTabConstant, Observability::kValueAndTime, true}));

TEST(TapeSoundnessTest, ReadingOwnBlockIsAlwaysFine) {
  // Reading block 0 crosses nothing: sound in every configuration.
  for (const SeekStrategy s :
       {SeekStrategy::kWalk, SeekStrategy::kTabLinear, SeekStrategy::kTabConstant}) {
    const auto reader = MakeBlockReader(2, 0, s);
    const AllowPolicy policy(4, BlockCoordinates(0));
    const InputDomain domain = InputDomain::PerInput({{1, 2}, {5, 6}, {0, 3}, {8, 9}});
    EXPECT_TRUE(
        CheckSoundness(*reader, policy, domain, Observability::kValueAndTime).sound)
        << SeekStrategyName(s);
  }
}

}  // namespace
}  // namespace secpol
