// Tests for the bytecode backend: exact behavioural equivalence with the
// reference interpreter (output, steps, halt box, fuel behaviour).

#include <gtest/gtest.h>

#include "src/corpus/generator.h"
#include "src/flowchart/bytecode.h"
#include "src/flowchart/interpreter.h"
#include "src/flowlang/lower.h"
#include "src/mechanism/domain.h"
#include "src/util/strings.h"

namespace secpol {
namespace {

void ExpectSameExecution(const Program& q, InputView input, StepCount fuel = kDefaultFuel) {
  const BytecodeProgram bc = CompileToBytecode(q);
  const ExecResult ref = RunProgram(q, input, fuel);
  const ExecResult got = RunBytecode(bc, input, fuel);
  EXPECT_EQ(ref.halted, got.halted) << q.name() << FormatInput(input);
  EXPECT_EQ(ref.output, got.output) << q.name() << FormatInput(input);
  EXPECT_EQ(ref.steps, got.steps) << q.name() << FormatInput(input);
  EXPECT_EQ(ref.halt_box, got.halt_box) << q.name() << FormatInput(input);
}

TEST(BytecodeTest, StraightLine) {
  const Program q = MustCompile("program q(a, b) { y = a * 10 + b; }");
  ExpectSameExecution(q, Input{3, 4});
  ExpectSameExecution(q, Input{-2, 7});
}

TEST(BytecodeTest, Branches) {
  const Program q =
      MustCompile("program q(x) { if (x > 0) { y = 1; } else { y = 2; } }");
  for (Value x : {-1, 0, 1, 5}) {
    ExpectSameExecution(q, Input{x});
  }
}

TEST(BytecodeTest, LoopsAndSteps) {
  const Program q = MustCompile(
      "program q(n) { locals c; c = n; while (c != 0) { y = y + c; c = c - 1; } }");
  for (Value n : {0, 1, 5, 20}) {
    ExpectSameExecution(q, Input{n});
  }
}

TEST(BytecodeTest, MultipleHaltBoxes) {
  const Program q = MustCompile(
      "program q(x) { if (x == 0) { y = 7; halt; } y = 8; }");
  ExpectSameExecution(q, Input{0});
  ExpectSameExecution(q, Input{1});
}

TEST(BytecodeTest, SelfReferencingAssignmentReadsOldValue) {
  // `y = y + a` compiled with y as destination must read the old y in the
  // operand.
  const Program q = MustCompile("program q(a) { y = 5; y = y + a; }");
  const BytecodeProgram bc = CompileToBytecode(q);
  EXPECT_EQ(RunBytecode(bc, Input{3}).output, 8);
}

TEST(BytecodeTest, SelectCompiles) {
  const Program q = MustCompile("program q(a, b, c) { y = select(a, b, c); }");
  ExpectSameExecution(q, Input{1, 10, 20});
  ExpectSameExecution(q, Input{0, 10, 20});
}

TEST(BytecodeTest, FuelExhaustionMatchesInterpreter) {
  const Program q = MustCompile(
      "program spin(x) { locals c; c = 0 - 1; while (c != 0) { c = c - 1; } }");
  ExpectSameExecution(q, Input{0}, /*fuel=*/500);
}

TEST(BytecodeTest, RegistersCoverTemporaries) {
  const Program q = MustCompile("program q(a, b) { y = (a + b) * (a - b) + (a * b); }");
  const BytecodeProgram bc = CompileToBytecode(q);
  EXPECT_GT(bc.num_registers(), q.num_vars());
  ExpectSameExecution(q, Input{6, 2});
}

TEST(BytecodeTest, ToStringListsInstructions) {
  const Program q = MustCompile("program q(a) { y = a + 1; }");
  const std::string text = CompileToBytecode(q).ToString();
  EXPECT_NE(text.find("bytecode"), std::string::npos);
  EXPECT_NE(text.find("halt"), std::string::npos);
  EXPECT_NE(text.find("jump"), std::string::npos);
}

class BytecodeDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BytecodeDifferentialTest, MatchesInterpreterOnRandomPrograms) {
  CorpusConfig config;
  config.num_inputs = 3;
  const Program q = Lower(GenerateProgram(config, GetParam(), "bc"));
  const BytecodeProgram bc = CompileToBytecode(q);
  InputDomain::Uniform(3, {-2, 0, 1, 3}).ForEach([&](InputView input) {
    const ExecResult ref = RunProgram(q, input);
    const ExecResult got = RunBytecode(bc, input);
    ASSERT_EQ(ref.halted, got.halted) << "seed " << GetParam() << FormatInput(input);
    ASSERT_EQ(ref.output, got.output) << "seed " << GetParam() << FormatInput(input);
    ASSERT_EQ(ref.steps, got.steps) << "seed " << GetParam() << FormatInput(input);
    ASSERT_EQ(ref.halt_box, got.halt_box) << "seed " << GetParam() << FormatInput(input);
  });
}

INSTANTIATE_TEST_SUITE_P(Corpus, BytecodeDifferentialTest,
                         ::testing::Range<std::uint64_t>(8000, 8060));

}  // namespace
}  // namespace secpol
