// Tests for the bytecode backend: exact behavioural equivalence with the
// reference interpreter (output, steps, halt box, fuel behaviour).

#include <gtest/gtest.h>

#include "src/corpus/generator.h"
#include "src/flowchart/bytecode.h"
#include "src/flowchart/interpreter.h"
#include "src/flowlang/lower.h"
#include "src/mechanism/domain.h"
#include "src/util/strings.h"

namespace secpol {
namespace {

void ExpectSameExecution(const Program& q, InputView input, StepCount fuel = kDefaultFuel) {
  const BytecodeProgram bc = CompileToBytecode(q);
  const ExecResult ref = RunProgram(q, input, fuel);
  const ExecResult got = RunBytecode(bc, input, fuel);
  EXPECT_EQ(ref.halted, got.halted) << q.name() << FormatInput(input);
  EXPECT_EQ(ref.output, got.output) << q.name() << FormatInput(input);
  EXPECT_EQ(ref.steps, got.steps) << q.name() << FormatInput(input);
  EXPECT_EQ(ref.halt_box, got.halt_box) << q.name() << FormatInput(input);
}

TEST(BytecodeTest, StraightLine) {
  const Program q = MustCompile("program q(a, b) { y = a * 10 + b; }");
  ExpectSameExecution(q, Input{3, 4});
  ExpectSameExecution(q, Input{-2, 7});
}

TEST(BytecodeTest, Branches) {
  const Program q =
      MustCompile("program q(x) { if (x > 0) { y = 1; } else { y = 2; } }");
  for (Value x : {-1, 0, 1, 5}) {
    ExpectSameExecution(q, Input{x});
  }
}

TEST(BytecodeTest, LoopsAndSteps) {
  const Program q = MustCompile(
      "program q(n) { locals c; c = n; while (c != 0) { y = y + c; c = c - 1; } }");
  for (Value n : {0, 1, 5, 20}) {
    ExpectSameExecution(q, Input{n});
  }
}

TEST(BytecodeTest, MultipleHaltBoxes) {
  const Program q = MustCompile(
      "program q(x) { if (x == 0) { y = 7; halt; } y = 8; }");
  ExpectSameExecution(q, Input{0});
  ExpectSameExecution(q, Input{1});
}

TEST(BytecodeTest, SelfReferencingAssignmentReadsOldValue) {
  // `y = y + a` compiled with y as destination must read the old y in the
  // operand.
  const Program q = MustCompile("program q(a) { y = 5; y = y + a; }");
  const BytecodeProgram bc = CompileToBytecode(q);
  EXPECT_EQ(RunBytecode(bc, Input{3}).output, 8);
}

TEST(BytecodeTest, SelectCompiles) {
  const Program q = MustCompile("program q(a, b, c) { y = select(a, b, c); }");
  ExpectSameExecution(q, Input{1, 10, 20});
  ExpectSameExecution(q, Input{0, 10, 20});
}

TEST(BytecodeTest, FuelExhaustionMatchesInterpreter) {
  const Program q = MustCompile(
      "program spin(x) { locals c; c = 0 - 1; while (c != 0) { c = c - 1; } }");
  ExpectSameExecution(q, Input{0}, /*fuel=*/500);
}

TEST(BytecodeTest, RegistersCoverTemporaries) {
  const Program q = MustCompile("program q(a, b) { y = (a + b) * (a - b) + (a * b); }");
  const BytecodeProgram bc = CompileToBytecode(q);
  EXPECT_GT(bc.num_registers(), q.num_vars());
  ExpectSameExecution(q, Input{6, 2});
}

TEST(BytecodeTest, ToStringListsInstructions) {
  const Program q = MustCompile("program q(a) { y = a + 1; }");
  const std::string text = CompileToBytecode(q).ToString();
  EXPECT_NE(text.find("bytecode"), std::string::npos);
  EXPECT_NE(text.find("halt"), std::string::npos);
  EXPECT_NE(text.find("jump"), std::string::npos);
}

// --------------------------------------------------------------------------
// Fail-closed typed errors. These run identically in Release builds (no
// NDEBUG stripping): the guards are thrown, not asserted.

TEST(BytecodeTest, RunRejectsWrongArityWithTypedError) {
  const Program q = MustCompile("program q(a, b) { y = a + b; }");
  const BytecodeProgram bc = CompileToBytecode(q);
  EXPECT_THROW(RunBytecode(bc, Input{1}), ArityError);
  EXPECT_THROW(RunBytecode(bc, Input{1, 2, 3}), ArityError);
  try {
    RunBytecode(bc, Input{1});
    FAIL() << "expected ArityError";
  } catch (const ArityError& error) {
    EXPECT_NE(std::string(error.what()).find("expects 2 inputs"), std::string::npos);
  }
}

TEST(BytecodeTest, CompileRejectsInvalidProgramWithTypedError) {
  // A hand-built program whose start box points at an out-of-range successor
  // fails validation; the compiler must throw rather than emit garbage code.
  Program broken("broken", {"a"}, {});
  Box start;
  start.kind = Box::Kind::kStart;
  start.next = 42;
  broken.AddBox(start);
  ASSERT_FALSE(broken.Validate().ok());
  EXPECT_THROW(CompileToBytecode(broken), BytecodeError);
}

TEST(BytecodeTest, PlainRunnerRejectsInstrumentedCode) {
  // Code carrying surveillance label ops must not run on the plain runner —
  // it would silently skip the release check.
  const Program q = MustCompile("program q(a, b) { y = a; }");
  BcSurveillance instr;
  const BytecodeProgram surveilled = CompileToBytecode(q, &instr);
  EXPECT_TRUE(surveilled.instrumented());
  EXPECT_THROW(RunBytecode(surveilled, Input{1, 2}), BytecodeError);
}

TEST(BytecodeTest, CallerSuppliedScratchMatchesAndIsReusable) {
  const Program q = MustCompile(
      "program q(n) { locals c; c = n; while (c != 0) { y = y + c; c = c - 1; } }");
  const Program r = MustCompile("program r(a, b) { y = (a + b) * (a - b); }");
  const BytecodeProgram bq = CompileToBytecode(q);
  const BytecodeProgram br = CompileToBytecode(r);
  BcScratch scratch;
  for (Value n : {0, 3, 9}) {
    const ExecResult ref = RunProgram(q, Input{n});
    const ExecResult got = RunBytecode(bq, Input{n}, scratch);
    EXPECT_EQ(ref.output, got.output);
    EXPECT_EQ(ref.steps, got.steps);
    EXPECT_EQ(ref.halt_box, got.halt_box);
  }
  // The same scratch serves a different program (different register count).
  EXPECT_EQ(RunBytecode(br, Input{6, 2}, scratch).output, RunProgram(r, Input{6, 2}).output);
}

// --------------------------------------------------------------------------
// Fuel boundaries: interpreter ≡ bytecode at fuel 0, at exactly the halting
// step count, one below it, and mid-run exhaustion.

TEST(BytecodeTest, FuelBoundaryDifferentials) {
  const Program q = MustCompile(
      "program q(n) { locals c; c = n; while (c != 0) { y = y + c; c = c - 1; } }");
  const BytecodeProgram bc = CompileToBytecode(q);
  const StepCount halting_steps = RunProgram(q, Input{5}).steps;
  for (StepCount fuel : {StepCount{0}, StepCount{1}, halting_steps - 1, halting_steps,
                         halting_steps + 1, kDefaultFuel}) {
    const ExecResult ref = RunProgram(q, Input{5}, fuel);
    const ExecResult got = RunBytecode(bc, Input{5}, fuel);
    EXPECT_EQ(ref.halted, got.halted) << "fuel " << fuel;
    EXPECT_EQ(ref.output, got.output) << "fuel " << fuel;
    EXPECT_EQ(ref.steps, got.steps) << "fuel " << fuel;
    EXPECT_EQ(ref.halt_box, got.halt_box) << "fuel " << fuel;
  }
}

class BytecodeDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BytecodeDifferentialTest, MatchesInterpreterOnRandomPrograms) {
  CorpusConfig config;
  config.num_inputs = 3;
  const Program q = Lower(GenerateProgram(config, GetParam(), "bc"));
  const BytecodeProgram bc = CompileToBytecode(q);
  InputDomain::Uniform(3, {-2, 0, 1, 3}).ForEach([&](InputView input) {
    const ExecResult ref = RunProgram(q, input);
    const ExecResult got = RunBytecode(bc, input);
    ASSERT_EQ(ref.halted, got.halted) << "seed " << GetParam() << FormatInput(input);
    ASSERT_EQ(ref.output, got.output) << "seed " << GetParam() << FormatInput(input);
    ASSERT_EQ(ref.steps, got.steps) << "seed " << GetParam() << FormatInput(input);
    ASSERT_EQ(ref.halt_box, got.halt_box) << "seed " << GetParam() << FormatInput(input);
  });
}

INSTANTIATE_TEST_SUITE_P(Corpus, BytecodeDifferentialTest,
                         ::testing::Range<std::uint64_t>(8000, 8060));

}  // namespace
}  // namespace secpol
