// Tests for the security-class lattices and lattice-labelled enforcement.

#include <gtest/gtest.h>

#include <memory>

#include "src/corpus/generator.h"
#include "src/flowlang/lower.h"
#include "src/lattice/flow_mechanism.h"
#include "src/lattice/lattice.h"
#include "src/mechanism/soundness.h"
#include "src/policy/policy.h"
#include "src/surveillance/surveillance.h"
#include "src/util/strings.h"

namespace secpol {
namespace {

TEST(SubsetLatticeTest, BasicOperations) {
  const SubsetLattice lattice(4);
  EXPECT_EQ(lattice.Bottom(), 0u);
  EXPECT_EQ(lattice.Top(), 0xfu);
  EXPECT_EQ(lattice.Join(0b0011, 0b0101), 0b0111u);
  EXPECT_EQ(lattice.Meet(0b0011, 0b0101), 0b0001u);
  EXPECT_TRUE(lattice.Leq(0b0001, 0b0011));
  EXPECT_FALSE(lattice.Leq(0b0100, 0b0011));
  EXPECT_TRUE(lattice.IsValid(0xf));
  EXPECT_FALSE(lattice.IsValid(0x10));
  EXPECT_EQ(lattice.ClassName(0b101), "{0,2}");
}

TEST(LinearLatticeTest, MilitaryChain) {
  const LinearLattice lattice = LinearLattice::Military();
  EXPECT_EQ(lattice.Bottom(), 0u);
  EXPECT_EQ(lattice.Top(), 3u);
  EXPECT_EQ(lattice.ClassName(0), "unclassified");
  EXPECT_EQ(lattice.ClassName(3), "top-secret");
  EXPECT_EQ(lattice.Join(1, 2), 2u);
  EXPECT_EQ(lattice.Meet(1, 2), 1u);
  EXPECT_TRUE(lattice.Leq(0, 3));
  EXPECT_FALSE(lattice.Leq(3, 2));
}

TEST(ProductLatticeTest, ComponentwiseOrder) {
  const auto chain = std::make_shared<LinearLattice>(LinearLattice::Military());
  const auto compartments = std::make_shared<SubsetLattice>(2);
  const ProductLattice product(chain, compartments);

  const ClassId secret_a = ProductLattice::Pack(2, 0b01);
  const ClassId conf_ab = ProductLattice::Pack(1, 0b11);
  // Incomparable: level higher but compartments smaller.
  EXPECT_FALSE(product.Leq(secret_a, conf_ab));
  EXPECT_FALSE(product.Leq(conf_ab, secret_a));
  EXPECT_EQ(product.Join(secret_a, conf_ab), ProductLattice::Pack(2, 0b11));
  EXPECT_EQ(product.Meet(secret_a, conf_ab), ProductLattice::Pack(1, 0b01));
  EXPECT_NE(product.ClassName(secret_a).find("secret"), std::string::npos);
}

class LatticeLawTest : public ::testing::TestWithParam<int> {};

TEST(LatticeLawsTest, SubsetLatticeSatisfiesAllLaws) {
  EXPECT_EQ(CheckLatticeLaws(SubsetLattice(3)), "");
}

TEST(LatticeLawsTest, LinearLatticeSatisfiesAllLaws) {
  EXPECT_EQ(CheckLatticeLaws(LinearLattice::Military()), "");
}

TEST(LatticeLawsTest, ProductLatticeSatisfiesAllLaws) {
  const auto chain = std::make_shared<LinearLattice>(LinearLattice::Military());
  const auto subsets = std::make_shared<SubsetLattice>(2);
  EXPECT_EQ(CheckLatticeLaws(ProductLattice(chain, subsets)), "");
}

TEST(LatticeLawsTest, CheckerCatchesBrokenLattice) {
  // A deliberately broken "lattice": join is max but meet is constant 0 over
  // a chain of 3 — absorption fails.
  class Broken : public SecurityLattice {
   public:
    ClassId Bottom() const override { return 0; }
    ClassId Top() const override { return 2; }
    ClassId Join(ClassId a, ClassId b) const override { return a > b ? a : b; }
    ClassId Meet(ClassId, ClassId) const override { return 0; }
    bool Leq(ClassId a, ClassId b) const override { return a <= b; }
    bool IsValid(ClassId a) const override { return a <= 2; }
    std::vector<ClassId> AllClasses() const override { return {0, 1, 2}; }
    std::string ClassName(ClassId a) const override { return std::to_string(a); }
    std::string name() const override { return "broken"; }
  };
  EXPECT_NE(CheckLatticeLaws(Broken()), "");
}

// --- Lattice-labelled enforcement ---

TEST(LatticeFlowTest, ReleasesWithinClearance) {
  const Program q = MustCompile("program q(lo, hi) { y = lo + 1; }");
  const auto lattice = std::make_shared<LinearLattice>(LinearLattice::Military());
  const LatticeFlowMechanism m(Program(q), lattice, {0, 3}, /*clearance=*/1);
  const Outcome o = m.Run(Input{4, 9});
  EXPECT_TRUE(o.IsValue());
  EXPECT_EQ(o.value, 5);
}

TEST(LatticeFlowTest, BlocksAboveClearance) {
  const Program q = MustCompile("program q(lo, hi) { y = hi; }");
  const auto lattice = std::make_shared<LinearLattice>(LinearLattice::Military());
  const LatticeFlowMechanism m(Program(q), lattice, {0, 3}, /*clearance=*/2);
  const Outcome o = m.Run(Input{4, 9});
  EXPECT_TRUE(o.IsViolation());
  EXPECT_NE(o.notice.find("top-secret"), std::string::npos);
}

TEST(LatticeFlowTest, ImplicitFlowThroughPc) {
  const Program q = MustCompile("program q(hi) { if (hi == 0) { y = 1; } else { y = 2; } }");
  const auto lattice = std::make_shared<LinearLattice>(LinearLattice::Military());
  const LatticeFlowMechanism m(Program(q), lattice, {3}, /*clearance=*/0);
  EXPECT_TRUE(m.Run(Input{0}).IsViolation());
}

// With the subset lattice, classification x_i -> {i}, and clearance J, the
// lattice mechanism must coincide with Section 3 surveillance.
class LatticeAgreementTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LatticeAgreementTest, SubsetLatticeMatchesSurveillance) {
  CorpusConfig config;
  config.num_inputs = 3;
  const Program q = Lower(GenerateProgram(config, GetParam(), "lat"));
  const VarSet allowed{0, 2};

  const SurveillanceMechanism surv = MakeSurveillanceM(Program(q), allowed);
  const auto lattice = std::make_shared<SubsetLattice>(3);
  std::vector<ClassId> classes;
  for (int i = 0; i < 3; ++i) {
    classes.push_back(ClassId{1} << i);
  }
  const LatticeFlowMechanism lat(Program(q), lattice, classes, allowed.bits());

  InputDomain::Uniform(3, {-1, 0, 2}).ForEach([&](InputView input) {
    const Outcome a = surv.Run(input);
    const Outcome b = lat.Run(input);
    EXPECT_TRUE(a.ObservablyEquals(b, Observability::kValueAndTime))
        << "seed " << GetParam() << " input " << FormatInput(input) << ": " << a.ToString()
        << " vs " << b.ToString();
  });
}

INSTANTIATE_TEST_SUITE_P(Corpus, LatticeAgreementTest,
                         ::testing::Range<std::uint64_t>(6000, 6030));

TEST(LatticeFlowTest, SoundForTheInducedAllowPolicy) {
  CorpusConfig config;
  config.num_inputs = 2;
  const auto lattice = std::make_shared<LinearLattice>(LinearLattice::Military());
  const std::vector<ClassId> classes = {1, 3};  // confidential, top-secret
  const ClassId clearance = 2;                  // secret
  // Induced allow-policy: inputs whose class flows to the clearance.
  VarSet allowed;
  for (size_t i = 0; i < classes.size(); ++i) {
    if (lattice->Leq(classes[i], clearance)) {
      allowed.Insert(static_cast<int>(i));
    }
  }
  ASSERT_EQ(allowed, VarSet{0});

  const InputDomain domain = InputDomain::Uniform(2, {0, 1, 2});
  for (std::uint64_t seed = 6100; seed < 6120; ++seed) {
    const Program q = Lower(GenerateProgram(config, seed, "mls"));
    const LatticeFlowMechanism m(Program(q), lattice, classes, clearance);
    EXPECT_TRUE(CheckSoundness(m, AllowPolicy(2, allowed), domain,
                               Observability::kValueOnly)
                    .sound)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace secpol
