// Tests for the equivalence-class sweep machinery (src/mechanism/classes):
// partition correctness (analytic vs evaluated images, degenerate grids,
// size caps), the class-backed table build and its byte-identity with the
// point build, constancy-certificate soundness for untrackable mechanisms,
// the representative memo (LRU, revalidation, incremental recheck after a
// dead-box edit), compositional digest trees (ChangedNodes /
// ChangedCoordinates), and the job/service-level "class" sweep mode:
// spec plumbing, cache sub-keys, manifest round-trips, and class ≡ point
// report identity for all seven checker kinds at several thread counts.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/channels/timing.h"
#include "src/mechanism/classes.h"
#include "src/mechanism/outcome_table.h"
#include "src/mechanism/soundness.h"
#include "src/policy/policy.h"
#include "src/service/job.h"
#include "src/service/manifest.h"
#include "src/service/service.h"
#include "src/util/json.h"
#include "testlib.h"

namespace secpol {
namespace {

using testlib::MustLower;

// A mechanism that computes the same function as the bare program but cannot
// track its dependencies: it inherits the fail-closed base RunTracked, so no
// class may ever certify against it.
class UntrackedMechanism : public ProtectionMechanism {
 public:
  explicit UntrackedMechanism(Program program) : inner_(std::move(program)) {}
  int num_inputs() const override { return inner_.num_inputs(); }
  Outcome Run(InputView input) const override { return inner_.Run(input); }
  std::string name() const override { return inner_.name(); }

 private:
  ProgramAsMechanism inner_;
};

// ---------------------------------------------------------------------------
// ClassPartition: analytic allow(J) vs evaluated images.

TEST(ClassPartitionTest, AnalyticAllowMatchesEvaluatedImages) {
  const InputDomain domain = InputDomain::Range(3, -1, 1);
  for (const VarSet allowed :
       {VarSet::Empty(), VarSet::Singleton(0), VarSet::Singleton(2),
        VarSet::FirstN(2), VarSet::FirstN(3)}) {
    const ClassPartition analytic = PartitionByAllow(domain, allowed);
    const AllowPolicy policy(3, allowed);
    const ClassPartition evaluated = PartitionByImages(domain, policy);

    ASSERT_FALSE(analytic.empty());
    ASSERT_FALSE(evaluated.empty());
    EXPECT_TRUE(analytic.analytic);
    EXPECT_FALSE(evaluated.analytic);
    EXPECT_EQ(analytic.policy_evals, 0u);
    EXPECT_EQ(evaluated.policy_evals, domain.size());

    // Both schemes number classes in first-occurrence rank order, so every
    // derived array must agree element for element.
    EXPECT_EQ(analytic.num_points, evaluated.num_points);
    EXPECT_EQ(analytic.num_classes, evaluated.num_classes);
    EXPECT_EQ(analytic.class_of_rank, evaluated.class_of_rank);
    EXPECT_EQ(analytic.representative, evaluated.representative);
    EXPECT_EQ(analytic.class_size, evaluated.class_size);
    for (std::int64_t c = 0; c < analytic.num_classes; ++c) {
      EXPECT_EQ(analytic.constant_coords[static_cast<size_t>(c)].bits(),
                evaluated.constant_coords[static_cast<size_t>(c)].bits())
          << "class " << c << " allowed=" << allowed.ToString();
    }
  }
}

TEST(ClassPartitionTest, DegenerateGrids) {
  // Singleton domain: one point, one class, every coordinate constant.
  const InputDomain singleton = InputDomain::Range(3, 5, 5);
  const ClassPartition one_point = PartitionByAllow(singleton, VarSet::Singleton(1));
  ASSERT_FALSE(one_point.empty());
  EXPECT_EQ(one_point.num_points, 1u);
  EXPECT_EQ(one_point.num_classes, 1);
  EXPECT_EQ(one_point.MultiMemberClasses(), 0u);
  EXPECT_EQ(one_point.constant_coords[0].bits(), VarSet::FirstN(3).bits());

  const InputDomain domain = InputDomain::Range(2, 0, 2);

  // allow() folds the whole grid into one class.
  const ClassPartition all_one = PartitionByAllow(domain, VarSet::Empty());
  ASSERT_FALSE(all_one.empty());
  EXPECT_EQ(all_one.num_classes, 1);
  EXPECT_EQ(all_one.class_size[0], domain.size());
  EXPECT_EQ(all_one.MultiMemberClasses(), 1u);

  // allow(everything) makes every point its own class: nothing to save.
  const ClassPartition all_distinct = PartitionByAllow(domain, VarSet::FirstN(2));
  ASSERT_FALSE(all_distinct.empty());
  EXPECT_EQ(all_distinct.num_classes, static_cast<std::int64_t>(domain.size()));
  EXPECT_EQ(all_distinct.MultiMemberClasses(), 0u);
  for (std::uint64_t rank = 0; rank < all_distinct.num_points; ++rank) {
    EXPECT_EQ(all_distinct.representative[static_cast<size_t>(
                  all_distinct.class_of_rank[rank])],
              rank);
  }
}

TEST(ClassPartitionTest, RefusesGridsPastTheCap) {
  // Exactly kMaxPoints is accepted; one more point is refused (empty).
  std::vector<Value> values(static_cast<size_t>(ClassPartition::kMaxPoints));
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<Value>(i);
  }
  const InputDomain at_cap = InputDomain::PerInput({values});
  const ClassPartition accepted = PartitionByAllow(at_cap, VarSet::Empty());
  ASSERT_FALSE(accepted.empty());
  EXPECT_EQ(accepted.num_points, ClassPartition::kMaxPoints);
  EXPECT_EQ(accepted.num_classes, 1);

  values.push_back(static_cast<Value>(values.size()));
  const InputDomain over_cap = InputDomain::PerInput({values});
  EXPECT_TRUE(PartitionByAllow(over_cap, VarSet::Empty()).empty());
  const AllowPolicy policy(1, VarSet::Empty());
  EXPECT_TRUE(PartitionByImages(over_cap, policy).empty());
}

TEST(ClassPartitionTest, DispatchPicksAnalyticForAllowPolicies) {
  const InputDomain domain = InputDomain::Range(2, 0, 1);
  const AllowPolicy allow(2, VarSet::Singleton(0));
  EXPECT_TRUE(BuildClassPartition(domain, allow).analytic);
  // A non-allow policy falls back to evaluated images.
  const QueryBudgetPolicy budget(1);  // 2 inputs: one secret + the budget
  const ClassPartition evaluated = BuildClassPartition(domain, budget);
  EXPECT_FALSE(evaluated.analytic);
  EXPECT_GT(evaluated.policy_evals, 0u);
}

// ---------------------------------------------------------------------------
// OutcomeTable boundaries.

TEST(OutcomeTableBoundaryTest, ExactlyMaxPointsTabulates) {
  std::vector<Value> values(static_cast<size_t>(OutcomeTable::kMaxPoints));
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<Value>(i);
  }
  const InputDomain domain = InputDomain::PerInput({values});
  const ProgramAsMechanism mechanism(MustLower("program p(a) { y = a; }"));
  OutcomeTableSources sources;
  sources.mechanism = &mechanism;
  const OutcomeTable table = BuildOutcomeTable(sources, domain, CheckOptions::Threads(0));
  ASSERT_TRUE(table.complete());
  EXPECT_EQ(table.build().evaluated, OutcomeTable::kMaxPoints);
  EXPECT_EQ(table.outcome(0).value, 0);
  EXPECT_EQ(table.outcome(OutcomeTable::kMaxPoints - 1).value,
            static_cast<Value>(OutcomeTable::kMaxPoints - 1));
}

TEST(OutcomeTableBoundaryTest, OnePointOverTheCapFailsClosed) {
  std::vector<Value> values(static_cast<size_t>(OutcomeTable::kMaxPoints) + 1);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<Value>(i);
  }
  const InputDomain domain = InputDomain::PerInput({values});
  const ProgramAsMechanism mechanism(MustLower("program p(a) { y = a; }"));
  OutcomeTableSources sources;
  sources.mechanism = &mechanism;

  const OutcomeTable table = BuildOutcomeTable(sources, domain, CheckOptions::Serial());
  EXPECT_FALSE(table.complete());
  EXPECT_FALSE(table.has_outcomes());
  EXPECT_NE(table.build().message.find("grid too large"), std::string::npos);

  // The class-mode build refuses identically (before touching the partition).
  ClassSweepContext context;
  const ClassPartition empty_partition;
  context.partition = &empty_partition;
  const OutcomeTable class_table =
      BuildOutcomeTableWithClasses(sources, domain, context, CheckOptions::Serial());
  EXPECT_FALSE(class_table.complete());
  EXPECT_FALSE(class_table.has_outcomes());
}

TEST(OutcomeTableBoundaryTest, MismatchedPartitionFailsClosed) {
  const InputDomain domain = InputDomain::Range(2, 0, 1);
  const InputDomain other = InputDomain::Range(2, 0, 2);
  const ProgramAsMechanism mechanism(MustLower("program p(a, b) { y = a; }"));
  OutcomeTableSources sources;
  sources.mechanism = &mechanism;

  const ClassPartition partition = PartitionByAllow(other, VarSet::Singleton(0));
  ClassSweepContext context;
  context.partition = &partition;
  const OutcomeTable table =
      BuildOutcomeTableWithClasses(sources, domain, context, CheckOptions::Serial());
  EXPECT_FALSE(table.complete());
  EXPECT_FALSE(table.has_outcomes());
  EXPECT_NE(table.build().message.find("partition"), std::string::npos);
}

// ---------------------------------------------------------------------------
// The class-backed build: savings where certificates hold, byte-identity
// always.

TEST(ClassSweepTest, CertifiedClassesSkipMemberEvaluations) {
  // y reads only the allowed coordinate, so every class certifies: the
  // mechanism runs once per class, members are filled by copy.
  const Program program = MustLower("program p(a, b) { y = a; }");
  const InputDomain domain = InputDomain::Range(2, -1, 2);
  const VarSet allowed = VarSet::Singleton(0);
  const AllowPolicy policy(2, allowed);
  const ProgramAsMechanism mechanism(program);
  OutcomeTableSources sources;
  sources.mechanism = &mechanism;
  sources.policy = &policy;

  const ClassPartition partition = PartitionByAllow(domain, allowed);
  ASSERT_EQ(partition.num_classes, 4);

  ClassBuildStats stats;
  ClassSweepContext context;
  context.partition = &partition;
  context.stats = &stats;
  const OutcomeTable classed =
      BuildOutcomeTableWithClasses(sources, domain, context, CheckOptions::Serial());
  ASSERT_TRUE(classed.complete());
  EXPECT_EQ(stats.certified_classes, 4u);
  EXPECT_EQ(stats.mechanism_runs, 4u);   // one representative per class
  EXPECT_EQ(stats.copied_points, 12u);   // the other 12 of 16 slots
  EXPECT_TRUE(stats.analytic_partition);

  // Byte-identity with the point build: every outcome and the progress.
  const OutcomeTable point = BuildOutcomeTable(sources, domain, CheckOptions::Serial());
  ASSERT_TRUE(point.complete());
  EXPECT_EQ(classed.build().evaluated, point.build().evaluated);
  for (std::uint64_t rank = 0; rank < domain.size(); ++rank) {
    EXPECT_EQ(classed.outcome(rank).ToString(), point.outcome(rank).ToString()) << rank;
    EXPECT_EQ(classed.image(rank), point.image(rank)) << rank;
  }
  const Observability obs = Observability::kValueOnly;
  const CheckOptions serial = CheckOptions::Serial();
  EXPECT_EQ(CheckSoundness(classed, obs, serial).ToString(),
            CheckSoundness(point, obs, serial).ToString());
  EXPECT_EQ(MeasureLeak(classed, obs, serial).ToString(),
            MeasureLeak(point, obs, serial).ToString());
}

TEST(ClassSweepTest, UncertifiedClassesFallBackToPointEvaluations) {
  // y reads the DENIED coordinate: reads ⊄ class-constant coords, no class
  // certifies, and the build degrades to the point sweep plus the
  // representative probes — never to a wrong table.
  const Program program = MustLower("program p(a, b) { y = b; }");
  const InputDomain domain = InputDomain::Range(2, -1, 2);
  const VarSet allowed = VarSet::Singleton(0);
  const AllowPolicy policy(2, allowed);
  const ProgramAsMechanism mechanism(program);
  OutcomeTableSources sources;
  sources.mechanism = &mechanism;
  sources.policy = &policy;

  const ClassPartition partition = PartitionByAllow(domain, allowed);
  ClassBuildStats stats;
  ClassSweepContext context;
  context.partition = &partition;
  context.stats = &stats;
  const OutcomeTable classed =
      BuildOutcomeTableWithClasses(sources, domain, context, CheckOptions::Serial());
  ASSERT_TRUE(classed.complete());
  EXPECT_EQ(stats.certified_classes, 0u);
  EXPECT_EQ(stats.copied_points, 0u);
  // 4 representative probes + 16 member evaluations (reps re-run in phase 2
  // only when uncertified-and-not-representative slots need them; the
  // representative slots reuse the probe's outcome).
  EXPECT_EQ(stats.mechanism_runs, 4u + 12u);

  const OutcomeTable point = BuildOutcomeTable(sources, domain, CheckOptions::Serial());
  for (std::uint64_t rank = 0; rank < domain.size(); ++rank) {
    EXPECT_EQ(classed.outcome(rank).ToString(), point.outcome(rank).ToString()) << rank;
  }
}

TEST(ClassSweepTest, UntrackableMechanismNeverCertifies) {
  // The fail-closed default RunTracked: exact == false, so even a
  // policy-respecting function yields zero certificates. Soundness of the
  // certificate scheme must not depend on what the mechanism claims.
  UntrackedMechanism mechanism(MustLower("program p(a, b) { y = a; }"));
  const InputDomain domain = InputDomain::Range(2, -1, 1);
  const VarSet allowed = VarSet::Singleton(0);
  const AllowPolicy policy(2, allowed);
  OutcomeTableSources sources;
  sources.mechanism = &mechanism;
  sources.policy = &policy;

  const ClassPartition partition = PartitionByAllow(domain, allowed);
  ClassBuildStats stats;
  ClassSweepContext context;
  context.partition = &partition;
  context.stats = &stats;
  const OutcomeTable classed =
      BuildOutcomeTableWithClasses(sources, domain, context, CheckOptions::Serial());
  ASSERT_TRUE(classed.complete());
  EXPECT_EQ(stats.certified_classes, 0u);
  EXPECT_EQ(stats.copied_points, 0u);

  const OutcomeTable point = BuildOutcomeTable(sources, domain, CheckOptions::Serial());
  for (std::uint64_t rank = 0; rank < domain.size(); ++rank) {
    EXPECT_EQ(classed.outcome(rank).ToString(), point.outcome(rank).ToString()) << rank;
  }
}

// ---------------------------------------------------------------------------
// TouchedBoxDigest and the representative memo.

TEST(TouchedBoxDigestTest, CoversContentsOrderAndMissingBoxes) {
  const Program program = MustLower("program p(a) { y = a + 1; }");
  const Program edited = MustLower("program p(a) { y = a + 2; }");
  const ProgramDigestTree tree = program.DigestTree();
  const ProgramDigestTree edited_tree = edited.DigestTree();

  // The digest differs exactly when the touched list includes an edited box.
  const std::vector<int> changed = ChangedNodes(tree, edited_tree);
  ASSERT_EQ(changed.size(), 1u);
  const std::vector<int> touching = {0, changed[0]};
  std::vector<int> avoiding;
  for (int box = 0; box < program.num_boxes(); ++box) {
    if (box != changed[0]) {
      avoiding.push_back(box);
    }
  }
  EXPECT_EQ(TouchedBoxDigest(tree, touching), TouchedBoxDigest(tree, touching));
  EXPECT_FALSE(TouchedBoxDigest(tree, touching) == TouchedBoxDigest(edited_tree, touching));
  EXPECT_EQ(TouchedBoxDigest(tree, avoiding), TouchedBoxDigest(edited_tree, avoiding));
  EXPECT_FALSE(TouchedBoxDigest(tree, {0, 1}) == TouchedBoxDigest(tree, {1, 0}));
  // A box id past the tree hashes as "missing", distinct from any real box.
  EXPECT_FALSE(TouchedBoxDigest(tree, {0}) == TouchedBoxDigest(tree, {program.num_boxes()}));
}

TEST(ClassMemoTest, LruEvictionAndCounters) {
  ClassMemo memo(2);
  Fingerprinter fp;
  fp.Tag("ctx");
  const Fingerprint context = fp.Digest();

  EXPECT_FALSE(memo.Lookup(context, 0).has_value());
  EXPECT_EQ(memo.misses(), 1u);

  ClassMemo::Entry entry;
  entry.outcome = Outcome::Val(1, 1);
  memo.Insert(context, 0, entry);
  memo.Insert(context, 1, entry);
  EXPECT_EQ(memo.size(), 2u);

  // Touch rank 0 so rank 1 is the LRU victim of the next insert.
  EXPECT_TRUE(memo.Lookup(context, 0).has_value());
  memo.Insert(context, 2, entry);
  EXPECT_EQ(memo.size(), 2u);
  EXPECT_EQ(memo.evictions(), 1u);
  EXPECT_TRUE(memo.Lookup(context, 0).has_value());
  EXPECT_FALSE(memo.Lookup(context, 1).has_value());
  EXPECT_TRUE(memo.Lookup(context, 2).has_value());
  EXPECT_EQ(memo.hits(), 3u);
  EXPECT_EQ(memo.misses(), 2u);

  memo.Clear();
  EXPECT_EQ(memo.size(), 0u);
}

// The incremental-recheck core: a second class build against the memo spends
// zero representative evaluations, and an edit confined to a box the
// representatives never executed keeps the memo valid — while an edit to an
// executed box invalidates it.
TEST(ClassMemoTest, RevalidationSurvivesDeadBoxEditsOnly) {
  // The then-branch is dead on this grid (a ranges over -1..1, never > 50),
  // so representative runs execute only the test box and the else path.
  const char* kBase = "program p(a, b) { if (a > 50) { y = b; } else { y = a; } }";
  const char* kDeadEdit =
      "program p(a, b) { if (a > 50) { y = b - 7; } else { y = a; } }";
  const char* kLiveEdit =
      "program p(a, b) { if (a > 50) { y = b; } else { y = a + 0; } }";

  const InputDomain domain = InputDomain::Range(2, -1, 1);
  const VarSet allowed = VarSet::Singleton(0);
  const AllowPolicy policy(2, allowed);
  const ClassPartition partition = PartitionByAllow(domain, allowed);
  Fingerprinter fp;
  fp.Tag("memo-context");
  const Fingerprint memo_context = fp.Digest();

  ClassMemo memo;
  const auto build = [&](const char* text, ClassBuildStats* stats) {
    const Program program = MustLower(text);
    const ProgramDigestTree tree = program.DigestTree();
    const ProgramAsMechanism mechanism(program);
    OutcomeTableSources sources;
    sources.mechanism = &mechanism;
    sources.policy = &policy;
    ClassSweepContext context;
    context.partition = &partition;
    context.memo = &memo;
    context.program_tree = &tree;
    context.memo_context = memo_context;
    context.stats = stats;
    return BuildOutcomeTableWithClasses(sources, domain, context, CheckOptions::Serial());
  };

  ClassBuildStats cold;
  ASSERT_TRUE(build(kBase, &cold).complete());
  EXPECT_GT(cold.rep_evals, 0u);
  EXPECT_EQ(cold.memo_hits, 0u);

  // Same program again: every representative comes from the memo.
  ClassBuildStats warm;
  ASSERT_TRUE(build(kBase, &warm).complete());
  EXPECT_EQ(warm.rep_evals, 0u);
  EXPECT_EQ(warm.memo_hits, cold.rep_evals);

  // Dead-box edit: the executed boxes' digests are unchanged, so the entries
  // revalidate and the representatives are still free.
  ClassBuildStats dead;
  const OutcomeTable dead_table = build(kDeadEdit, &dead);
  ASSERT_TRUE(dead_table.complete());
  EXPECT_EQ(dead.rep_evals, 0u);
  EXPECT_GT(dead.memo_hits, 0u);

  // Live-box edit: the else-arm digest changed, revalidation fails, and the
  // representatives are re-run (then re-memoized under the new digests).
  ClassBuildStats live;
  const OutcomeTable live_table = build(kLiveEdit, &live);
  ASSERT_TRUE(live_table.complete());
  EXPECT_GT(live.rep_evals, 0u);

  // Reused outcomes are still correct outcomes.
  const Program dead_program = MustLower(kDeadEdit);
  const ProgramAsMechanism dead_mechanism(dead_program);
  OutcomeTableSources sources;
  sources.mechanism = &dead_mechanism;
  sources.policy = &policy;
  const OutcomeTable point = BuildOutcomeTable(sources, domain, CheckOptions::Serial());
  for (std::uint64_t rank = 0; rank < domain.size(); ++rank) {
    EXPECT_EQ(dead_table.outcome(rank).ToString(), point.outcome(rank).ToString()) << rank;
  }
}

// ---------------------------------------------------------------------------
// Compositional digest trees.

TEST(DigestTreeTest, ChangedNodesPinpointsEditedBoxes) {
  const Program base = MustLower("program p(a, b) { y = a; y = y + b; }");
  const ProgramDigestTree tree = base.DigestTree();
  EXPECT_TRUE(ChangedNodes(tree, base.DigestTree()).empty());
  EXPECT_EQ(tree.root, base.DigestTree().root);
  EXPECT_EQ(static_cast<int>(tree.nodes.size()), base.num_boxes());

  // Exactly one box differs between these programs.
  const Program edited = MustLower("program p(a, b) { y = a; y = y - b; }");
  const ProgramDigestTree edited_tree = edited.DigestTree();
  EXPECT_EQ(tree.skeleton, edited_tree.skeleton);
  EXPECT_FALSE(tree.root == edited_tree.root);
  const std::vector<int> changed = ChangedNodes(tree, edited_tree);
  ASSERT_EQ(changed.size(), 1u);
  EXPECT_FALSE(tree.nodes[static_cast<size_t>(changed[0])].digest ==
               edited_tree.nodes[static_cast<size_t>(changed[0])].digest);

  // A renamed program changes the skeleton, not necessarily any node.
  const Program renamed = MustLower("program q(a, b) { y = a; y = y + b; }");
  EXPECT_FALSE(tree.skeleton == renamed.DigestTree().skeleton);

  // Different box counts: the extra ids are all reported changed.
  const Program longer = MustLower("program p(a, b) { y = a; y = y + b; y = y; }");
  const std::vector<int> grown = ChangedNodes(tree, longer.DigestTree());
  EXPECT_GE(grown.size(), 1u);
}

TEST(DigestTreeTest, AllowPolicyLeavesArePerCoordinate) {
  const AllowPolicy base(4, VarSet::FromBits(0b0011));
  const AllowPolicy toggled(4, VarSet::FromBits(0b0101));
  const PolicyDigestTree a = base.DigestTree();
  const PolicyDigestTree b = toggled.DigestTree();
  ASSERT_EQ(a.coordinates.size(), 4u);
  EXPECT_EQ(a.skeleton, b.skeleton);
  // Coordinates 1 and 2 flipped membership; 0 and 3 did not.
  EXPECT_EQ(ChangedCoordinates(a, b), (std::vector<int>{1, 2}));
  EXPECT_TRUE(ChangedCoordinates(a, base.DigestTree()).empty());
  EXPECT_EQ(a.root, base.DigestTree().root);
  EXPECT_FALSE(a.root == b.root);
}

TEST(DigestTreeTest, BasePolicyTreeFailsClosed) {
  // A policy without a precise override marks EVERY coordinate changed on
  // any behavioural difference — the sound default.
  const DirectoryGatedPolicy a(1, /*grant_value=*/0);
  const DirectoryGatedPolicy b(1, /*grant_value=*/1);
  const std::vector<int> changed = ChangedCoordinates(a.DigestTree(), b.DigestTree());
  EXPECT_EQ(changed, (std::vector<int>{0, 1}));
  EXPECT_TRUE(ChangedCoordinates(a.DigestTree(), a.DigestTree()).empty());
}

// ---------------------------------------------------------------------------
// Job-level sweep_mode: validation, cache sub-keys, memo context keys.

CheckJobSpec BaseSpec(const std::string& program_text) {
  CheckJobSpec spec;
  spec.id = "classes-test";
  spec.program_text = program_text;
  spec.allow = VarSet::Singleton(0);
  spec.allow2 = VarSet::FirstN(2);
  return spec;
}

TEST(SweepModeJobTest, InvalidSweepModeIsRejectedByName) {
  CheckJobSpec spec = BaseSpec("program p(a, b) { y = a; }");
  spec.sweep_mode = "banana";
  const Result<PreparedJob> prepared = PrepareJob(spec);
  ASSERT_FALSE(prepared.ok());
  EXPECT_NE(prepared.error().ToString().find("sweep_mode"), std::string::npos);
}

TEST(SweepModeJobTest, PointKeysAreUnperturbedAndClassGetsASubKey) {
  const CheckJobSpec spec = BaseSpec("program p(a, b) { y = a; }");
  CheckJobSpec class_spec = spec;
  class_spec.sweep_mode = "class";
  const Result<PreparedJob> point = PrepareJob(spec);
  const Result<PreparedJob> classed = PrepareJob(class_spec);
  ASSERT_TRUE(point.ok());
  ASSERT_TRUE(classed.ok());
  // "class" jobs live on separate cache lines: the class ≡ point identity is
  // a tested theorem, not an assumption the cache is allowed to bank on.
  EXPECT_FALSE(point.value().key == classed.value().key);

  // An explicitly-spelled "point" is the same key as the default.
  CheckJobSpec explicit_point = spec;
  explicit_point.sweep_mode = "point";
  const Result<PreparedJob> again = PrepareJob(explicit_point);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(point.value().key, again.value().key);
}

TEST(SweepModeJobTest, MemoContextKeyScopesPolicyAndSkeleton) {
  const CheckJobSpec spec = BaseSpec("program p(a, b) { y = a; }");
  const Result<PreparedJob> prepared = PrepareJob(spec);
  ASSERT_TRUE(prepared.ok());
  const Program& program = prepared.value().program;
  const InputDomain& domain = prepared.value().domain;

  CheckJobSpec other_allow = spec;
  other_allow.allow = VarSet::FirstN(2);
  const Result<PreparedJob> other = PrepareJob(other_allow);
  ASSERT_TRUE(other.ok());

  // "bare" ignores the policy, so its memo lines survive policy edits; the
  // surveillance mechanism is parameterized by the allow bits, so its lines
  // must not.
  EXPECT_EQ(ClassMemoContextKey(spec, program, domain, "bare"),
            ClassMemoContextKey(other_allow, program, domain, "bare"));
  EXPECT_FALSE(ClassMemoContextKey(spec, program, domain, "surveillance") ==
               ClassMemoContextKey(other_allow, program, domain, "surveillance"));

  // The context covers only the program SKELETON: a dead-box edit keeps the
  // same context (the box contents are revalidated per lookup instead).
  const Program edited =
      MustLower("program p(a, b) { y = a; }");  // same text, same skeleton
  EXPECT_EQ(ClassMemoContextKey(spec, program, domain, "surveillance"),
            ClassMemoContextKey(spec, edited, domain, "surveillance"));

  // A different grid addresses different memo lines (fault injection fires
  // by grid rank).
  CheckJobSpec wider = spec;
  wider.grid_hi = 3;
  const Result<PreparedJob> wide = PrepareJob(wider);
  ASSERT_TRUE(wide.ok());
  EXPECT_FALSE(ClassMemoContextKey(spec, program, domain, "surveillance") ==
               ClassMemoContextKey(wider, program, wide.value().domain, "surveillance"));
}

// ---------------------------------------------------------------------------
// The central differential: class ≡ point for all seven checker kinds at
// several thread counts, on both a certifying and a non-certifying program.

TEST(SweepModeJobTest, ClassReportsAreByteIdenticalAcrossCheckersAndThreads) {
  for (const char* text : {
           "program p(a, b) { y = a; }",  // certifies: reads ⊆ allow(0)
           "program p(a, b) { y = b; }",  // never certifies: reads the secret
       }) {
    for (const CheckerKind checker :
         {CheckerKind::kSoundness, CheckerKind::kIntegrity, CheckerKind::kCompleteness,
          CheckerKind::kMaximal, CheckerKind::kPolicyCompare, CheckerKind::kLeak,
          CheckerKind::kAudit}) {
      for (const int threads : {1, 2, 7}) {
        CheckJobSpec spec = BaseSpec(text);
        spec.checker = checker;
        spec.num_threads = threads;
        const JobResult point = ExecuteJob(spec);
        ASSERT_EQ(point.status, JobStatus::kCompleted)
            << text << " " << CheckerKindName(checker);

        CheckJobSpec class_spec = spec;
        class_spec.sweep_mode = "class";
        const JobResult classed = ExecuteJob(class_spec);
        ASSERT_EQ(classed.status, JobStatus::kCompleted)
            << text << " " << CheckerKindName(checker);
        EXPECT_EQ(classed.report, point.report)
            << text << " " << CheckerKindName(checker) << " t" << threads;
        EXPECT_EQ(classed.exit_code, point.exit_code);
        EXPECT_EQ(classed.evaluated, point.evaluated);
        EXPECT_EQ(classed.total, point.total);
      }
    }
  }
}

TEST(SweepModeJobTest, TransientFaultsAbsorbAndAbortsFailClosedInClassMode) {
  // Fault injectors cannot track reads, so class mode under faults degrades
  // to point behaviour — the completed transient report must still equal the
  // point-mode bytes, and a persistent fault must fail closed, not crash.
  CheckJobSpec spec = BaseSpec("program p(a, b) { y = a; }");
  spec.fault_spec = "throw~1/3:11!";
  spec.retries = 2;
  const JobResult point = ExecuteJob(spec);
  ASSERT_EQ(point.status, JobStatus::kCompleted);
  CheckJobSpec class_spec = spec;
  class_spec.sweep_mode = "class";
  const JobResult classed = ExecuteJob(class_spec);
  ASSERT_EQ(classed.status, JobStatus::kCompleted);
  EXPECT_EQ(classed.report, point.report);

  CheckJobSpec abort_spec = BaseSpec("program p(a, b) { y = a; }");
  abort_spec.sweep_mode = "class";
  abort_spec.fault_spec = "throw@1";
  const JobResult aborted = ExecuteJob(abort_spec);
  EXPECT_EQ(aborted.status, JobStatus::kAborted);
  EXPECT_GE(aborted.exit_code, 2);
  EXPECT_LE(aborted.exit_code, 4);
  EXPECT_LE(aborted.evaluated, aborted.total);
}

// ---------------------------------------------------------------------------
// Manifest vocabulary round-trip.

TEST(SweepModeManifestTest, RoundTripsAndOmitsTheDefault) {
  CheckJobSpec spec = BaseSpec("program p(a, b) { y = a; }");
  const Json point_json = CheckJobSpecToJson(spec);
  // Default "point" is omitted so pre-existing golden manifests keep their
  // exact bytes.
  EXPECT_EQ(point_json.Find("sweep_mode"), nullptr);

  spec.sweep_mode = "class";
  const Json class_json = CheckJobSpecToJson(spec);
  const Json* mode = class_json.Find("sweep_mode");
  ASSERT_NE(mode, nullptr);
  EXPECT_EQ(mode->AsString(), "class");

  CheckJobSpec decoded;
  const Result<bool> applied =
      ApplyManifestJobFields(class_json, "jobs[0]", &decoded, JobFieldSource::kLocalManifest);
  ASSERT_TRUE(applied.ok()) << applied.error().ToString();
  EXPECT_EQ(decoded.sweep_mode, "class");
  EXPECT_EQ(CheckJobSpecToJson(decoded).Serialize(), class_json.Serialize());
}

TEST(SweepModeManifestTest, RejectsUnknownModesNamingTheField) {
  Json object = Json::MakeObject();
  object.Set("sweep_mode", Json::MakeString("fast"));
  CheckJobSpec spec;
  const Result<bool> applied =
      ApplyManifestJobFields(object, "jobs[3]", &spec, JobFieldSource::kLocalManifest);
  ASSERT_FALSE(applied.ok());
  EXPECT_NE(applied.error().ToString().find("jobs[3].sweep_mode"), std::string::npos);

  Json wrong_type = Json::MakeObject();
  wrong_type.Set("sweep_mode", Json::MakeInt(1));
  EXPECT_FALSE(
      ApplyManifestJobFields(wrong_type, "jobs[3]", &spec, JobFieldSource::kLocalManifest)
          .ok());
}

// ---------------------------------------------------------------------------
// Service-level incremental recheck: the shared ClassMemo carries
// representative outcomes across batches, including across a dead-box edit
// (which changes the result-cache key but not the executed boxes).

TEST(SweepModeServiceTest, ClassMemoMakesEditedResubmissionsIncremental) {
  ServiceConfig config;
  config.concurrency = 1;
  CheckService service(config);

  CheckJobSpec spec = BaseSpec(
      "program p(a, b) { if (a > 50) { y = b; } else { y = a; } }");
  spec.sweep_mode = "class";
  const BatchReport first = service.RunBatch({spec});
  ASSERT_EQ(first.jobs.size(), 1u);
  ASSERT_EQ(first.jobs[0].status, JobStatus::kCompleted);
  const std::uint64_t hits_after_first = service.class_memo().hits();
  EXPECT_GT(service.class_memo().size(), 0u);

  // Dead-box edit: new program text, new cache key — but the memo's
  // revalidation recognizes the executed boxes as unchanged.
  CheckJobSpec edited = spec;
  edited.program_text =
      "program p(a, b) { if (a > 50) { y = b - 7; } else { y = a; } }";
  const BatchReport second = service.RunBatch({edited});
  ASSERT_EQ(second.jobs.size(), 1u);
  ASSERT_EQ(second.jobs[0].status, JobStatus::kCompleted);
  EXPECT_FALSE(second.jobs[0].from_cache);
  EXPECT_NE(second.jobs[0].cache_key, first.jobs[0].cache_key);
  EXPECT_GT(service.class_memo().hits(), hits_after_first);

  // The edited job's bytes are still the point-mode bytes.
  CheckJobSpec edited_point = edited;
  edited_point.sweep_mode = "point";
  const JobResult reference = ExecuteJob(edited_point);
  ASSERT_EQ(reference.status, JobStatus::kCompleted);
  EXPECT_EQ(second.jobs[0].report, reference.report);
}

}  // namespace
}  // namespace secpol
