// The full generated differential matrix: every scenario MakeScenarios
// emits from the default axes, executed against the runner's invariant
// battery. Registered under the `scenario` ctest label (tests/CMakeLists.txt)
// so `ctest -L scenario` runs exactly this sweep.
//
// The matrix is sharded by the program axis — six bundles of 3456 scenarios —
// so a failure names both the offending scenario (in the violation line) and
// a narrow bundle to re-run, and no single test body monopolizes a runner.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/scenario/runner.h"
#include "src/scenario/scenario.h"

namespace secpol {
namespace {

class ScenarioMatrixTest : public ::testing::TestWithParam<int> {};

TEST_P(ScenarioMatrixTest, BundleHoldsEveryInvariant) {
  const std::string prefix = "s" + std::to_string(GetParam()) + ".";
  std::vector<Scenario> bundle;
  for (Scenario& scenario : MakeScenarios(DefaultAxes())) {
    if (scenario.name.rfind(prefix, 0) == 0) {
      bundle.push_back(std::move(scenario));
    }
  }
  ASSERT_EQ(bundle.size(), 3456u) << prefix;

  ScenarioRunner runner;
  const ScenarioSummary summary = runner.RunAll(bundle);
  EXPECT_EQ(summary.scenarios, bundle.size());
  EXPECT_TRUE(summary.ok()) << summary.ToString();
}

INSTANTIATE_TEST_SUITE_P(Programs, ScenarioMatrixTest, ::testing::Range(0, 6),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           return "s" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace secpol
