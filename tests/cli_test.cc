// Tests for the secpol command-line driver.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/tools/cli.h"

namespace secpol {
namespace {

// Writes a temp program file and returns its path.
class CliTest : public ::testing::Test {
 protected:
  std::string WriteProgram(const std::string& source) {
    // The test name keeps paths unique across CLI test processes running
    // concurrently under `ctest -j` (they all share TempDir).
    const std::string test_name =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    const std::string path = ::testing::TempDir() + "cli_test_" + test_name + "_" +
                             std::to_string(counter_++) + ".fl";
    std::ofstream out(path);
    out << source;
    out.close();
    paths_.push_back(path);
    return path;
  }

  void TearDown() override {
    for (const std::string& path : paths_) {
      std::remove(path.c_str());
    }
  }

  // Runs the CLI, returning the exit code; stdout/stderr captured.
  int Run(std::vector<std::string> args) {
    out_.clear();
    err_.clear();
    return RunCli(args, &out_, &err_);
  }

  std::string out_;
  std::string err_;

 private:
  int counter_ = 0;
  std::vector<std::string> paths_;
};

TEST_F(CliTest, RunExecutesProgram) {
  const std::string path = WriteProgram("program p(a, b) { y = a * b; }");
  EXPECT_EQ(Run({"run", path, "--input=6,7"}), 0);
  EXPECT_NE(out_.find("y = 42"), std::string::npos);
}

TEST_F(CliTest, RunRejectsWrongArity) {
  const std::string path = WriteProgram("program p(a, b) { y = a; }");
  EXPECT_EQ(Run({"run", path, "--input=1"}), 1);
  EXPECT_NE(err_.find("expected 2 inputs"), std::string::npos);
}

TEST_F(CliTest, MonitorReleasesAndViolates) {
  const std::string path = WriteProgram("program p(pub, sec) { y = pub; }");
  EXPECT_EQ(Run({"monitor", path, "--allow=0", "--input=5,9"}), 0);
  EXPECT_NE(out_.find("value 5"), std::string::npos);

  const std::string leaky = WriteProgram("program p(pub, sec) { y = sec; }");
  EXPECT_EQ(Run({"monitor", leaky, "--allow=0", "--input=5,9"}), 0);
  EXPECT_NE(out_.find("VIOLATION"), std::string::npos);
}

TEST_F(CliTest, MonitorVariants) {
  const std::string path = WriteProgram("program p(pub, sec) { y = pub; }");
  EXPECT_EQ(Run({"monitor", path, "--allow=0", "--input=1,2", "--high-water"}), 0);
  EXPECT_NE(out_.find("high-water"), std::string::npos);
  EXPECT_EQ(Run({"monitor", path, "--allow=0", "--input=1,2", "--time-safe"}), 0);
  EXPECT_NE(out_.find("[M']"), std::string::npos);
}

TEST_F(CliTest, CheckVerdictDrivesExitCode) {
  const std::string path = WriteProgram("program p(pub, sec) { y = pub; }");
  EXPECT_EQ(Run({"check", path, "--allow=0"}), 0);
  EXPECT_NE(out_.find("SOUND"), std::string::npos);

  // The bare program leaking sec: exit code 2 signals "unsound".
  const std::string leaky = WriteProgram("program p(pub, sec) { y = sec; }");
  EXPECT_EQ(Run({"check", leaky, "--allow=0", "--mechanism=bare"}), 2);
  EXPECT_NE(out_.find("UNSOUND"), std::string::npos);
}

TEST_F(CliTest, CheckDeadlineExceededDrivesExitCode) {
  // A slow program over an oversized grid cannot finish in 1ms: the run
  // reports partial progress and exits 3 (bounded, no verdict).
  const std::string path = WriteProgram(
      "program p(a, b, c, d) { locals i; i = 500; while (i != 0) { i = i - 1; } y = a; }");
  EXPECT_EQ(Run({"check", path, "--allow=0", "--grid=0:9", "--mechanism=bare",
                 "--deadline-ms=1", "--threads=1"}),
            3);
  EXPECT_NE(out_.find("UNKNOWN"), std::string::npos);
  EXPECT_NE(out_.find("deadline exceeded"), std::string::npos);
}

TEST_F(CliTest, CheckRejectsBadDeadline) {
  const std::string path = WriteProgram("program p(a) { y = a; }");
  EXPECT_EQ(Run({"check", path, "--allow=0", "--deadline-ms=zero"}), 1);
  EXPECT_NE(err_.find("bad --deadline-ms"), std::string::npos);
  EXPECT_EQ(Run({"check", path, "--allow=0", "--deadline-ms=-4"}), 1);
}

TEST_F(CliTest, CheckFaultSpecInjectsFaults) {
  const std::string path = WriteProgram("program p(pub, sec) { y = pub; }");
  // Persistent throw: structured abort, exit 4.
  EXPECT_EQ(Run({"check", path, "--allow=0", "--mechanism=bare", "--fault-spec=throw@4"}), 4);
  EXPECT_NE(out_.find("aborted"), std::string::npos);
  EXPECT_NE(out_.find("injected fault"), std::string::npos);
  // Wrong-value corruption surfaces as an ordinary unsound verdict (exit 2).
  EXPECT_EQ(Run({"check", path, "--allow=0", "--mechanism=bare", "--fault-spec=wrong@2"}), 2);
  EXPECT_NE(out_.find("UNSOUND"), std::string::npos);
  // A transient fault absorbed by one retry leaves the verdict untouched.
  EXPECT_EQ(Run({"check", path, "--allow=0", "--mechanism=bare", "--fault-spec=throw!@4",
                 "--retries=1"}),
            0);
  EXPECT_NE(out_.find("SOUND"), std::string::npos);
}

TEST_F(CliTest, CheckRejectsBadFaultFlags) {
  const std::string path = WriteProgram("program p(a) { y = a; }");
  EXPECT_EQ(Run({"check", path, "--allow=0", "--fault-spec=explode@1"}), 1);
  EXPECT_NE(err_.find("bad --fault-spec"), std::string::npos);
  EXPECT_EQ(Run({"check", path, "--allow=0", "--retries=-1"}), 1);
  EXPECT_NE(err_.find("bad --retries"), std::string::npos);
}

TEST_F(CliTest, CheckWithTimeAndGrid) {
  const std::string path = WriteProgram(
      "program p(sec) { locals c; c = sec; while (c != 0) { c = c - 1; } y = 1; }");
  EXPECT_EQ(Run({"check", path, "--allow=", "--grid=0:3", "--time", "--mechanism=bare"}), 2);
  EXPECT_EQ(Run({"check", path, "--allow=", "--grid=0:3", "--time", "--mechanism=mprime"}), 0);
}

TEST_F(CliTest, CheckAllMechanismKinds) {
  const std::string path = WriteProgram("program p(pub, sec) { y = pub + 1; }");
  for (const char* kind :
       {"surveillance", "mprime", "highwater", "static", "residual"}) {
    EXPECT_EQ(Run({"check", path, "--allow=0", std::string("--mechanism=") + kind}), 0)
        << kind;
  }
}

TEST_F(CliTest, AuditRunsAllSixChecksInOnePass) {
  const std::string path = WriteProgram("program p(pub, sec) { y = pub; }");
  EXPECT_EQ(Run({"audit", path, "--allow=0"}), 0);
  // One section per checker, in order.
  for (const char* marker : {"SOUND", "PRESERVED", "M1 == M2", "maximal for",
                             "reveals-at-most", "leak:"}) {
    EXPECT_NE(out_.find(marker), std::string::npos) << marker;
  }

  // Worst section drives the exit code: the bare mechanism leaks sec.
  const std::string leaky = WriteProgram("program p(pub, sec) { y = sec; }");
  EXPECT_EQ(Run({"audit", leaky, "--allow=0", "--mechanism=bare"}), 2);
  EXPECT_NE(out_.find("UNSOUND"), std::string::npos);

  // Flag validation mirrors the other verbs.
  EXPECT_EQ(Run({"audit", path}), 1);  // missing --allow
  EXPECT_NE(err_.find("--allow"), std::string::npos);
  EXPECT_EQ(Run({"audit", path, "--allow=0", "--allow2=9"}), 1);
  EXPECT_NE(err_.find("allow index 9 out of range"), std::string::npos);
  EXPECT_EQ(Run({"audit", path, "--allow=0", "--mechanism2=warp"}), 1);
  EXPECT_NE(err_.find("mechanism2"), std::string::npos);
}

TEST_F(CliTest, AnalyzeReportsLabels) {
  const std::string path = WriteProgram(
      "program p(pub, sec) { if (sec > 0) { y = 1; } else { y = 2; } }");
  EXPECT_EQ(Run({"analyze", path, "--allow=0"}), 0);
  EXPECT_NE(out_.find("NOT CERTIFIED"), std::string::npos);
  EXPECT_EQ(Run({"analyze", path, "--allow=0,1"}), 0);
  EXPECT_NE(out_.find("CERTIFIED"), std::string::npos);
}

TEST_F(CliTest, InstrumentPrintsShadowVariables) {
  const std::string path = WriteProgram("program p(a) { y = a; }");
  EXPECT_EQ(Run({"instrument", path, "--allow=0"}), 0);
  EXPECT_NE(out_.find("a_bar"), std::string::npos);
  EXPECT_NE(out_.find("C_bar"), std::string::npos);
}

TEST_F(CliTest, AdviseShowsCandidates) {
  const std::string path = WriteProgram(R"(
    program ex7(x1, x2) {
      locals r;
      if (x1 == 1) { r = 1; } else { r = 2; }
      if (r == 1) { y = 1; } else { y = 1; }
    })");
  EXPECT_EQ(Run({"advise", path, "--allow=1", "--grid=0:2"}), 0);
  EXPECT_NE(out_.find("if-to-select"), std::string::npos);
  EXPECT_NE(out_.find("chosen rewriting"), std::string::npos);
}

TEST_F(CliTest, OptimizeSimplifiesAndReports) {
  const std::string path = WriteProgram("program p(a) { y = a * 1 + 0; }");
  EXPECT_EQ(Run({"optimize", path}), 0);
  EXPECT_NE(out_.find("simplified 1 expressions"), std::string::npos);
  EXPECT_NE(out_.find("y <- a"), std::string::npos);
}

TEST_F(CliTest, DecompileRoundTripsAndAudits) {
  const std::string path = WriteProgram(
      "program p(n) { locals c; c = n; if (n > 0) { y = 1; } else { y = 2; } }");
  EXPECT_EQ(Run({"decompile", path}), 0);
  EXPECT_NE(out_.find("program p(n)"), std::string::npos);
  EXPECT_NE(out_.find("if ("), std::string::npos);
}

TEST_F(CliTest, DotEmitsGraph) {
  const std::string path = WriteProgram("program p(a) { if (a) { y = 1; } }");
  EXPECT_EQ(Run({"dot", path}), 0);
  EXPECT_NE(out_.find("digraph"), std::string::npos);
}

TEST_F(CliTest, BytecodeListsInstructions) {
  const std::string path = WriteProgram("program p(a) { y = a + 1; }");
  EXPECT_EQ(Run({"bytecode", path}), 0);
  EXPECT_NE(out_.find("halt"), std::string::npos);
}

TEST_F(CliTest, ErrorsAreReported) {
  EXPECT_EQ(Run({}), 1);
  EXPECT_NE(err_.find("usage"), std::string::npos);

  EXPECT_EQ(Run({"frobnicate", "x.fl"}), 1);
  EXPECT_NE(err_.find("unknown command"), std::string::npos);

  EXPECT_EQ(Run({"run", "/nonexistent/file.fl", "--input="}), 1);
  EXPECT_NE(err_.find("cannot open"), std::string::npos);

  const std::string bad = WriteProgram("program p( { }");
  EXPECT_EQ(Run({"run", bad, "--input="}), 1);

  const std::string path = WriteProgram("program p(a) { y = a; }");
  EXPECT_EQ(Run({"monitor", path, "--input=1"}), 1);  // missing --allow
  EXPECT_NE(err_.find("--allow"), std::string::npos);
  EXPECT_EQ(Run({"monitor", path, "--allow=7", "--input=1"}), 1);  // out of range
  EXPECT_EQ(Run({"check", path, "--allow=0", "--mechanism=warp"}), 1);
}

TEST_F(CliTest, BatchRunsManifestAndPrintsJsonReport) {
  const std::string manifest = WriteProgram(R"({
    "defaults": {"program": "program p(pub, sec) { y = pub; }", "allow": [0]},
    "jobs": [
      {"id": "sound"},
      {"id": "leaky", "program": "program p(pub, sec) { y = sec; }",
       "mechanism": "bare"}
    ]
  })");
  // Worst per-job code wins: "sound" exits 0, "leaky" proves unsound (2).
  EXPECT_EQ(Run({"batch", manifest}), 2);
  EXPECT_NE(out_.find("\"id\": \"sound\""), std::string::npos);
  EXPECT_NE(out_.find("\"status\": \"completed\""), std::string::npos);
  EXPECT_NE(out_.find("\"exit_code\": 2"), std::string::npos);
  EXPECT_NE(out_.find("\"scheduler\""), std::string::npos);
  EXPECT_NE(out_.find("\"cache\""), std::string::npos);
  EXPECT_NE(out_.find("UNSOUND"), std::string::npos);  // embedded report text

  // The flag spelling and --pretty both work.
  EXPECT_EQ(Run({"--batch", manifest, "--pretty"}), 2);
  EXPECT_NE(out_.find("\"jobs\": ["), std::string::npos);
}

TEST_F(CliTest, BatchRejectsBadManifests) {
  EXPECT_EQ(Run({"batch"}), 1);
  EXPECT_NE(err_.find("missing manifest"), std::string::npos);

  EXPECT_EQ(Run({"batch", "/nonexistent/manifest.json"}), 1);
  EXPECT_NE(err_.find("cannot open"), std::string::npos);

  const std::string garbage = WriteProgram("{not json");
  EXPECT_EQ(Run({"batch", garbage}), 1);
  EXPECT_NE(err_.find("manifest"), std::string::npos);

  const std::string typo = WriteProgram(
      R"({"jobs": [{"cheker": "soundness", "program": "program p(a) { y = a; }"}]})");
  EXPECT_EQ(Run({"batch", typo}), 1);
  EXPECT_NE(err_.find("unknown key 'cheker'"), std::string::npos);
}

TEST_F(CliTest, BatchInvalidJobSpecExitsOneWithStructuredReport) {
  // The manifest parses, but the job itself is invalid (allow index out of
  // range): the batch still runs and reports the job as invalid.
  const std::string manifest = WriteProgram(
      R"({"jobs": [{"program": "program p(a) { y = a; }", "allow": [7]}]})");
  EXPECT_EQ(Run({"batch", manifest}), 1);
  EXPECT_NE(out_.find("\"status\": \"invalid\""), std::string::npos);
  EXPECT_NE(out_.find("allow:"), std::string::npos);
}

TEST_F(CliTest, ParserErrorsCarryLocation) {
  const std::string bad = WriteProgram("program p(a) {\n  y = ;\n}");
  EXPECT_EQ(Run({"run", bad, "--input=1"}), 1);
  EXPECT_NE(err_.find(":2:"), std::string::npos);
}

}  // namespace
}  // namespace secpol
