// Tests for the secpol command-line driver.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/server/server.h"
#include "src/tools/cli.h"
#include "src/util/json.h"
#include "tests/testlib.h"

namespace secpol {
namespace {

// Writes a temp program file and returns its path.
class CliTest : public ::testing::Test {
 protected:
  std::string WriteProgram(const std::string& source) {
    // The test name keeps paths unique across CLI test processes running
    // concurrently under `ctest -j` (they all share TempDir).
    const std::string test_name =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    const std::string path = ::testing::TempDir() + "cli_test_" + test_name + "_" +
                             std::to_string(counter_++) + ".fl";
    std::ofstream out(path);
    out << source;
    out.close();
    paths_.push_back(path);
    return path;
  }

  void TearDown() override {
    for (const std::string& path : paths_) {
      std::remove(path.c_str());
    }
  }

  static std::string Slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

  // Runs the CLI, returning the exit code; stdout/stderr captured.
  int Run(std::vector<std::string> args) {
    out_.clear();
    err_.clear();
    return RunCli(args, &out_, &err_);
  }

  std::string out_;
  std::string err_;

 private:
  int counter_ = 0;
  std::vector<std::string> paths_;
};

TEST_F(CliTest, RunExecutesProgram) {
  const std::string path = WriteProgram("program p(a, b) { y = a * b; }");
  EXPECT_EQ(Run({"run", path, "--input=6,7"}), 0);
  EXPECT_NE(out_.find("y = 42"), std::string::npos);
}

TEST_F(CliTest, RunRejectsWrongArity) {
  const std::string path = WriteProgram("program p(a, b) { y = a; }");
  EXPECT_EQ(Run({"run", path, "--input=1"}), 1);
  EXPECT_NE(err_.find("expected 2 inputs"), std::string::npos);
}

TEST_F(CliTest, MonitorReleasesAndViolates) {
  const std::string path = WriteProgram("program p(pub, sec) { y = pub; }");
  EXPECT_EQ(Run({"monitor", path, "--allow=0", "--input=5,9"}), 0);
  EXPECT_NE(out_.find("value 5"), std::string::npos);

  const std::string leaky = WriteProgram("program p(pub, sec) { y = sec; }");
  EXPECT_EQ(Run({"monitor", leaky, "--allow=0", "--input=5,9"}), 0);
  EXPECT_NE(out_.find("VIOLATION"), std::string::npos);
}

TEST_F(CliTest, MonitorVariants) {
  const std::string path = WriteProgram("program p(pub, sec) { y = pub; }");
  EXPECT_EQ(Run({"monitor", path, "--allow=0", "--input=1,2", "--high-water"}), 0);
  EXPECT_NE(out_.find("high-water"), std::string::npos);
  EXPECT_EQ(Run({"monitor", path, "--allow=0", "--input=1,2", "--time-safe"}), 0);
  EXPECT_NE(out_.find("[M']"), std::string::npos);
}

TEST_F(CliTest, CheckVerdictDrivesExitCode) {
  const std::string path = WriteProgram("program p(pub, sec) { y = pub; }");
  EXPECT_EQ(Run({"check", path, "--allow=0"}), 0);
  EXPECT_NE(out_.find("SOUND"), std::string::npos);

  // The bare program leaking sec: exit code 2 signals "unsound".
  const std::string leaky = WriteProgram("program p(pub, sec) { y = sec; }");
  EXPECT_EQ(Run({"check", leaky, "--allow=0", "--mechanism=bare"}), 2);
  EXPECT_NE(out_.find("UNSOUND"), std::string::npos);
}

TEST_F(CliTest, CheckDeadlineExceededDrivesExitCode) {
  // A slow program over an oversized grid cannot finish in 1ms: the run
  // reports partial progress and exits 3 (bounded, no verdict).
  const std::string path = WriteProgram(
      "program p(a, b, c, d) { locals i; i = 500; while (i != 0) { i = i - 1; } y = a; }");
  EXPECT_EQ(Run({"check", path, "--allow=0", "--grid=0:9", "--mechanism=bare",
                 "--deadline-ms=1", "--threads=1"}),
            3);
  EXPECT_NE(out_.find("UNKNOWN"), std::string::npos);
  EXPECT_NE(out_.find("deadline exceeded"), std::string::npos);
}

TEST_F(CliTest, CheckRejectsBadDeadline) {
  const std::string path = WriteProgram("program p(a) { y = a; }");
  EXPECT_EQ(Run({"check", path, "--allow=0", "--deadline-ms=zero"}), 1);
  EXPECT_NE(err_.find("bad --deadline-ms"), std::string::npos);
  EXPECT_EQ(Run({"check", path, "--allow=0", "--deadline-ms=-4"}), 1);
}

TEST_F(CliTest, CheckFaultSpecInjectsFaults) {
  const std::string path = WriteProgram("program p(pub, sec) { y = pub; }");
  // Persistent throw: structured abort, exit 4.
  EXPECT_EQ(Run({"check", path, "--allow=0", "--mechanism=bare", "--fault-spec=throw@4"}), 4);
  EXPECT_NE(out_.find("aborted"), std::string::npos);
  EXPECT_NE(out_.find("injected fault"), std::string::npos);
  // Wrong-value corruption surfaces as an ordinary unsound verdict (exit 2).
  EXPECT_EQ(Run({"check", path, "--allow=0", "--mechanism=bare", "--fault-spec=wrong@2"}), 2);
  EXPECT_NE(out_.find("UNSOUND"), std::string::npos);
  // A transient fault absorbed by one retry leaves the verdict untouched.
  EXPECT_EQ(Run({"check", path, "--allow=0", "--mechanism=bare", "--fault-spec=throw!@4",
                 "--retries=1"}),
            0);
  EXPECT_NE(out_.find("SOUND"), std::string::npos);
}

TEST_F(CliTest, CheckRejectsBadFaultFlags) {
  const std::string path = WriteProgram("program p(a) { y = a; }");
  EXPECT_EQ(Run({"check", path, "--allow=0", "--fault-spec=explode@1"}), 1);
  EXPECT_NE(err_.find("bad --fault-spec"), std::string::npos);
  EXPECT_EQ(Run({"check", path, "--allow=0", "--retries=-1"}), 1);
  EXPECT_NE(err_.find("bad --retries"), std::string::npos);
}

TEST_F(CliTest, CheckWithTimeAndGrid) {
  const std::string path = WriteProgram(
      "program p(sec) { locals c; c = sec; while (c != 0) { c = c - 1; } y = 1; }");
  EXPECT_EQ(Run({"check", path, "--allow=", "--grid=0:3", "--time", "--mechanism=bare"}), 2);
  EXPECT_EQ(Run({"check", path, "--allow=", "--grid=0:3", "--time", "--mechanism=mprime"}), 0);
}

TEST_F(CliTest, CheckAllMechanismKinds) {
  const std::string path = WriteProgram("program p(pub, sec) { y = pub + 1; }");
  for (const char* kind :
       {"surveillance", "mprime", "highwater", "static", "residual"}) {
    EXPECT_EQ(Run({"check", path, "--allow=0", std::string("--mechanism=") + kind}), 0)
        << kind;
  }
}

TEST_F(CliTest, AuditRunsAllSixChecksInOnePass) {
  const std::string path = WriteProgram("program p(pub, sec) { y = pub; }");
  EXPECT_EQ(Run({"audit", path, "--allow=0"}), 0);
  // One section per checker, in order.
  for (const char* marker : {"SOUND", "PRESERVED", "M1 == M2", "maximal for",
                             "reveals-at-most", "leak:"}) {
    EXPECT_NE(out_.find(marker), std::string::npos) << marker;
  }

  // Worst section drives the exit code: the bare mechanism leaks sec.
  const std::string leaky = WriteProgram("program p(pub, sec) { y = sec; }");
  EXPECT_EQ(Run({"audit", leaky, "--allow=0", "--mechanism=bare"}), 2);
  EXPECT_NE(out_.find("UNSOUND"), std::string::npos);

  // Flag validation mirrors the other verbs.
  EXPECT_EQ(Run({"audit", path}), 1);  // missing --allow
  EXPECT_NE(err_.find("--allow"), std::string::npos);
  EXPECT_EQ(Run({"audit", path, "--allow=0", "--allow2=9"}), 1);
  EXPECT_NE(err_.find("allow index 9 out of range"), std::string::npos);
  EXPECT_EQ(Run({"audit", path, "--allow=0", "--mechanism2=warp"}), 1);
  EXPECT_NE(err_.find("mechanism2"), std::string::npos);
}

TEST_F(CliTest, GridErrorsAreByteIdenticalAcrossVerbs) {
  // Every grid-taking verb funnels --grid through one parser, so a malformed
  // value produces one message, byte-for-byte, no matter the verb.
  const std::string path = WriteProgram("program p(pub, sec) { y = pub; }");
  const std::string expected = "bad --grid value '1-3' (expected lo:hi)\n";
  EXPECT_EQ(Run({"check", path, "--allow=0", "--grid=1-3"}), 1);
  EXPECT_EQ(err_, expected);
  EXPECT_EQ(Run({"audit", path, "--allow=0", "--grid=1-3"}), 1);
  EXPECT_EQ(err_, expected);
  EXPECT_EQ(Run({"advise", path, "--allow=0", "--grid=1-3"}), 1);
  EXPECT_EQ(err_, expected);
}

TEST_F(CliTest, SweepModeValidatesAndPreservesReportBytes) {
  const std::string path = WriteProgram("program p(pub, sec) { y = pub; }");
  const std::string expected =
      "bad --sweep-mode value 'banana' (expected point or class)\n";
  EXPECT_EQ(Run({"check", path, "--allow=0", "--sweep-mode=banana"}), 1);
  EXPECT_EQ(err_, expected);
  EXPECT_EQ(Run({"audit", path, "--allow=0", "--sweep-mode=banana"}), 1);
  EXPECT_EQ(err_, expected);

  // The class sweep's contract at the CLI layer: same stdout, same exit code.
  for (const char* verb : {"check", "audit"}) {
    EXPECT_EQ(Run({verb, path, "--allow=0", "--sweep-mode=point"}), 0) << verb;
    const std::string point_out = out_;
    EXPECT_EQ(Run({verb, path, "--allow=0", "--sweep-mode=class"}), 0) << verb;
    EXPECT_EQ(out_, point_out) << verb;
    // And the default is "point".
    EXPECT_EQ(Run({verb, path, "--allow=0"}), 0) << verb;
    EXPECT_EQ(out_, point_out) << verb;
  }
}

TEST_F(CliTest, AnalyzeReportsLabels) {
  const std::string path = WriteProgram(
      "program p(pub, sec) { if (sec > 0) { y = 1; } else { y = 2; } }");
  EXPECT_EQ(Run({"analyze", path, "--allow=0"}), 0);
  EXPECT_NE(out_.find("NOT CERTIFIED"), std::string::npos);
  EXPECT_EQ(Run({"analyze", path, "--allow=0,1"}), 0);
  EXPECT_NE(out_.find("CERTIFIED"), std::string::npos);
}

TEST_F(CliTest, InstrumentPrintsShadowVariables) {
  const std::string path = WriteProgram("program p(a) { y = a; }");
  EXPECT_EQ(Run({"instrument", path, "--allow=0"}), 0);
  EXPECT_NE(out_.find("a_bar"), std::string::npos);
  EXPECT_NE(out_.find("C_bar"), std::string::npos);
}

TEST_F(CliTest, AdviseShowsCandidates) {
  const std::string path = WriteProgram(R"(
    program ex7(x1, x2) {
      locals r;
      if (x1 == 1) { r = 1; } else { r = 2; }
      if (r == 1) { y = 1; } else { y = 1; }
    })");
  EXPECT_EQ(Run({"advise", path, "--allow=1", "--grid=0:2"}), 0);
  EXPECT_NE(out_.find("if-to-select"), std::string::npos);
  EXPECT_NE(out_.find("chosen rewriting"), std::string::npos);
}

TEST_F(CliTest, OptimizeSimplifiesAndReports) {
  const std::string path = WriteProgram("program p(a) { y = a * 1 + 0; }");
  EXPECT_EQ(Run({"optimize", path}), 0);
  EXPECT_NE(out_.find("simplified 1 expressions"), std::string::npos);
  EXPECT_NE(out_.find("y <- a"), std::string::npos);
}

TEST_F(CliTest, DecompileRoundTripsAndAudits) {
  const std::string path = WriteProgram(
      "program p(n) { locals c; c = n; if (n > 0) { y = 1; } else { y = 2; } }");
  EXPECT_EQ(Run({"decompile", path}), 0);
  EXPECT_NE(out_.find("program p(n)"), std::string::npos);
  EXPECT_NE(out_.find("if ("), std::string::npos);
}

TEST_F(CliTest, DotEmitsGraph) {
  const std::string path = WriteProgram("program p(a) { if (a) { y = 1; } }");
  EXPECT_EQ(Run({"dot", path}), 0);
  EXPECT_NE(out_.find("digraph"), std::string::npos);
}

TEST_F(CliTest, BytecodeListsInstructions) {
  const std::string path = WriteProgram("program p(a) { y = a + 1; }");
  EXPECT_EQ(Run({"bytecode", path}), 0);
  EXPECT_NE(out_.find("halt"), std::string::npos);
}

TEST_F(CliTest, FuzzSmokeRunIsCleanAndWitnessesReplay) {
  const std::string dir = ::testing::TempDir() + "cli_fuzz_witnesses";
  std::filesystem::create_directories(dir);
  EXPECT_EQ(Run({"fuzz", "--seed=20260809", "--iterations=30", "--threads=7",
                 "--out-dir=" + dir}),
            0);
  EXPECT_NE(out_.find("30 iterations"), std::string::npos);
  EXPECT_NE(out_.find("0 disagreements"), std::string::npos);
  ASSERT_NE(out_.find("wrote "), std::string::npos) << out_;

  // Replay one of the witnesses it just wrote: expected findings are
  // permanent exhibits, so the phenomenon must still reproduce (exit 0).
  const size_t at = out_.find("wrote ") + 6;
  const std::string witness = out_.substr(at, out_.find('\n', at) - at);
  EXPECT_EQ(Run({"fuzz", "--replay=" + witness}), 0) << err_;
  EXPECT_NE(out_.find(": reproduces"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST_F(CliTest, FuzzReplayReportsNonReproducingWitness) {
  // A hand-written timing-leak witness over a program with no leak at all:
  // the replay must run cleanly and report that nothing reproduces (exit 2).
  const std::string witness = WriteProgram(
      "{\"kind\": \"timing-leak-witness\", \"program\": \"program p(a) { y = a; }\", "
      "\"allow_bits\": 1, \"grid_lo\": -1, \"grid_hi\": 1}");
  EXPECT_EQ(Run({"fuzz", "--replay=" + witness}), 2) << err_;
  EXPECT_NE(out_.find("does not reproduce"), std::string::npos);
}

TEST_F(CliTest, FuzzRejectsBadFlags) {
  EXPECT_EQ(Run({"fuzz", "--seed=banana"}), 1);
  EXPECT_NE(err_.find("bad --seed"), std::string::npos);
  EXPECT_EQ(Run({"fuzz", "--iterations=0"}), 1);  // unbounded without a budget
  EXPECT_NE(err_.find("--budget-ms"), std::string::npos);
  EXPECT_EQ(Run({"fuzz", "--iterations=5", "--threads=-2"}), 1);
  EXPECT_EQ(Run({"fuzz", "--replay=/nonexistent/witness.json"}), 1);
  EXPECT_NE(err_.find("cannot open"), std::string::npos);
  const std::string junk = WriteProgram("not json");
  EXPECT_EQ(Run({"fuzz", "--replay=" + junk}), 1);
}

TEST_F(CliTest, ErrorsAreReported) {
  EXPECT_EQ(Run({}), 1);
  EXPECT_NE(err_.find("usage"), std::string::npos);

  EXPECT_EQ(Run({"frobnicate", "x.fl"}), 1);
  EXPECT_NE(err_.find("unknown command"), std::string::npos);

  EXPECT_EQ(Run({"run", "/nonexistent/file.fl", "--input="}), 1);
  EXPECT_NE(err_.find("cannot open"), std::string::npos);

  const std::string bad = WriteProgram("program p( { }");
  EXPECT_EQ(Run({"run", bad, "--input="}), 1);

  const std::string path = WriteProgram("program p(a) { y = a; }");
  EXPECT_EQ(Run({"monitor", path, "--input=1"}), 1);  // missing --allow
  EXPECT_NE(err_.find("--allow"), std::string::npos);
  EXPECT_EQ(Run({"monitor", path, "--allow=7", "--input=1"}), 1);  // out of range
  EXPECT_EQ(Run({"check", path, "--allow=0", "--mechanism=warp"}), 1);
}

TEST_F(CliTest, BatchRunsManifestAndPrintsJsonReport) {
  const std::string manifest = WriteProgram(R"({
    "defaults": {"program": "program p(pub, sec) { y = pub; }", "allow": [0]},
    "jobs": [
      {"id": "sound"},
      {"id": "leaky", "program": "program p(pub, sec) { y = sec; }",
       "mechanism": "bare"}
    ]
  })");
  // Worst per-job code wins: "sound" exits 0, "leaky" proves unsound (2).
  EXPECT_EQ(Run({"batch", manifest}), 2);
  EXPECT_NE(out_.find("\"id\": \"sound\""), std::string::npos);
  EXPECT_NE(out_.find("\"status\": \"completed\""), std::string::npos);
  EXPECT_NE(out_.find("\"exit_code\": 2"), std::string::npos);
  EXPECT_NE(out_.find("\"scheduler\""), std::string::npos);
  EXPECT_NE(out_.find("\"cache\""), std::string::npos);
  EXPECT_NE(out_.find("UNSOUND"), std::string::npos);  // embedded report text

  // The flag spelling and --pretty both work.
  EXPECT_EQ(Run({"--batch", manifest, "--pretty"}), 2);
  EXPECT_NE(out_.find("\"jobs\": ["), std::string::npos);
}

TEST_F(CliTest, BatchRejectsBadManifests) {
  EXPECT_EQ(Run({"batch"}), 1);
  EXPECT_NE(err_.find("missing manifest"), std::string::npos);

  EXPECT_EQ(Run({"batch", "/nonexistent/manifest.json"}), 1);
  EXPECT_NE(err_.find("cannot open"), std::string::npos);

  const std::string garbage = WriteProgram("{not json");
  EXPECT_EQ(Run({"batch", garbage}), 1);
  EXPECT_NE(err_.find("manifest"), std::string::npos);

  const std::string typo = WriteProgram(
      R"({"jobs": [{"cheker": "soundness", "program": "program p(a) { y = a; }"}]})");
  EXPECT_EQ(Run({"batch", typo}), 1);
  EXPECT_NE(err_.find("unknown key 'cheker'"), std::string::npos);
}

TEST_F(CliTest, BatchInvalidJobSpecExitsOneWithStructuredReport) {
  // The manifest parses, but the job itself is invalid (allow index out of
  // range): the batch still runs and reports the job as invalid.
  const std::string manifest = WriteProgram(
      R"({"jobs": [{"program": "program p(a) { y = a; }", "allow": [7]}]})");
  EXPECT_EQ(Run({"batch", manifest}), 1);
  EXPECT_NE(out_.find("\"status\": \"invalid\""), std::string::npos);
  EXPECT_NE(out_.find("allow:"), std::string::npos);
}

TEST_F(CliTest, CheckEmitsMetricsAndTraceFilesWithoutChangingStdout) {
  const std::string path = WriteProgram("program p(pub, sec) { y = pub; }");
  EXPECT_EQ(Run({"check", path, "--allow=0"}), 0);
  const std::string plain_stdout = out_;

  const std::string metrics_path = WriteProgram("");  // unique, auto-removed
  const std::string trace_path = WriteProgram("");
  EXPECT_EQ(Run({"check", path, "--allow=0", "--metrics-out=" + metrics_path,
                 "--trace-out=" + trace_path}),
            0);
  // Observability is a side channel: the human-facing report is unchanged.
  EXPECT_EQ(out_, plain_stdout);

  const Result<Json> metrics = Json::Parse(Slurp(metrics_path));
  ASSERT_TRUE(metrics.ok()) << metrics.error().ToString();
  const Json* counters = metrics.value().Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->Find("check.soundness.runs"), nullptr);
  EXPECT_EQ(counters->Find("check.soundness.runs")->AsInt(), 1);
  EXPECT_GE(counters->Find("sweep.points")->AsInt(), 1);

  const Result<Json> trace = Json::Parse(Slurp(trace_path));
  ASSERT_TRUE(trace.ok()) << trace.error().ToString();
  const Json* events = trace.value().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_FALSE(events->Items().empty());
}

TEST_F(CliTest, AuditAndBatchEmitObsFiles) {
  const std::string program = WriteProgram("program p(pub, sec) { y = pub; }");
  const std::string metrics_path = WriteProgram("");
  const std::string trace_path = WriteProgram("");
  EXPECT_EQ(Run({"audit", program, "--allow=0", "--metrics-out=" + metrics_path,
                 "--trace-out=" + trace_path}),
            0);
  const Result<Json> metrics = Json::Parse(Slurp(metrics_path));
  ASSERT_TRUE(metrics.ok());
  // The audit runs every checker once over the shared table.
  for (const char* name : {"check.soundness.runs", "check.integrity.runs",
                           "check.completeness.runs", "check.maximal.runs",
                           "check.policy_compare.runs", "check.leak.runs",
                           "check.tabulate.runs"}) {
    ASSERT_NE(metrics.value().Find("counters")->Find(name), nullptr) << name;
    EXPECT_EQ(metrics.value().Find("counters")->Find(name)->AsInt(), 1) << name;
  }
  const Result<Json> trace = Json::Parse(Slurp(trace_path));
  ASSERT_TRUE(trace.ok());
  bool saw_audit_span = false;
  for (const Json& event : trace.value().Find("traceEvents")->Items()) {
    saw_audit_span = saw_audit_span || event.Find("name")->AsString() == "audit";
  }
  EXPECT_TRUE(saw_audit_span);

  const std::string manifest = WriteProgram(
      R"({"jobs": [{"program": "program p(pub, sec) { y = pub; }", "allow": [0]}]})");
  EXPECT_EQ(Run({"batch", manifest, "--metrics-out=" + metrics_path}), 0);
  const Result<Json> batch_metrics = Json::Parse(Slurp(metrics_path));
  ASSERT_TRUE(batch_metrics.ok());
  EXPECT_EQ(batch_metrics.value().Find("counters")->Find("service.batches")->AsInt(), 1);
  // The batch report on stdout stays metrics-free unless the manifest opts in.
  EXPECT_EQ(out_.find("\"metrics\""), std::string::npos);
}

TEST_F(CliTest, ObsFlagErrorsAndWriteFailures) {
  const std::string path = WriteProgram("program p(a) { y = a; }");
  EXPECT_EQ(Run({"check", path, "--allow=0", "--metrics-out="}), 1);
  EXPECT_NE(err_.find("--metrics-out"), std::string::npos);
  EXPECT_EQ(Run({"check", path, "--allow=0", "--trace-out="}), 1);

  // An unwritable sink upgrades a clean exit to 1 and says why...
  EXPECT_EQ(Run({"check", path, "--allow=0", "--metrics-out=/nonexistent/dir/m.json"}), 1);
  EXPECT_NE(err_.find("cannot write"), std::string::npos);

  // ...but never masks a worse verdict code: the unsound verdict's 2 wins.
  const std::string leaky = WriteProgram("program p(pub, sec) { y = sec; }");
  EXPECT_EQ(Run({"check", leaky, "--allow=0", "--mechanism=bare",
                 "--metrics-out=/nonexistent/dir/m.json"}),
            2);
}

TEST_F(CliTest, ParserErrorsCarryLocation) {
  const std::string bad = WriteProgram("program p(a) {\n  y = ;\n}");
  EXPECT_EQ(Run({"run", bad, "--input=1"}), 1);
  EXPECT_NE(err_.find(":2:"), std::string::npos);
}

TEST_F(CliTest, SubmitInlinesProgramFileClientSide) {
  ServerConfig config;
  config.unix_path = testlib::TempSocketPath("cli_submit");
  CheckServer server(std::move(config));
  ASSERT_TRUE(server.Start().ok());

  // The daemon refuses "program_file" on the wire, so `secpol submit` must
  // resolve it against the client's filesystem and inline the text.
  const std::string program = WriteProgram("program p(a) { y = a; }");
  const std::string job = WriteProgram(R"({"checker": "soundness", "allow": [0],
    "program_file": ")" + program + R"("})");
  EXPECT_EQ(Run({"submit", "--socket=" + server.unix_path(), "--job-file=" + job}), 0);
  EXPECT_NE(out_.find("\"status\": \"completed\""), std::string::npos) << out_;

  // A path the client cannot open is a client-side error; no frame is sent.
  const std::string bad_job = WriteProgram(R"({"program_file": "/no/such/file.fl"})");
  EXPECT_EQ(Run({"submit", "--socket=" + server.unix_path(), "--job-file=" + bad_job}), 1);
  EXPECT_NE(err_.find("cannot open"), std::string::npos) << err_;
  server.Shutdown();
}

}  // namespace
}  // namespace secpol
