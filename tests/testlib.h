// Shared helpers for the differential test suites.
//
// The parallel-engine, audit, service and scenario suites all compare
// checker reports field by field and byte by byte; before this library each
// suite carried its own copy of the comparators (and its own ad-hoc random
// policy loop). One definition here keeps "what does report equality mean"
// in one place — a new report field added to a checker needs exactly one
// comparator update to be locked by every differential suite at once.
//
// Everything lives in namespace secpol::testlib and uses gtest's EXPECT/
// ASSERT macros, so it links only into test binaries (the secpol_testlib
// static library in tests/CMakeLists.txt), never into src/.

#ifndef SECPOL_TESTS_TESTLIB_H_
#define SECPOL_TESTS_TESTLIB_H_

#include <string>

#include "src/channels/timing.h"
#include "src/flowchart/program.h"
#include "src/mechanism/completeness.h"
#include "src/mechanism/domain.h"
#include "src/mechanism/integrity.h"
#include "src/mechanism/maximal.h"
#include "src/mechanism/soundness.h"
#include "src/util/rng.h"
#include "src/util/var_set.h"

namespace secpol {
namespace testlib {

// The thread counts every differential suite sweeps: serial reference, the
// smallest parallel case, an odd count that misaligns shard boundaries, and
// one above the grid-shard multiple.
inline constexpr int kThreadCounts[] = {1, 2, 3, 7};

// Field-for-field (and byte-for-byte via ToString) equality of two checker
// reports, with the thread count in every failure message. `serial` is the
// reference; `parallel` the run under test.
void ExpectSameSoundness(const SoundnessReport& serial, const SoundnessReport& parallel,
                         int threads);
void ExpectSameIntegrity(const IntegrityReport& serial, const IntegrityReport& parallel,
                         int threads);
void ExpectSameCompleteness(const CompletenessStats& serial, const CompletenessStats& parallel,
                            int threads);
// Maximal synthesis has no ToString; equality additionally re-runs both
// synthesized table mechanisms over the whole domain.
void ExpectSameMaximal(const MaximalSynthesis& serial, const MaximalSynthesis& parallel,
                       const InputDomain& domain, int threads);
void ExpectSameLeak(const LeakReport& serial, const LeakReport& parallel, int threads);

// A random allow(J): each of the first `num_inputs` coordinates is included
// with probability 1/2, drawing exactly `num_inputs` times from `rng`.
VarSet RandomAllowSet(int num_inputs, Rng* rng);

// Parse + lower a flowlang source, EXPECTing the parse to succeed.
Program MustLower(const std::string& text);

// A temp-file path unique to the currently running gtest test:
// <TempDir>/<prefix>_<test name>_<stem>.
std::string TempPath(const std::string& prefix, const std::string& stem);

// A unix-socket path that is (a) unique per process and call, so suites
// running under `ctest -j` never collide, and (b) short enough for
// sun_path's ~107-byte limit — which gtest's TempDir()-based names are not
// guaranteed to be. The file is unlinked first so a crashed predecessor
// can't wedge a re-run.
std::string TempSocketPath(const std::string& stem);

// A loopback TCP port the kernel just handed out (bind :0, read it back,
// close). Unique enough for tests that need to pass a literal port number;
// prefer ListenTcp(0, &port) where the listener itself can pick.
int UniqueLoopbackPort();

}  // namespace testlib
}  // namespace secpol

#endif  // SECPOL_TESTS_TESTLIB_H_
