// Tests for the capability-system mechanism (the conclusion's "capability
// systems as well as surveillance").

#include <gtest/gtest.h>

#include "src/corpus/generator.h"
#include "src/flowlang/lower.h"
#include "src/mechanism/completeness.h"
#include "src/mechanism/soundness.h"
#include "src/monitor/capability.h"
#include "src/policy/policy.h"
#include "src/surveillance/surveillance.h"

namespace secpol {
namespace {

TEST(CapabilityTest, RunsWithFullCapabilities) {
  const Program q = MustCompile("program q(a, b) { y = a + b; }");
  const CapabilityMechanism m(Program(q), VarSet{0, 1});
  const Outcome o = m.Run(Input{2, 3});
  ASSERT_TRUE(o.IsValue());
  EXPECT_EQ(o.value, 5);
}

TEST(CapabilityTest, FaultsOnFirstMissingCapabilityReference) {
  const Program q = MustCompile("program q(a, b) { y = a; y = y + b; }");
  const CapabilityMechanism m(Program(q), VarSet{0});
  const Outcome o = m.Run(Input{2, 3});
  ASSERT_TRUE(o.IsViolation());
  EXPECT_NE(o.notice.find("no capability"), std::string::npos);
  EXPECT_NE(o.notice.find("{1}"), std::string::npos);
}

TEST(CapabilityTest, FaultsOnPredicatesToo) {
  const Program q = MustCompile("program q(a, sec) { if (sec > 0) { y = 1; } y = y; }");
  const CapabilityMechanism m(Program(q), VarSet{0});
  EXPECT_TRUE(m.Run(Input{1, 1}).IsViolation());
}

TEST(CapabilityTest, NeverTouchedInputsNeedNoCapability) {
  const Program q = MustCompile("program q(a, unused) { y = a * 2; }");
  const CapabilityMechanism m(Program(q), VarSet{0});
  EXPECT_TRUE(m.Run(Input{4, 99}).IsValue());
}

TEST(CapabilityTest, PathSensitivity) {
  // The uncapable input is only referenced on one path: runs that avoid the
  // path complete.
  const Program q = MustCompile(
      "program q(a, sec) { if (a == 0) { y = 7; } else { y = sec; } }");
  const CapabilityMechanism m(Program(q), VarSet{0});
  EXPECT_TRUE(m.Run(Input{0, 99}).IsValue());
  EXPECT_TRUE(m.Run(Input{1, 99}).IsViolation());
}

TEST(CapabilityTest, FaultTimingIsCapabilityDetermined) {
  // Two inputs agreeing on capable coordinates fault at the same step.
  const Program q = MustCompile(
      "program q(a, sec) { locals c; c = a; while (c != 0) { c = c - 1; } y = sec; }");
  const CapabilityMechanism m(Program(q), VarSet{0});
  const Outcome o1 = m.Run(Input{2, 5});
  const Outcome o2 = m.Run(Input{2, 77});
  EXPECT_TRUE(o1.IsViolation());
  EXPECT_EQ(o1.steps, o2.steps);
}

class CapabilityPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CapabilityPropertyTest, SoundEvenUnderObservableTime) {
  CorpusConfig config;
  config.num_inputs = 2;
  const Program q = Lower(GenerateProgram(config, GetParam(), "cap"));
  const InputDomain domain = InputDomain::Uniform(2, {-1, 0, 2});
  for (const VarSet caps : {VarSet::Empty(), VarSet{0}, VarSet{1}, VarSet{0, 1}}) {
    const CapabilityMechanism m(Program(q), caps);
    EXPECT_TRUE(CheckSoundness(m, AllowPolicy(2, caps), domain,
                               Observability::kValueAndTime)
                    .sound)
        << "seed " << GetParam() << " caps " << caps.ToString();
  }
}

TEST_P(CapabilityPropertyTest, BelowTimingSafeSurveillanceInTheLadder) {
  // cap <= M': wherever the capability mechanism completes, the paths only
  // referenced capable data, so M''s labels stay allowed and it releases.
  CorpusConfig config;
  config.num_inputs = 2;
  const Program q = Lower(GenerateProgram(config, GetParam(), "cap"));
  const VarSet caps{0};
  const CapabilityMechanism cap(Program(q), caps);
  const SurveillanceMechanism m_prime = MakeSurveillanceMPrime(Program(q), caps);
  const InputDomain domain = InputDomain::Uniform(2, {0, 1, 2});
  EXPECT_EQ(CompareCompleteness(m_prime, cap, domain).second_only, 0u)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Corpus, CapabilityPropertyTest,
                         ::testing::Range<std::uint64_t>(10000, 10040));

TEST(CapabilityTest, StrictlyBelowMPrimeOnForgettingPrograms) {
  // `y = sec; y = 0`: the capability fault fires on the reference; M'
  // tolerates the dead assignment and releases the overwritten y.
  const Program q = MustCompile("program q(a, sec) { y = sec; y = 0; }");
  const VarSet caps{0};
  const CapabilityMechanism cap(Program(q), caps);
  const SurveillanceMechanism m_prime = MakeSurveillanceMPrime(Program(q), caps);
  EXPECT_TRUE(cap.Run(Input{1, 2}).IsViolation());
  EXPECT_TRUE(m_prime.Run(Input{1, 2}).IsValue());
  const InputDomain domain = InputDomain::Range(2, 0, 2);
  EXPECT_EQ(CompareCompleteness(m_prime, cap, domain).Relation(),
            CompletenessRelation::kFirstMore);
}

}  // namespace
}  // namespace secpol
