#include "tests/testlib.h"

#include <unistd.h>

#include <gtest/gtest.h>

#include "src/flowlang/lower.h"
#include "src/flowlang/parser.h"
#include "src/server/socket.h"
#include "src/util/result.h"

namespace secpol {
namespace testlib {

void ExpectSameSoundness(const SoundnessReport& serial, const SoundnessReport& parallel,
                         int threads) {
  EXPECT_EQ(serial.sound, parallel.sound) << threads << " threads";
  EXPECT_EQ(serial.inputs_checked, parallel.inputs_checked) << threads << " threads";
  EXPECT_EQ(serial.policy_classes, parallel.policy_classes) << threads << " threads";
  ASSERT_EQ(serial.counterexample.has_value(), parallel.counterexample.has_value())
      << threads << " threads";
  if (serial.counterexample.has_value()) {
    EXPECT_EQ(serial.counterexample->input_a, parallel.counterexample->input_a);
    EXPECT_EQ(serial.counterexample->input_b, parallel.counterexample->input_b);
    EXPECT_EQ(serial.counterexample->outcome_a.ToString(),
              parallel.counterexample->outcome_a.ToString());
    EXPECT_EQ(serial.counterexample->outcome_b.ToString(),
              parallel.counterexample->outcome_b.ToString());
  }
  // Belt and braces: the rendered reports must be byte-identical.
  EXPECT_EQ(serial.ToString(), parallel.ToString()) << threads << " threads";
}

void ExpectSameIntegrity(const IntegrityReport& serial, const IntegrityReport& parallel,
                         int threads) {
  EXPECT_EQ(serial.preserved, parallel.preserved) << threads << " threads";
  EXPECT_EQ(serial.inputs_checked, parallel.inputs_checked) << threads << " threads";
  EXPECT_EQ(serial.required_classes, parallel.required_classes) << threads << " threads";
  ASSERT_EQ(serial.counterexample.has_value(), parallel.counterexample.has_value())
      << threads << " threads";
  if (serial.counterexample.has_value()) {
    EXPECT_EQ(serial.counterexample->input_a, parallel.counterexample->input_a);
    EXPECT_EQ(serial.counterexample->input_b, parallel.counterexample->input_b);
    EXPECT_EQ(serial.counterexample->outcome.ToString(),
              parallel.counterexample->outcome.ToString());
  }
  EXPECT_EQ(serial.ToString(), parallel.ToString()) << threads << " threads";
}

void ExpectSameCompleteness(const CompletenessStats& serial, const CompletenessStats& parallel,
                            int threads) {
  EXPECT_EQ(serial.total, parallel.total) << threads << " threads";
  EXPECT_EQ(serial.both_value, parallel.both_value) << threads << " threads";
  EXPECT_EQ(serial.first_only, parallel.first_only) << threads << " threads";
  EXPECT_EQ(serial.second_only, parallel.second_only) << threads << " threads";
  EXPECT_EQ(serial.neither, parallel.neither) << threads << " threads";
}

void ExpectSameMaximal(const MaximalSynthesis& serial, const MaximalSynthesis& parallel,
                       const InputDomain& domain, int threads) {
  EXPECT_EQ(serial.inputs, parallel.inputs) << threads << " threads";
  EXPECT_EQ(serial.policy_classes, parallel.policy_classes) << threads << " threads";
  EXPECT_EQ(serial.released_classes, parallel.released_classes) << threads << " threads";
  ASSERT_EQ(serial.mechanism->table_size(), parallel.mechanism->table_size())
      << threads << " threads";
  domain.ForEach([&](InputView input) {
    EXPECT_EQ(serial.mechanism->Run(input).ToString(), parallel.mechanism->Run(input).ToString());
  });
}

void ExpectSameLeak(const LeakReport& serial, const LeakReport& parallel, int threads) {
  EXPECT_EQ(serial.max_distinct_outcomes, parallel.max_distinct_outcomes)
      << threads << " threads";
  EXPECT_DOUBLE_EQ(serial.max_leak_bits, parallel.max_leak_bits) << threads << " threads";
  EXPECT_EQ(serial.leaky_classes, parallel.leaky_classes) << threads << " threads";
  EXPECT_EQ(serial.policy_classes, parallel.policy_classes) << threads << " threads";
}

VarSet RandomAllowSet(int num_inputs, Rng* rng) {
  VarSet allowed;
  for (int i = 0; i < num_inputs; ++i) {
    if (rng->Chance(1, 2)) {
      allowed.Insert(i);
    }
  }
  return allowed;
}

Program MustLower(const std::string& text) {
  Result<SourceProgram> parsed = ParseProgram(text);
  EXPECT_TRUE(parsed.ok());
  return Lower(parsed.value());
}

std::string TempPath(const std::string& prefix, const std::string& stem) {
  const std::string test_name =
      ::testing::UnitTest::GetInstance()->current_test_info()->name();
  return ::testing::TempDir() + prefix + "_" + test_name + "_" + stem;
}

std::string TempSocketPath(const std::string& stem) {
  // UniqueSocketPath already mixes in the pid and a process-wide counter, so
  // concurrent ctest shards (separate processes) and repeated calls inside
  // one test both get distinct paths.
  const std::string path = UniqueSocketPath(stem);
  ::unlink(path.c_str());
  return path;
}

int UniqueLoopbackPort() {
  int port = 0;
  Result<Fd> listener = ListenTcp(0, &port);
  EXPECT_TRUE(listener.ok()) << (listener.ok() ? "" : listener.error().message);
  // Closing frees the port; the caller re-binds it. The race window is real
  // but tiny, and ephemeral ports are not immediately reissued on Linux.
  return port;
}

}  // namespace testlib
}  // namespace secpol
