// Tests for the multi-check audit (src/service/audit.h) and its service
// integration.
//
// The two contracts under test:
//   1. Differential: an audit job's report is byte-identical to the
//      concatenation of the six standalone job reports with the same
//      ingredients — at any thread count, cold or from the cache.
//   2. Evaluate-once: on the shared-table path every mechanism Run and every
//      policy Image is computed exactly once per grid point, however many of
//      the six reducers consume it.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/mechanism/check_options.h"
#include "src/mechanism/domain.h"
#include "src/mechanism/mechanism.h"
#include "src/mechanism/outcome_table.h"
#include "src/policy/policy.h"
#include "src/service/audit.h"
#include "src/service/job.h"
#include "src/service/service.h"
#include "src/util/deadline.h"

namespace secpol {
namespace {

constexpr const char* kProgram = "program p(pub, sec) { y = pub + sec; }";

CheckJobSpec AuditSpec(int threads) {
  CheckJobSpec spec;
  spec.id = "audit";
  spec.checker = CheckerKind::kAudit;
  spec.program_text = kProgram;
  spec.allow = VarSet{0};
  spec.allow2 = VarSet{0, 1};
  spec.mechanism = "surveillance";
  spec.mechanism2 = "bare";
  spec.num_threads = threads;
  return spec;
}

TEST(AuditDifferentialTest, ReportIsConcatenationOfStandaloneJobs) {
  for (int threads : {1, 2, 7}) {
    const CheckJobSpec audit = AuditSpec(threads);
    const JobResult result = ExecuteJob(audit);
    ASSERT_EQ(result.status, JobStatus::kCompleted) << threads;

    std::string expected;
    for (const CheckJobSpec& spec : AuditSectionSpecs(audit)) {
      const JobResult standalone = ExecuteJob(spec);
      ASSERT_EQ(standalone.status, JobStatus::kCompleted) << spec.id << " " << threads;
      expected += standalone.report;
    }
    EXPECT_EQ(result.report, expected) << threads;
    // The audit evaluated the grid once; six standalone sweeps would have
    // evaluated it six times.
    EXPECT_EQ(result.evaluated, result.total) << threads;
  }
}

TEST(AuditDifferentialTest, UnsoundMechanismYieldsWorstSectionExit) {
  CheckJobSpec spec = AuditSpec(1);
  spec.mechanism = "bare";  // leaks sec through y = pub + sec
  const JobResult result = ExecuteJob(spec);
  EXPECT_EQ(result.status, JobStatus::kCompleted);
  EXPECT_EQ(result.exit_code, 2);  // soundness / integrity / leak sections fail
  EXPECT_NE(result.report.find("UNSOUND"), std::string::npos);
}

TEST(AuditDifferentialTest, WarmCacheReplaysIdenticalBytes) {
  ServiceConfig config;
  CheckService service(config);
  const CheckJobSpec spec = AuditSpec(2);

  const BatchReport cold = service.RunBatch({spec});
  ASSERT_EQ(cold.jobs.size(), 1u);
  ASSERT_EQ(cold.jobs[0].status, JobStatus::kCompleted);
  EXPECT_FALSE(cold.jobs[0].from_cache);

  const BatchReport warm = service.RunBatch({spec});
  ASSERT_EQ(warm.jobs.size(), 1u);
  EXPECT_TRUE(warm.jobs[0].from_cache);
  EXPECT_EQ(warm.jobs[0].report, cold.jobs[0].report);
  EXPECT_EQ(warm.jobs[0].exit_code, cold.jobs[0].exit_code);
  EXPECT_EQ(warm.jobs[0].cache_key, cold.jobs[0].cache_key);

  // A different thread count is a cache *hit*: evaluation knobs are not part
  // of the audit's identity.
  CheckJobSpec retuned = spec;
  retuned.num_threads = 7;
  const BatchReport hit = service.RunBatch({retuned});
  ASSERT_EQ(hit.jobs.size(), 1u);
  EXPECT_TRUE(hit.jobs[0].from_cache);
  EXPECT_EQ(hit.jobs[0].report, cold.jobs[0].report);
}

// ---------------------------------------------------------------------------
// Evaluate-once

class CountingPolicy : public SecurityPolicy {
 public:
  CountingPolicy(std::string name, int num_inputs, std::atomic<std::uint64_t>* calls)
      : name_(std::move(name)), num_inputs_(num_inputs), calls_(calls) {}

  int num_inputs() const override { return num_inputs_; }
  PolicyImage Image(InputView input) const override {
    calls_->fetch_add(1, std::memory_order_relaxed);
    return PolicyImage{input[0]};
  }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  int num_inputs_;
  std::atomic<std::uint64_t>* calls_;
};

TEST(AuditEvaluateOnceTest, EachSourceRunsExactlyOncePerGridPoint) {
  const InputDomain domain = InputDomain::Range(2, 0, 3);  // 16 points
  for (int threads : {1, 3}) {
    std::atomic<std::uint64_t> m1_runs{0};
    std::atomic<std::uint64_t> m2_runs{0};
    std::atomic<std::uint64_t> p1_images{0};
    std::atomic<std::uint64_t> p2_images{0};

    const FunctionMechanism m1("m1", 2, [&](InputView input) {
      m1_runs.fetch_add(1, std::memory_order_relaxed);
      return Outcome::Val(input[0], 1);
    });
    const FunctionMechanism m2("m2", 2, [&](InputView input) {
      m2_runs.fetch_add(1, std::memory_order_relaxed);
      return Outcome::Val(input[0] + input[1], 1);
    });
    const CountingPolicy p1("p1", 2, &p1_images);
    const CountingPolicy p2("p2", 2, &p2_images);

    const AuditReport audit = CheckAll(m1, m2, p1, p2, domain, Observability::kValueOnly,
                                       CheckOptions::Threads(threads));
    EXPECT_TRUE(audit.shared) << threads;
    EXPECT_TRUE(audit.tabulation.complete()) << threads;
    EXPECT_EQ(audit.EvaluatedPoints(), domain.size()) << threads;
    // Exactly once per point, despite six reducers consuming the results.
    EXPECT_EQ(m1_runs.load(), domain.size()) << threads;
    EXPECT_EQ(m2_runs.load(), domain.size()) << threads;
    EXPECT_EQ(p1_images.load(), domain.size()) << threads;
    EXPECT_EQ(p2_images.load(), domain.size()) << threads;

    // And the verdicts are the live checkers': m1 = allow(0) projection is
    // sound for p1; m2 mixes sec in, so m1 vs m2 diverge on values.
    EXPECT_TRUE(audit.soundness.sound) << threads;
    EXPECT_TRUE(audit.integrity.preserved) << threads;
    EXPECT_TRUE(audit.policy_compare.reveals_at_most) << threads;
    EXPECT_EQ(audit.leak.leaky_classes, 0u) << threads;
  }
}

// ---------------------------------------------------------------------------
// Fail-closed paths

TEST(AuditFailClosedTest, DeadlineDuringTabulationFailsEverySectionClosed) {
  const InputDomain domain = InputDomain::Range(2, 0, 99);  // 10000 points
  const FunctionMechanism slow("slow", 2, [](InputView input) {
    Value sink = 0;
    for (int i = 0; i < 20000; ++i) {
      sink += i ^ input[0];
    }
    return Outcome::Val(sink >= 0 ? input[0] : 0, 1);
  });
  const FunctionMechanism fast("fast", 2,
                               [](InputView input) { return Outcome::Val(input[0], 1); });
  const AllowPolicy policy(2, VarSet{0});
  const AllowPolicy policy2 = AllowPolicy::AllowAll(2);

  CheckOptions options = CheckOptions::Threads(2);
  options.deadline = Deadline::AfterMillis(1);
  const AuditReport audit =
      CheckAll(slow, fast, policy, policy2, domain, Observability::kValueOnly, options);

  EXPECT_TRUE(audit.shared);
  EXPECT_EQ(audit.tabulation.status, CheckStatus::kDeadlineExceeded);
  // No section may claim a verdict from a partial table.
  EXPECT_FALSE(audit.soundness.sound);
  EXPECT_FALSE(audit.integrity.preserved);
  EXPECT_FALSE(audit.policy_compare.reveals_at_most);
  EXPECT_EQ(audit.maximal.mechanism, nullptr);
  for (const CheckProgress* progress :
       {&audit.soundness.progress, &audit.integrity.progress, &audit.completeness.progress,
        &audit.maximal.progress, &audit.policy_compare.progress, &audit.leak.progress}) {
    EXPECT_EQ(progress->status, CheckStatus::kDeadlineExceeded);
    EXPECT_EQ(progress->evaluated, audit.tabulation.evaluated);
  }
}

TEST(AuditFailClosedTest, FaultedTabulationAbortsTheWholeJob) {
  CheckJobSpec spec = AuditSpec(2);
  spec.fault_spec = "throw@5";
  const JobResult result = ExecuteJob(spec);
  EXPECT_EQ(result.status, JobStatus::kAborted);
  EXPECT_EQ(result.exit_code, 4);
  EXPECT_NE(result.report.find("injected fault"), std::string::npos);
}

TEST(AuditFallbackTest, OversizedGridFallsBackToLiveCheckers) {
  // 3 000 000 points exceed OutcomeTable::kMaxPoints, so the audit runs the
  // six live sweeps instead; a 1ms deadline keeps the test fast while still
  // exercising the fallback dispatch.
  const InputDomain domain = InputDomain::Range(1, 0, 2999999);
  ASSERT_GT(domain.size(), OutcomeTable::kMaxPoints);
  const FunctionMechanism m("m", 1, [](InputView input) { return Outcome::Val(input[0], 1); });
  const AllowPolicy policy = AllowPolicy::AllowAll(1);

  CheckOptions options = CheckOptions::Threads(2);
  options.deadline = Deadline::AfterMillis(1);
  const AuditReport audit =
      CheckAll(m, m, policy, policy, domain, Observability::kValueOnly, options);

  EXPECT_FALSE(audit.shared);
  EXPECT_EQ(audit.tabulation.total, domain.size());
  // Fallback reports come from the live checkers themselves.
  EXPECT_EQ(audit.soundness.progress.status, CheckStatus::kDeadlineExceeded);
  EXPECT_FALSE(audit.soundness.sound);
}

// ---------------------------------------------------------------------------
// Spec validation

TEST(AuditSpecTest, ValidatesMechanism2AndAllow2) {
  CheckJobSpec spec = AuditSpec(1);
  spec.mechanism2 = "warp-drive";
  const JobResult bad_mech = ExecuteJob(spec);
  EXPECT_EQ(bad_mech.status, JobStatus::kInvalid);
  EXPECT_NE(bad_mech.error.find("mechanism2"), std::string::npos);

  spec = AuditSpec(1);
  spec.allow2 = VarSet{5};  // out of range for two inputs
  const JobResult bad_allow = ExecuteJob(spec);
  EXPECT_EQ(bad_allow.status, JobStatus::kInvalid);
  EXPECT_NE(bad_allow.error.find("allow2"), std::string::npos);
}

TEST(AuditSpecTest, CheckerKindRoundTrips) {
  EXPECT_EQ(CheckerKindName(CheckerKind::kAudit), "audit");
  EXPECT_EQ(ParseCheckerKind("audit"), CheckerKind::kAudit);
}

}  // namespace
}  // namespace secpol
