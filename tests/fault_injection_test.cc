// Differential fault-injection suite: every checker, every fault kind,
// serial and parallel.
//
// Contract under test (the graceful-degradation half of the robustness
// runtime): injected faults never crash or hang a checker — a throwing
// mechanism yields a structured kAborted report; a deterministic
// wrong-value / fuel-exhaustion fault is just a different mechanism, so the
// run completes and the serial ≡ parallel determinism contract still holds
// on the *faulty* mechanism; slow evaluation and retried transient faults
// change nothing at all — the report is byte-identical to the fault-free
// serial baseline.

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/channels/timing.h"
#include "src/mechanism/completeness.h"
#include "src/mechanism/fault.h"
#include "src/mechanism/integrity.h"
#include "src/mechanism/maximal.h"
#include "src/mechanism/policy_compare.h"
#include "src/mechanism/soundness.h"

namespace secpol {
namespace {

constexpr int kThreadCounts[] = {1, 2, 7};

InputDomain TestDomain() { return InputDomain::Range(2, 0, 2); }  // 9 points

AllowPolicy FirstCoordinatePolicy() {
  VarSet allowed;
  allowed.Insert(0);
  return AllowPolicy(2, allowed);
}

// Base mechanism: releases the first coordinate — sound for allow(0),
// information-preserving for allow(0), and with input-dependent timing so
// the leak checker has something to measure.
std::shared_ptr<const ProtectionMechanism> BaseMechanism() {
  return std::make_shared<FunctionMechanism>("base", 2, [](InputView input) {
    return Outcome::Val(input[0], static_cast<StepCount>(input[0]) + 1);
  });
}

std::shared_ptr<const ProtectionMechanism> WithFaults(const std::string& spec_text) {
  auto specs = ParseFaultSpecs(spec_text);
  EXPECT_TRUE(specs.ok()) << spec_text;
  return std::make_shared<FaultInjectingMechanism>(BaseMechanism(), TestDomain(),
                                                   std::move(specs).value());
}

// A checker run collapsed to a comparable string plus its structured status.
struct RunResult {
  std::string rendering;
  CheckStatus status = CheckStatus::kCompleted;
  std::string message;
};

using CheckerFn =
    std::function<RunResult(const ProtectionMechanism&, const CheckOptions&)>;

struct CheckerCase {
  std::string name;
  CheckerFn run;
};

std::vector<CheckerCase> MechanismCheckers() {
  std::vector<CheckerCase> checkers;
  checkers.push_back({"soundness", [](const ProtectionMechanism& m, const CheckOptions& o) {
                        const SoundnessReport r = CheckSoundness(
                            m, FirstCoordinatePolicy(), TestDomain(),
                            Observability::kValueOnly, o);
                        return RunResult{r.ToString(), r.progress.status,
                                         r.progress.message};
                      }});
  checkers.push_back({"integrity", [](const ProtectionMechanism& m, const CheckOptions& o) {
                        const IntegrityReport r = CheckInformationPreservation(
                            m, FirstCoordinatePolicy(), TestDomain(),
                            Observability::kValueOnly, o);
                        return RunResult{r.ToString(), r.progress.status,
                                         r.progress.message};
                      }});
  checkers.push_back(
      {"completeness", [](const ProtectionMechanism& m, const CheckOptions& o) {
         const CompletenessStats r =
             CompareCompleteness(m, PlugMechanism(2), TestDomain(), o);
         return RunResult{r.ToString(), r.progress.status, r.progress.message};
       }});
  checkers.push_back({"maximal", [](const ProtectionMechanism& m, const CheckOptions& o) {
                        const MaximalSynthesis r = SynthesizeMaximalMechanism(
                            m, FirstCoordinatePolicy(), TestDomain(),
                            Observability::kValueOnly, o);
                        std::string rendering =
                            std::to_string(r.inputs) + " inputs, " +
                            std::to_string(r.policy_classes) + " classes, " +
                            std::to_string(r.released_classes) + " released, table " +
                            (r.mechanism ? std::to_string(r.mechanism->table_size())
                                         : "null");
                        return RunResult{std::move(rendering), r.progress.status,
                                         r.progress.message};
                      }});
  checkers.push_back({"timing-leak", [](const ProtectionMechanism& m, const CheckOptions& o) {
                        const LeakReport r =
                            MeasureLeak(m, FirstCoordinatePolicy(), TestDomain(),
                                        Observability::kValueAndTime, o);
                        return RunResult{r.ToString(), r.progress.status,
                                         r.progress.message};
                      }});
  return checkers;
}

// policy_compare checks policies, not mechanisms; it gets its faults through
// FaultInjectingPolicy instead.
RunResult RunPolicyCompare(const std::string& spec_text, const CheckOptions& options) {
  auto specs = ParseFaultSpecs(spec_text);
  EXPECT_TRUE(specs.ok()) << spec_text;
  const FaultInjectingPolicy faulty_p(
      std::make_shared<AllowPolicy>(FirstCoordinatePolicy()), TestDomain(),
      std::move(specs).value());
  const AllowPolicy q = AllowPolicy::AllowAll(2);
  const PolicyCompareReport r = ComparePolicyDisclosure(faulty_p, q, TestDomain(), options);
  return RunResult{r.ToString(), r.progress.status, r.progress.message};
}

// ---------------------------------------------------------------------------

TEST(FaultDifferentialTest, PersistentThrowAbortsEveryChecker) {
  for (const CheckerCase& checker : MechanismCheckers()) {
    for (int threads : kThreadCounts) {
      const auto faulty = WithFaults("throw@4");
      const RunResult result = checker.run(*faulty, CheckOptions::Threads(threads));
      EXPECT_EQ(result.status, CheckStatus::kAborted)
          << checker.name << " threads=" << threads << ": " << result.rendering;
      EXPECT_NE(result.message.find("injected fault"), std::string::npos)
          << checker.name << " threads=" << threads;
    }
  }
  for (int threads : kThreadCounts) {
    const RunResult result = RunPolicyCompare("throw@4", CheckOptions::Threads(threads));
    EXPECT_EQ(result.status, CheckStatus::kAborted) << "policy_compare threads=" << threads;
    EXPECT_NE(result.message.find("injected fault"), std::string::npos);
  }
}

TEST(FaultDifferentialTest, FuelExhaustionCompletesAndMatchesSerial) {
  // A deterministic fuel fault is just a different (still deterministic)
  // mechanism: the sweep completes and parallel runs reproduce the serial
  // report on the same faulty mechanism byte for byte.
  for (const CheckerCase& checker : MechanismCheckers()) {
    const RunResult serial =
        checker.run(*WithFaults("fuel@4"), CheckOptions::Serial());
    ASSERT_EQ(serial.status, CheckStatus::kCompleted) << checker.name;
    for (int threads : kThreadCounts) {
      const RunResult parallel =
          checker.run(*WithFaults("fuel@4"), CheckOptions::Threads(threads));
      EXPECT_EQ(parallel.status, CheckStatus::kCompleted)
          << checker.name << " threads=" << threads;
      EXPECT_EQ(parallel.rendering, serial.rendering)
          << checker.name << " threads=" << threads;
    }
  }
}

TEST(FaultDifferentialTest, WrongValueCompletesAndMatchesSerial) {
  for (const CheckerCase& checker : MechanismCheckers()) {
    const RunResult serial =
        checker.run(*WithFaults("wrong@2"), CheckOptions::Serial());
    ASSERT_EQ(serial.status, CheckStatus::kCompleted) << checker.name;
    for (int threads : kThreadCounts) {
      const RunResult parallel =
          checker.run(*WithFaults("wrong@2"), CheckOptions::Threads(threads));
      EXPECT_EQ(parallel.status, CheckStatus::kCompleted)
          << checker.name << " threads=" << threads;
      EXPECT_EQ(parallel.rendering, serial.rendering)
          << checker.name << " threads=" << threads;
    }
  }
  for (int threads : kThreadCounts) {
    const RunResult serial = RunPolicyCompare("wrong@2", CheckOptions::Serial());
    const RunResult parallel = RunPolicyCompare("wrong@2", CheckOptions::Threads(threads));
    EXPECT_EQ(parallel.status, CheckStatus::kCompleted) << threads;
    EXPECT_EQ(parallel.rendering, serial.rendering) << threads;
  }
}

TEST(FaultDifferentialTest, WrongValueIsCaughtAsUnsoundness) {
  // Sanity that the injected corruption is visible, not silently absorbed:
  // rank 2 = (0, 2) gets value 0^1 = 1, diverging from (0, 0) and (0, 1)
  // inside the input[0] = 0 policy class.
  const auto faulty = WithFaults("wrong@2");
  const SoundnessReport report =
      CheckSoundness(*faulty, FirstCoordinatePolicy(), TestDomain(),
                     Observability::kValueOnly, CheckOptions::Serial());
  EXPECT_EQ(report.progress.status, CheckStatus::kCompleted);
  EXPECT_FALSE(report.sound);
  ASSERT_TRUE(report.counterexample.has_value());
  EXPECT_EQ(report.counterexample->input_b, (Input{0, 2}));
}

TEST(FaultDifferentialTest, SlowEvalMatchesFaultFreeBaseline) {
  // Slowness is pure wall time: the report must equal the fault-free serial
  // baseline exactly, at every thread count.
  for (const CheckerCase& checker : MechanismCheckers()) {
    const RunResult baseline =
        checker.run(*BaseMechanism(), CheckOptions::Serial());
    ASSERT_EQ(baseline.status, CheckStatus::kCompleted) << checker.name;
    for (int threads : kThreadCounts) {
      const RunResult slow = checker.run(*WithFaults("slow~1/2:11u100"),
                                         CheckOptions::Threads(threads));
      EXPECT_EQ(slow.status, CheckStatus::kCompleted)
          << checker.name << " threads=" << threads;
      EXPECT_EQ(slow.rendering, baseline.rendering)
          << checker.name << " threads=" << threads;
    }
  }
  for (int threads : kThreadCounts) {
    const PolicyCompareReport baseline = ComparePolicyDisclosure(
        FirstCoordinatePolicy(), AllowPolicy::AllowAll(2), TestDomain(),
        CheckOptions::Serial());
    const RunResult slow = RunPolicyCompare("slow~1/2:11u100", CheckOptions::Threads(threads));
    EXPECT_EQ(slow.status, CheckStatus::kCompleted) << threads;
    EXPECT_EQ(slow.rendering, baseline.ToString()) << threads;
  }
}

TEST(FaultDifferentialTest, TransientFaultWithRetryMatchesFaultFreeBaseline) {
  // A transient fault wrapped in one retry is fully absorbed: the checker
  // sees the fault-free mechanism, so every report — including the first
  // witness on unsound variants — matches the fault-free serial baseline.
  for (const CheckerCase& checker : MechanismCheckers()) {
    const RunResult baseline =
        checker.run(*BaseMechanism(), CheckOptions::Serial());
    ASSERT_EQ(baseline.status, CheckStatus::kCompleted) << checker.name;
    for (int threads : kThreadCounts) {
      const RetryingMechanism retrying(WithFaults("throw!@4,throw!@7"),
                                       /*max_retries=*/1);
      const RunResult retried = checker.run(retrying, CheckOptions::Threads(threads));
      EXPECT_EQ(retried.status, CheckStatus::kCompleted)
          << checker.name << " threads=" << threads;
      EXPECT_EQ(retried.rendering, baseline.rendering)
          << checker.name << " threads=" << threads;
    }
  }
}

TEST(FaultDifferentialTest, UnretriedTransientFaultStillAborts) {
  // Without a retry wrapper a transient fault is as fatal as a persistent
  // one — the runtime never silently skips a grid point.
  for (int threads : kThreadCounts) {
    const auto faulty = WithFaults("throw!@4");
    const SoundnessReport report =
        CheckSoundness(*faulty, FirstCoordinatePolicy(), TestDomain(),
                       Observability::kValueOnly, CheckOptions::Threads(threads));
    EXPECT_EQ(report.progress.status, CheckStatus::kAborted) << threads;
    EXPECT_NE(report.progress.message.find("transient fault"), std::string::npos)
        << threads;
  }
}

TEST(FaultDifferentialTest, SeededFaultRatesAreReproducible) {
  // The same seeded spec fires at the same ranks in every run and at every
  // thread count — runs on the same spec are mutually byte-identical.
  for (const CheckerCase& checker : MechanismCheckers()) {
    const RunResult first =
        checker.run(*WithFaults("wrong~1/3:99"), CheckOptions::Serial());
    ASSERT_EQ(first.status, CheckStatus::kCompleted) << checker.name;
    for (int threads : kThreadCounts) {
      const RunResult again =
          checker.run(*WithFaults("wrong~1/3:99"), CheckOptions::Threads(threads));
      EXPECT_EQ(again.rendering, first.rendering)
          << checker.name << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace secpol
