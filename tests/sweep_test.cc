// Tests for the unified grid-sweep kernel (src/mechanism/sweep.h): plan
// selection, conflict-bound pruning, progress accounting, and the two
// robustness paths every checker inherits from it — a permanent fault
// escaping an exhausted retry budget, and an external-thread cancellation
// arriving mid-parallel-sweep.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/mechanism/check_options.h"
#include "src/mechanism/domain.h"
#include "src/mechanism/fault.h"
#include "src/mechanism/mechanism.h"
#include "src/mechanism/soundness.h"
#include "src/mechanism/sweep.h"
#include "src/policy/policy.h"

namespace secpol {
namespace {

// ---------------------------------------------------------------------------
// SweepPlan

TEST(SweepPlanTest, SerialIsOneShard) {
  const SweepPlan plan = SweepPlan::For(CheckOptions::Serial(), /*grid_size=*/1000);
  EXPECT_EQ(plan.threads, 1);
  EXPECT_EQ(plan.num_shards, 1u);
}

TEST(SweepPlanTest, ParallelMatchesShardsFor) {
  const SweepPlan plan = SweepPlan::For(CheckOptions::Threads(4), /*grid_size=*/1000);
  EXPECT_EQ(plan.threads, 4);
  EXPECT_EQ(plan.num_shards, CheckOptions::ShardsFor(4, 1000));
  EXPECT_GT(plan.num_shards, 1u);
}

TEST(SweepPlanTest, TinyGridNeverGetsMoreShardsThanPoints) {
  const SweepPlan plan = SweepPlan::For(CheckOptions::Threads(8), /*grid_size=*/3);
  EXPECT_LE(plan.num_shards, 3u);
}

// ---------------------------------------------------------------------------
// ConflictBound

TEST(ConflictBoundTest, LowersMonotonically) {
  ConflictBound bound;
  EXPECT_FALSE(bound.Excludes(UINT64_MAX - 1));
  bound.LowerTo(100);
  EXPECT_FALSE(bound.Excludes(100));
  EXPECT_TRUE(bound.Excludes(101));
  bound.LowerTo(500);  // raising is a no-op
  EXPECT_TRUE(bound.Excludes(101));
  bound.LowerTo(7);
  EXPECT_TRUE(bound.Excludes(8));
  EXPECT_FALSE(bound.Excludes(7));
}

// ---------------------------------------------------------------------------
// SweepGrid accounting

TEST(SweepGridTest, CountsEveryPointExactlyOnceAtAnyThreadCount) {
  const InputDomain domain = InputDomain::Range(2, 0, 9);  // 100 points
  for (int threads : {1, 2, 7}) {
    const CheckOptions options = CheckOptions::Threads(threads);
    const SweepPlan plan = SweepPlan::For(options, domain.size());
    std::vector<std::atomic<int>> seen(domain.size());
    const CheckProgress progress = SweepGrid(
        domain, options, plan, [&](std::uint64_t, std::uint64_t rank, InputView) -> bool {
          seen[rank].fetch_add(1, std::memory_order_relaxed);
          return true;
        });
    EXPECT_EQ(progress.status, CheckStatus::kCompleted) << threads;
    EXPECT_EQ(progress.evaluated, domain.size()) << threads;
    EXPECT_EQ(progress.total, domain.size()) << threads;
    for (std::uint64_t r = 0; r < domain.size(); ++r) {
      EXPECT_EQ(seen[r].load(), 1) << "rank " << r << " threads " << threads;
    }
  }
}

TEST(SweepGridTest, SerialVisitsRanksInCanonicalOrder) {
  const InputDomain domain = InputDomain::Range(2, -1, 2);
  const CheckOptions options = CheckOptions::Serial();
  std::vector<std::uint64_t> ranks;
  const CheckProgress progress =
      SweepGrid(domain, options, SweepPlan::For(options, domain.size()),
                [&](std::uint64_t shard, std::uint64_t rank, InputView) -> bool {
                  EXPECT_EQ(shard, 0u);
                  ranks.push_back(rank);
                  return true;
                });
  EXPECT_TRUE(progress.complete());
  ASSERT_EQ(ranks.size(), domain.size());
  for (std::uint64_t r = 0; r < ranks.size(); ++r) {
    EXPECT_EQ(ranks[r], r);
  }
}

TEST(SweepGridTest, PruneStopsShardWithoutCountingThePoint) {
  const InputDomain domain = InputDomain::Range(1, 0, 99);
  const CheckOptions options = CheckOptions::Serial();
  ConflictBound bound;
  bound.LowerTo(9);  // ranks 10.. are excluded
  const CheckProgress progress = SweepGrid(
      domain, options, SweepPlan::For(options, domain.size()),
      [&](std::uint64_t, std::uint64_t, InputView) -> bool { return true; },
      [&](std::uint64_t rank) { return bound.Excludes(rank); });
  EXPECT_TRUE(progress.complete());  // pruned shards still "completed"
  EXPECT_EQ(progress.evaluated, 10u);
}

TEST(SweepGridTest, ThrowingVisitAbortsWithMessage) {
  const InputDomain domain = InputDomain::Range(1, 0, 99);
  for (int threads : {1, 2, 7}) {
    const CheckOptions options = CheckOptions::Threads(threads);
    const CheckProgress progress =
        SweepGrid(domain, options, SweepPlan::For(options, domain.size()),
                  [&](std::uint64_t, std::uint64_t rank, InputView) -> bool {
                    if (rank == 42) {
                      throw std::runtime_error("boom at 42");
                    }
                    return true;
                  });
    EXPECT_EQ(progress.status, CheckStatus::kAborted) << threads;
    EXPECT_EQ(progress.message, "boom at 42") << threads;
    EXPECT_LT(progress.evaluated, domain.size()) << threads;
  }
}

// ---------------------------------------------------------------------------
// Retry budget exhaustion through the kernel
//
// A permanent fault is never absorbed by RetryingMechanism, so however large
// the retry budget, the checker built on the kernel must surface it as a
// structured kAborted report carrying the fault text — at any thread count.

TEST(SweepRetryTest, PermanentFaultEscapesRetryBudgetAsAbort) {
  const InputDomain domain = InputDomain::Range(2, 0, 9);
  const AllowPolicy policy = AllowPolicy::AllowAll(2);
  for (int threads : {1, 2, 7}) {
    auto inner = std::make_shared<FunctionMechanism>(
        "inner", 2, [](InputView input) { return Outcome::Val(input[0] + input[1], 1); });
    auto specs = ParseFaultSpecs("throw@37");
    ASSERT_TRUE(specs.ok());
    auto faulty = std::make_shared<FaultInjectingMechanism>(inner, domain, specs.value());
    const RetryingMechanism retrying(faulty, /*max_retries=*/5);

    const SoundnessReport report =
        CheckSoundness(retrying, policy, domain, Observability::kValueOnly,
                       CheckOptions::Threads(threads));
    EXPECT_EQ(report.progress.status, CheckStatus::kAborted) << threads;
    EXPECT_EQ(report.progress.message, "injected fault at rank 37") << threads;
    EXPECT_FALSE(report.sound) << threads;
    // Permanent faults bypass the retry loop entirely: one firing, no retries.
    EXPECT_EQ(faulty->faults_fired(), 1u) << threads;
    EXPECT_EQ(retrying.retries_used(), 0u) << threads;
  }
}

TEST(SweepRetryTest, TransientFaultBeyondBudgetEscapesAsAbort) {
  const InputDomain domain = InputDomain::Range(2, 0, 9);
  const AllowPolicy policy = AllowPolicy::AllowAll(2);
  for (int threads : {1, 2, 7}) {
    auto inner = std::make_shared<FunctionMechanism>(
        "inner", 2, [](InputView input) { return Outcome::Val(input[0], 1); });
    // Fires on the first three attempts at rank 37; one retry is not enough.
    auto specs = ParseFaultSpecs("throw!@37x3");
    ASSERT_TRUE(specs.ok());
    auto faulty = std::make_shared<FaultInjectingMechanism>(inner, domain, specs.value());
    const RetryingMechanism retrying(faulty, /*max_retries=*/1);

    const SoundnessReport report =
        CheckSoundness(retrying, policy, domain, Observability::kValueOnly,
                       CheckOptions::Threads(threads));
    EXPECT_EQ(report.progress.status, CheckStatus::kAborted) << threads;
    EXPECT_EQ(report.progress.message, "transient fault at rank 37") << threads;
    EXPECT_EQ(retrying.retries_used(), 1u) << threads;
  }
}

// ---------------------------------------------------------------------------
// External-thread cancellation mid-parallel-sweep
//
// Deterministic rendezvous: from the 25th evaluation onward the mechanism
// blocks until the cancel token is raised, and the external thread raises it
// only after watching the evaluation counter reach 25. So cancellation is
// guaranteed to arrive while worker threads are inside visit bodies, and the
// sweep is guaranteed not to complete first. The grid is sized so every
// blocked shard still has a poll ahead of it (PollGate polls on the first
// call and every 64th after; a shard can only block within its first ~32
// evaluations because the global counter plateaus once evaluations block).

TEST(SweepCancelTest, ExternalThreadCancelStopsParallelSweep) {
  const InputDomain domain = InputDomain::Range(1, 0, 9999);  // 10000 points
  const AllowPolicy policy = AllowPolicy::AllowAll(1);

  CheckOptions options = CheckOptions::Threads(7);
  CancelToken cancel = options.cancel;  // shared flag

  std::atomic<std::uint64_t> evaluations{0};
  const FunctionMechanism mechanism("blocker", 1, [&](InputView input) {
    if (evaluations.fetch_add(1, std::memory_order_relaxed) + 1 >= 25) {
      while (!cancel.Cancelled()) {
        std::this_thread::yield();
      }
    }
    return Outcome::Val(input[0], 1);
  });

  std::thread canceller([&] {
    while (evaluations.load(std::memory_order_relaxed) < 25) {
      std::this_thread::yield();
    }
    cancel.RequestCancel();
  });

  const SoundnessReport report =
      CheckSoundness(mechanism, policy, domain, Observability::kValueOnly, options);
  canceller.join();

  EXPECT_EQ(report.progress.status, CheckStatus::kAborted);
  EXPECT_EQ(report.progress.message, "cancelled");
  EXPECT_GE(report.progress.evaluated, 25u);
  EXPECT_LT(report.progress.evaluated, domain.size());
  EXPECT_FALSE(report.sound);  // fail closed: no verdict from a partial sweep
}

}  // namespace
}  // namespace secpol
