// Tests for the integrity dual — the paper's "operator function" question:
// does the output contain ALL the information it should?

#include <gtest/gtest.h>

#include "src/flowlang/lower.h"
#include "src/mechanism/integrity.h"
#include "src/mechanism/mechanism.h"
#include "src/policy/policy.h"
#include "src/policy/refinement.h"

namespace secpol {
namespace {

TEST(IntegrityTest, IdentityPreservesEverything) {
  const Program q = MustCompile("program q(x) { y = x; }");
  const ProgramAsMechanism m{Program(q)};
  const AllowPolicy required = AllowPolicy::AllowAll(1);
  const auto report = CheckInformationPreservation(m, required, InputDomain::Range(1, 0, 5),
                                                   Observability::kValueOnly);
  EXPECT_TRUE(report.preserved);
  EXPECT_EQ(report.required_classes, 6u);
}

TEST(IntegrityTest, LossyProgramConvicted) {
  // Q collapses x to x/2: inputs 0 and 1 become indistinguishable even
  // though the required policy demands x be recoverable.
  const Program q = MustCompile("program q(x) { y = x / 2; }");
  const ProgramAsMechanism m{Program(q)};
  const AllowPolicy required = AllowPolicy::AllowAll(1);
  const auto report = CheckInformationPreservation(m, required, InputDomain::Range(1, 0, 5),
                                                   Observability::kValueOnly);
  EXPECT_FALSE(report.preserved);
  ASSERT_TRUE(report.counterexample.has_value());
  EXPECT_NE(report.counterexample->input_a, report.counterexample->input_b);
  EXPECT_NE(report.ToString().find("INFORMATION LOST"), std::string::npos);
}

TEST(IntegrityTest, PreservationOnlyOfRequiredCoordinates) {
  // Q(x0, x1) = x0: preserves allow(0), loses allow(1), loses allow(0,1).
  const Program q = MustCompile("program q(a, b) { y = a; }");
  const ProgramAsMechanism m{Program(q)};
  const InputDomain domain = InputDomain::Range(2, 0, 2);

  EXPECT_TRUE(CheckInformationPreservation(m, AllowPolicy(2, VarSet{0}), domain,
                                           Observability::kValueOnly)
                  .preserved);
  EXPECT_FALSE(CheckInformationPreservation(m, AllowPolicy(2, VarSet{1}), domain,
                                            Observability::kValueOnly)
                   .preserved);
  EXPECT_FALSE(CheckInformationPreservation(m, AllowPolicy::AllowAll(2), domain,
                                            Observability::kValueOnly)
                   .preserved);
}

TEST(IntegrityTest, PlugPreservesOnlyTrivialPolicies) {
  const PlugMechanism plug(1);
  const InputDomain domain = InputDomain::Range(1, 0, 3);
  EXPECT_TRUE(CheckInformationPreservation(plug, AllowPolicy::AllowNone(1), domain,
                                           Observability::kValueOnly)
                  .preserved);
  EXPECT_FALSE(CheckInformationPreservation(plug, AllowPolicy::AllowAll(1), domain,
                                            Observability::kValueOnly)
                   .preserved);
}

TEST(IntegrityTest, TimeCanCarryTheRequiredInformation) {
  // The loop program: the VALUE loses x, but the STEP COUNT preserves it —
  // an integrity-flavoured restatement of the Observability Postulate.
  const Program q = MustCompile(
      "program loop(x) { locals c; c = x; while (c != 0) { c = c - 1; } y = 1; }");
  const ProgramAsMechanism m{Program(q)};
  const AllowPolicy required = AllowPolicy::AllowAll(1);
  const InputDomain domain = InputDomain::Range(1, 0, 4);

  EXPECT_FALSE(
      CheckInformationPreservation(m, required, domain, Observability::kValueOnly).preserved);
  EXPECT_TRUE(CheckInformationPreservation(m, required, domain, Observability::kValueAndTime)
                  .preserved);
}

TEST(IntegrityTest, AggregatePolicyPreservedBySumProgram) {
  // The sum program preserves exactly the aggregate: its output IS the sum.
  const Program q = MustCompile("program q(a, b) { y = a + b; }");
  const ProgramAsMechanism m{Program(q)};
  const AggregateSumPolicy required(2);
  const InputDomain domain = InputDomain::Range(2, 0, 3);
  EXPECT_TRUE(
      CheckInformationPreservation(m, required, domain, Observability::kValueOnly).preserved);

  // A projection loses the aggregate.
  const Program proj = MustCompile("program p(a, b) { y = a; }");
  const ProgramAsMechanism mp{Program(proj)};
  EXPECT_FALSE(
      CheckInformationPreservation(mp, required, domain, Observability::kValueOnly).preserved);
}

TEST(IntegrityTest, DualityWithSoundness) {
  // For Q(x) = x and allow-all: Q is simultaneously sound (reveals no more)
  // and preserving (reveals no less) — it transmits exactly the image.
  const Program q = MustCompile("program q(x) { y = x; }");
  const ProgramAsMechanism m{Program(q)};
  const AllowPolicy policy = AllowPolicy::AllowAll(1);
  const InputDomain domain = InputDomain::Range(1, 0, 4);
  EXPECT_TRUE(
      CheckInformationPreservation(m, policy, domain, Observability::kValueOnly).preserved);
  // (Soundness of identity for allow-all is covered in mechanism_test; the
  // two together say M computes a bijection of the image.)
}

}  // namespace
}  // namespace secpol
