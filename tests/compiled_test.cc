// Differential tests for the compiled surveillance fast path (DESIGN.md §15):
// RunCompiled / RunCompiledTraced / the block evaluator / the
// CompiledSurveillanceMechanism must be bit-identical to the reference
// SurveillanceMechanism on every observable — outcome kind, value, violation
// notice, step count, final labels, pc label, and the tracked footprint —
// across disciplines, timing modes, fuel boundaries, and whole job reports.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/corpus/generator.h"
#include "src/flowchart/bytecode.h"
#include "src/flowchart/interpreter.h"
#include "src/flowlang/lower.h"
#include "src/mechanism/domain.h"
#include "src/service/job.h"
#include "src/service/manifest.h"
#include "src/surveillance/compiled.h"
#include "src/surveillance/surveillance.h"
#include "src/util/json.h"
#include "src/util/strings.h"

namespace secpol {
namespace {

void ExpectSameOutcome(const Outcome& ref, const Outcome& got, const std::string& where) {
  EXPECT_EQ(ref.kind, got.kind) << where;
  EXPECT_EQ(ref.value, got.value) << where;
  EXPECT_EQ(ref.steps, got.steps) << where;
  EXPECT_EQ(ref.notice, got.notice) << where;
}

// Runs the reference and compiled mechanisms over the whole domain and
// compares every observable, including traces and tracked footprints.
void ExpectCompiledMatchesReference(const Program& program, VarSet allowed, TimingMode timing,
                                    LabelDiscipline discipline, const InputDomain& domain,
                                    StepCount fuel = kDefaultFuel) {
  const SurveillanceMechanism reference(program, allowed, timing, discipline, fuel);
  const CompiledSurveillance compiled =
      CompileSurveillance(program, allowed, timing, discipline, fuel);
  BcScratch scratch;
  domain.ForEach([&](InputView input) {
    const std::string where = program.name() + " " + LabelDisciplineName(discipline) + "/" +
                              TimingModeName(timing) + FormatInput(input);
    ExpectSameOutcome(reference.Run(input), RunCompiled(compiled, input, scratch), where);

    const SurveillanceTrace ref_trace = reference.RunTraced(input);
    const SurveillanceTrace got_trace = RunCompiledTraced(compiled, input);
    ExpectSameOutcome(ref_trace.outcome, got_trace.outcome, where + " (traced)");
    EXPECT_EQ(ref_trace.pc_label, got_trace.pc_label) << where;
    ASSERT_EQ(ref_trace.labels.size(), got_trace.labels.size()) << where;
    for (std::size_t v = 0; v < ref_trace.labels.size(); ++v) {
      EXPECT_EQ(ref_trace.labels[v], got_trace.labels[v]) << where << " var " << v;
    }

    const TrackedOutcome ref_tracked = reference.RunTracked(input);
    const TrackedOutcome got_tracked =
        CompiledSurveillanceMechanism(program, allowed, timing, discipline, fuel)
            .RunTracked(input);
    ExpectSameOutcome(ref_tracked.outcome, got_tracked.outcome, where + " (tracked)");
    EXPECT_EQ(ref_tracked.reads, got_tracked.reads) << where;
    EXPECT_EQ(ref_tracked.exact, got_tracked.exact) << where;
    EXPECT_EQ(ref_tracked.boxes, got_tracked.boxes) << where;
    EXPECT_EQ(ref_tracked.boxes_exact, got_tracked.boxes_exact) << where;
  });
}

// Programs chosen to exercise every instrumented construct: straight-line
// releases, implicit flows through branches, loops (step counts and the
// scoped-pc restore point), halts on both arms, and self-assignments (the
// high-water vs overwrite distinction).
const char* const kPrograms[] = {
    "program release(pub, sec) { y = pub; }",
    "program leak(pub, sec) { y = sec; }",
    "program implicit(pub, sec) { if (sec > 0) { y = 1; } else { y = 0; } }",
    "program loop(pub, sec) { locals c; c = pub; while (c > 0) { y = y + sec; c = c - 1; } }",
    "program twohalt(pub, sec) { if (pub == 0) { y = 7; halt; } y = sec; }",
    "program forget(pub, sec) { locals t; t = sec; t = pub; y = t; }",
};

TEST(CompiledSurveillanceTest, MatchesReferenceAcrossDisciplinesAndTimings) {
  const InputDomain domain = InputDomain::Uniform(2, {-1, 0, 1, 2});
  for (const char* text : kPrograms) {
    const Program program = MustCompile(text);
    for (const VarSet allowed : {VarSet::Empty(), VarSet::Singleton(0), VarSet::FirstN(2)}) {
      for (const TimingMode timing :
           {TimingMode::kTimeUnobservable, TimingMode::kTimeObservable}) {
        for (const LabelDiscipline discipline :
             {LabelDiscipline::kSurveillance, LabelDiscipline::kHighWater,
              LabelDiscipline::kNaiveScopedPc}) {
          ExpectCompiledMatchesReference(program, allowed, timing, discipline, domain);
        }
      }
    }
  }
}

TEST(CompiledSurveillanceTest, MatchesReferenceOnRandomCorpus) {
  CorpusConfig config;
  config.num_inputs = 3;
  const InputDomain domain = InputDomain::Uniform(3, {-1, 0, 2});
  for (std::uint64_t seed = 8100; seed < 8130; ++seed) {
    const Program program = Lower(GenerateProgram(config, seed, "cmp"));
    ExpectCompiledMatchesReference(program, VarSet::Singleton(0),
                                   TimingMode::kTimeUnobservable,
                                   LabelDiscipline::kSurveillance, domain);
    ExpectCompiledMatchesReference(program, VarSet::FirstN(2), TimingMode::kTimeObservable,
                                   LabelDiscipline::kHighWater, domain);
    ExpectCompiledMatchesReference(program, VarSet::Singleton(1),
                                   TimingMode::kTimeUnobservable,
                                   LabelDiscipline::kNaiveScopedPc, domain);
  }
}

TEST(CompiledSurveillanceTest, FuelBoundariesMatchReference) {
  const Program program = MustCompile(
      "program loop(pub, sec) { locals c; c = pub; while (c > 0) { y = y + sec; c = c - 1; } "
      "}");
  const InputDomain domain = InputDomain::Uniform(2, {0, 3, 7});
  const SurveillanceMechanism probe(program, VarSet::Singleton(0));
  const StepCount halting = probe.Run(Input{3, 1}).steps;
  for (const StepCount fuel :
       {StepCount{0}, StepCount{1}, halting - 1, halting, halting + 1}) {
    for (const LabelDiscipline discipline :
         {LabelDiscipline::kSurveillance, LabelDiscipline::kNaiveScopedPc}) {
      ExpectCompiledMatchesReference(program, VarSet::Singleton(0),
                                     TimingMode::kTimeUnobservable, discipline, domain, fuel);
    }
    ExpectCompiledMatchesReference(program, VarSet::Singleton(0),
                                   TimingMode::kTimeObservable,
                                   LabelDiscipline::kSurveillance, domain, fuel);
  }
}

TEST(CompiledSurveillanceTest, MPrimeAbortsBeforeTheTest) {
  // Testing on sec under M' with allow({pub}) must abort with the reference's
  // notice, steps, and footprint — before the branch is taken.
  const Program program =
      MustCompile("program implicit(pub, sec) { if (sec > 0) { y = 1; } else { y = 0; } }");
  const CompiledSurveillance compiled = CompileSurveillance(
      program, VarSet::Singleton(0), TimingMode::kTimeObservable);
  BcScratch scratch;
  const Outcome got = RunCompiled(compiled, Input{0, 5}, scratch);
  EXPECT_TRUE(got.IsViolation());
  EXPECT_EQ(got.notice, "test on disallowed data");
  const SurveillanceMechanism reference(program, VarSet::Singleton(0),
                                        TimingMode::kTimeObservable);
  ExpectSameOutcome(reference.Run(Input{0, 5}), got, "mprime abort");
}

TEST(CompiledSurveillanceTest, BlockEvaluatorMatchesPointRuns) {
  const Program program = MustCompile(
      "program loop(pub, sec) { locals c; c = pub; while (c > 0) { y = y + sec; c = c - 1; } "
      "}");
  const CompiledSurveillance compiled =
      CompileSurveillance(program, VarSet::Singleton(0));
  const InputDomain domain = InputDomain::Uniform(2, {-1, 0, 1, 2});

  // Build the SoA columns in rank order.
  std::vector<std::vector<Value>> columns(2);
  domain.ForEach([&](InputView input) {
    columns[0].push_back(input[0]);
    columns[1].push_back(input[1]);
  });
  const std::size_t total = columns[0].size();
  std::vector<Outcome> block(total);
  BcScratch scratch;
  RunCompiledBlock(compiled, columns, 0, total, scratch, block);

  std::size_t rank = 0;
  domain.ForEach([&](InputView input) {
    ExpectSameOutcome(RunCompiled(compiled, input, scratch), block[rank],
                      "rank " + std::to_string(rank));
    ++rank;
  });
}

TEST(CompiledSurveillanceTest, MechanismNameAndArityMatchReference) {
  const Program program = MustCompile("program p(pub, sec) { y = pub; }");
  for (const LabelDiscipline discipline :
       {LabelDiscipline::kSurveillance, LabelDiscipline::kHighWater}) {
    const SurveillanceMechanism reference(program, VarSet::Singleton(0),
                                          TimingMode::kTimeUnobservable, discipline);
    const CompiledSurveillanceMechanism compiled(program, VarSet::Singleton(0),
                                                 TimingMode::kTimeUnobservable, discipline);
    EXPECT_EQ(reference.name(), compiled.name());
    EXPECT_EQ(reference.num_inputs(), compiled.num_inputs());
  }
}

// --------------------------------------------------------------------------
// Fail-closed behaviour (typed errors; never NDEBUG-stripped).

TEST(CompiledSurveillanceTest, RejectsOutOfRangeAllowSet) {
  const Program program = MustCompile("program p(a) { y = a; }");
  EXPECT_THROW(CompileSurveillance(program, VarSet::Singleton(3)), ArityError);
}

TEST(CompiledSurveillanceTest, RejectsWrongArityInput) {
  const Program program = MustCompile("program p(a, b) { y = a; }");
  const CompiledSurveillance compiled = CompileSurveillance(program, VarSet::Singleton(0));
  BcScratch scratch;
  EXPECT_THROW(RunCompiled(compiled, Input{1}, scratch), ArityError);
  EXPECT_THROW(RunCompiledTraced(compiled, Input{1, 2, 3}), ArityError);
  std::vector<Outcome> out(1);
  EXPECT_THROW(
      RunCompiledBlock(compiled, std::vector<std::vector<Value>>(1), 0, 1, scratch, out),
      ArityError);
}

// --------------------------------------------------------------------------
// Job-level identity: the "compiled" exec mode produces byte-identical
// reports for every checker at every thread count, and contributes a cache
// sub-key (so compiled bytes can never be served to interpreted callers).

CheckJobSpec CompiledJobSpec(const std::string& mechanism) {
  CheckJobSpec spec;
  spec.id = "exec-mode-test";
  spec.program_text =
      "program p(pub, sec) { locals c; c = pub; while (c > 0) { y = y + sec; c = c - 1; } }";
  spec.allow = VarSet::Singleton(0);
  spec.allow2 = VarSet::FirstN(2);
  spec.mechanism = mechanism;
  spec.mechanism2 = "bare";
  spec.grid_lo = -1;
  spec.grid_hi = 2;
  return spec;
}

TEST(ExecModeJobTest, CompiledReportsAreByteIdenticalAcrossCheckersAndThreads) {
  for (const CheckerKind checker :
       {CheckerKind::kSoundness, CheckerKind::kIntegrity, CheckerKind::kCompleteness,
        CheckerKind::kMaximal, CheckerKind::kPolicyCompare, CheckerKind::kLeak,
        CheckerKind::kAudit}) {
    for (const char* mechanism : {"surveillance", "mprime", "highwater", "table"}) {
      for (const int threads : {1, 2, 7}) {
        CheckJobSpec interpreted = CompiledJobSpec(mechanism);
        interpreted.checker = checker;
        interpreted.num_threads = threads;
        CheckJobSpec compiled = interpreted;
        compiled.exec_mode = "compiled";

        const JobResult ref = ExecuteJob(interpreted);
        const JobResult got = ExecuteJob(compiled);
        const std::string where = CheckerKindName(checker) + "/" + mechanism + "/t" +
                                  std::to_string(threads);
        ASSERT_EQ(ref.status, JobStatus::kCompleted) << where;
        ASSERT_EQ(got.status, JobStatus::kCompleted) << where;
        EXPECT_EQ(ref.report, got.report) << where;
        EXPECT_EQ(ref.exit_code, got.exit_code) << where;
        EXPECT_EQ(ref.evaluated, got.evaluated) << where;
      }
    }
  }
}

TEST(ExecModeJobTest, CompiledModeContributesACacheSubKey) {
  CheckJobSpec interpreted = CompiledJobSpec("surveillance");
  CheckJobSpec compiled = interpreted;
  compiled.exec_mode = "compiled";
  const Result<PreparedJob> a = PrepareJob(interpreted);
  const Result<PreparedJob> b = PrepareJob(compiled);
  ASSERT_TRUE(a.ok()) << a.error().ToString();
  ASSERT_TRUE(b.ok()) << b.error().ToString();
  EXPECT_NE(a.value().key, b.value().key);
}

TEST(ExecModeJobTest, InvalidExecModeIsRejected) {
  CheckJobSpec spec = CompiledJobSpec("surveillance");
  spec.exec_mode = "jit";
  const Result<PreparedJob> prepared = PrepareJob(spec);
  ASSERT_FALSE(prepared.ok());
  EXPECT_NE(prepared.error().ToString().find("exec_mode"), std::string::npos);
}

TEST(ExecModeJobTest, ManifestRoundTripsExecModeAndRejectsBadValues) {
  CheckJobSpec spec = CompiledJobSpec("surveillance");
  spec.exec_mode = "compiled";
  const Json rendered = CheckJobSpecToJson(spec);
  const Json* exec_mode = rendered.Find("exec_mode");
  ASSERT_NE(exec_mode, nullptr);
  EXPECT_EQ(exec_mode->AsString(), "compiled");

  // The default is omitted, keeping pre-exec-mode manifest bytes intact.
  CheckJobSpec defaulted = CompiledJobSpec("surveillance");
  EXPECT_EQ(CheckJobSpecToJson(defaulted).Find("exec_mode"), nullptr);

  const std::string manifest = R"({"jobs": [{"id": "j", "checker": "soundness",
    "program": "program p(a) { y = a; }", "allow": [0], "exec_mode": "jit"}]})";
  const Result<BatchManifest> parsed = ParseBatchManifest(manifest);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().ToString().find("exec_mode"), std::string::npos);

  const std::string good = R"({"jobs": [{"id": "j", "checker": "soundness",
    "program": "program p(a) { y = a; }", "allow": [0], "exec_mode": "compiled"}]})";
  const Result<BatchManifest> ok = ParseBatchManifest(good);
  ASSERT_TRUE(ok.ok()) << ok.error().ToString();
  ASSERT_EQ(ok.value().jobs.size(), 1u);
  EXPECT_EQ(ok.value().jobs[0].exec_mode, "compiled");
}

}  // namespace
}  // namespace secpol
