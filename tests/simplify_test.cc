// Tests for the expression simplifier: identities, folding, and the
// semantics-preservation property over random expressions.

#include <gtest/gtest.h>

#include "src/expr/expr.h"
#include "src/expr/simplify.h"
#include "src/util/rng.h"

namespace secpol {
namespace {

TEST(SimplifyTest, ConstantFolding) {
  EXPECT_TRUE(Simplify(Add(C(2), C(3))).StructurallyEquals(C(5)));
  EXPECT_TRUE(Simplify(Mul(Add(C(1), C(1)), C(4))).StructurallyEquals(C(8)));
  EXPECT_TRUE(Simplify(Expr::Unary(UnaryOp::kNeg, C(7))).StructurallyEquals(C(-7)));
  // Total semantics fold too.
  EXPECT_TRUE(Simplify(Expr::Binary(BinaryOp::kDiv, C(5), C(0))).StructurallyEquals(C(0)));
}

TEST(SimplifyTest, AdditiveIdentities) {
  EXPECT_TRUE(Simplify(Add(V(0), C(0))).StructurallyEquals(V(0)));
  EXPECT_TRUE(Simplify(Add(C(0), V(0))).StructurallyEquals(V(0)));
  EXPECT_TRUE(Simplify(Sub(V(0), C(0))).StructurallyEquals(V(0)));
  EXPECT_TRUE(Simplify(Sub(V(3), V(3))).StructurallyEquals(C(0)));
}

TEST(SimplifyTest, MultiplicativeIdentities) {
  EXPECT_TRUE(Simplify(Mul(V(0), C(1))).StructurallyEquals(V(0)));
  EXPECT_TRUE(Simplify(Mul(V(0), C(0))).StructurallyEquals(C(0)));
  EXPECT_TRUE(Simplify(Expr::Binary(BinaryOp::kDiv, V(0), C(1))).StructurallyEquals(V(0)));
  EXPECT_TRUE(Simplify(Expr::Binary(BinaryOp::kMod, V(0), C(1))).StructurallyEquals(C(0)));
}

TEST(SimplifyTest, BitwiseIdentities) {
  EXPECT_TRUE(
      Simplify(Expr::Binary(BinaryOp::kBitOr, V(0), C(0))).StructurallyEquals(V(0)));
  EXPECT_TRUE(
      Simplify(Expr::Binary(BinaryOp::kBitAnd, V(0), C(0))).StructurallyEquals(C(0)));
  EXPECT_TRUE(
      Simplify(Expr::Binary(BinaryOp::kBitAnd, V(0), C(-1))).StructurallyEquals(V(0)));
  EXPECT_TRUE(
      Simplify(Expr::Binary(BinaryOp::kBitXor, V(2), V(2))).StructurallyEquals(C(0)));
}

TEST(SimplifyTest, ComparisonOfEqualOperands) {
  EXPECT_TRUE(Simplify(Eq(V(1), V(1))).StructurallyEquals(C(1)));
  EXPECT_TRUE(Simplify(Ne(V(1), V(1))).StructurallyEquals(C(0)));
  EXPECT_TRUE(Simplify(Lt(V(1), V(1))).StructurallyEquals(C(0)));
  EXPECT_TRUE(
      Simplify(Expr::Binary(BinaryOp::kMin, V(1), V(1))).StructurallyEquals(V(1)));
}

TEST(SimplifyTest, LogicalShortCircuits) {
  EXPECT_TRUE(Simplify(Expr::Binary(BinaryOp::kAnd, C(0), V(0))).StructurallyEquals(C(0)));
  EXPECT_TRUE(Simplify(Expr::Binary(BinaryOp::kOr, C(3), V(0))).StructurallyEquals(C(1)));
  // true && x normalizes to a truth test, not x itself (x may not be 0/1).
  const Expr normalized = Simplify(Expr::Binary(BinaryOp::kAnd, C(1), V(0)));
  EXPECT_EQ(normalized.Eval(std::vector<Value>{5}), 1);
  EXPECT_EQ(normalized.Eval(std::vector<Value>{0}), 0);
}

TEST(SimplifyTest, SelectRules) {
  EXPECT_TRUE(Simplify(Expr::Select(C(1), V(0), V(1))).StructurallyEquals(V(0)));
  EXPECT_TRUE(Simplify(Expr::Select(C(0), V(0), V(1))).StructurallyEquals(V(1)));
  // Example 7's rule: equal arms drop the condition AND its dependencies.
  const Expr collapsed = Simplify(Expr::Select(V(9), Add(V(0), C(0)), V(0)));
  EXPECT_TRUE(collapsed.StructurallyEquals(V(0)));
  EXPECT_FALSE(collapsed.FreeVars().Contains(9));
}

TEST(SimplifyTest, DoubleNegation) {
  const Expr e = Expr::Unary(UnaryOp::kNeg, Expr::Unary(UnaryOp::kNeg, V(2)));
  EXPECT_TRUE(Simplify(e).StructurallyEquals(V(2)));
}

TEST(SimplifyTest, NestedSimplificationCascades) {
  // select(c, x*1 + 0, x) -> select(c, x, x) -> x.
  const Expr e = Expr::Select(V(1), Add(Mul(V(0), C(1)), C(0)), V(0));
  EXPECT_TRUE(Simplify(e).StructurallyEquals(V(0)));
}

// --- Property: semantics preserved, size never grows ---

Expr RandomExpr(Rng& rng, int depth, int num_vars) {
  if (depth <= 0 || rng.Chance(30, 100)) {
    if (rng.Chance(50, 100)) {
      return Expr::Const(rng.NextInRange(-4, 4));
    }
    return Expr::Var(static_cast<int>(rng.NextBelow(static_cast<std::uint64_t>(num_vars))));
  }
  const int shape = static_cast<int>(rng.NextBelow(10));
  if (shape == 0) {
    return Expr::Unary(rng.Chance(50, 100) ? UnaryOp::kNeg : UnaryOp::kNot,
                       RandomExpr(rng, depth - 1, num_vars));
  }
  if (shape == 1) {
    return Expr::Select(RandomExpr(rng, depth - 1, num_vars),
                        RandomExpr(rng, depth - 1, num_vars),
                        RandomExpr(rng, depth - 1, num_vars));
  }
  static constexpr BinaryOp kOps[] = {
      BinaryOp::kAdd,    BinaryOp::kSub,   BinaryOp::kMul,    BinaryOp::kDiv,
      BinaryOp::kMod,    BinaryOp::kMin,   BinaryOp::kMax,    BinaryOp::kBitAnd,
      BinaryOp::kBitOr,  BinaryOp::kBitXor, BinaryOp::kEq,    BinaryOp::kNe,
      BinaryOp::kLt,     BinaryOp::kLe,    BinaryOp::kGt,     BinaryOp::kGe,
      BinaryOp::kAnd,    BinaryOp::kOr,
  };
  return Expr::Binary(kOps[rng.NextBelow(std::size(kOps))], RandomExpr(rng, depth - 1, num_vars),
                      RandomExpr(rng, depth - 1, num_vars));
}

class SimplifyPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplifyPropertyTest, PreservesSemanticsAndNeverGrows) {
  Rng rng(GetParam());
  constexpr int kNumVars = 4;
  for (int trial = 0; trial < 50; ++trial) {
    const Expr original = RandomExpr(rng, 4, kNumVars);
    const Expr simplified = Simplify(original);
    EXPECT_LE(simplified.NodeCount(), original.NodeCount());
    // Evaluate over a sample of environments, including edge values.
    for (int env_trial = 0; env_trial < 20; ++env_trial) {
      std::vector<Value> env(kNumVars);
      for (Value& v : env) {
        v = env_trial < 3 ? (env_trial - 1) : rng.NextInRange(-100, 100);
      }
      ASSERT_EQ(original.Eval(env), simplified.Eval(env))
          << original.ToString() << "  =/=>  " << simplified.ToString();
    }
    // Simplification never invents dependencies.
    EXPECT_TRUE(simplified.FreeVars().SubsetOf(original.FreeVars()));
    // Idempotence.
    EXPECT_TRUE(Simplify(simplified).StructurallyEquals(simplified));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifyPropertyTest,
                         ::testing::Range<std::uint64_t>(100, 130));

}  // namespace
}  // namespace secpol
