// Tests for the Section 4/5 program transforms and the transform advisor:
// Examples 7, 8, and 9, loop unrolling, tail duplication, and the
// functional-equivalence audits.

#include <gtest/gtest.h>

#include "src/flowchart/interpreter.h"
#include "src/flowlang/lower.h"
#include "src/flowlang/parser.h"
#include "src/mechanism/completeness.h"
#include "src/mechanism/soundness.h"
#include "src/policy/policy.h"
#include "src/surveillance/surveillance.h"
#include "src/transforms/advisor.h"
#include "src/transforms/transforms.h"
#include "src/util/strings.h"

namespace secpol {
namespace {

const std::vector<Value> kGrid = {-2, -1, 0, 1, 2};

bool Equivalent(const SourceProgram& a, const SourceProgram& b) {
  return FunctionallyEquivalentOnGrid(Lower(a), Lower(b), kGrid);
}

TEST(IfConvertibleTest, RecognizesFlatAssignArms) {
  const SourceProgram p = MustParseProgram(
      "program p(x, a, b) { if (x == 0) { y = a; } else { y = b; } }");
  EXPECT_TRUE(IfConvertible(p.body[0]));
}

TEST(IfConvertibleTest, RejectsNestedControlFlow) {
  const SourceProgram p = MustParseProgram(
      "program p(x) { if (x == 0) { if (x == 1) { y = 1; } } else { y = 2; } }");
  EXPECT_FALSE(IfConvertible(p.body[0]));
}

TEST(IfConvertibleTest, RejectsArmReadingAssignedVariable) {
  // The else arm reads r which the then arm assigns: naive parallel select
  // emission would be wrong, so the transform must refuse.
  const SourceProgram p = MustParseProgram(
      "program p(x) { locals r; if (x == 0) { r = 1; y = r + 1; } else { y = 2; } }");
  EXPECT_FALSE(IfConvertible(p.body[0]));
}

TEST(IfConvertibleTest, RejectsDoubleAssignmentInArm) {
  const SourceProgram p = MustParseProgram(
      "program p(x) { if (x == 0) { y = 1; y = 2; } else { y = 3; } }");
  EXPECT_FALSE(IfConvertible(p.body[0]));
}

TEST(IfConvertibleTest, SelfReadIsConvertible) {
  // y = y + 1 reads only its own pre-branch value: fine.
  const SourceProgram p = MustParseProgram(
      "program p(x) { if (x == 0) { y = y + 1; } else { y = y + 2; } }");
  EXPECT_TRUE(IfConvertible(p.body[0]));
  bool changed = false;
  const SourceProgram q = ApplyIfToSelect(p, {}, &changed);
  EXPECT_TRUE(changed);
  EXPECT_TRUE(Equivalent(p, q));
}

TEST(IfConvertibleTest, CrossReadsOrderedCorrectly) {
  // r reads y's pre-branch value while y is itself assigned: the select for
  // r must be emitted before y's overwrite.
  const SourceProgram p = MustParseProgram(
      "program p(x) { locals r; y = 5; if (x == 0) { r = y; y = 1; } else { y = 2; } "
      "y = y + r; }");
  // then-arm: r = y; y = 1 — r reads y before the arm assigns y, which
  // IsFlatAssignBlock permits (y not yet assigned at the read).
  ASSERT_TRUE(IfConvertible(p.body[1]));
  bool changed = false;
  const SourceProgram q = ApplyIfToSelect(p, {}, &changed);
  ASSERT_TRUE(changed);
  EXPECT_TRUE(Equivalent(p, q));
}

TEST(IfConvertibleTest, SwapCycleIsRejected) {
  // Across arms, a reads b and b reads a: no emission order reads only
  // pre-branch values.
  const SourceProgram p = MustParseProgram(
      "program p(x) { locals a, b; a = 1; b = 2; "
      "if (x == 0) { a = b; } else { b = a; } y = a * 10 + b; }");
  EXPECT_FALSE(IfConvertible(p.body[2]));
}

TEST(IfToSelectTest, PreservesSemantics) {
  const SourceProgram p = MustParseProgram(
      "program p(x, a, b) { locals r; if (x > 0) { y = a; r = 1; } else { y = b; } y = y + r; }");
  bool changed = false;
  const SourceProgram q = ApplyIfToSelect(p, {}, &changed);
  EXPECT_TRUE(changed);
  EXPECT_TRUE(Equivalent(p, q));
}

TEST(IfToSelectTest, UnassignedArmKeepsOldValue) {
  const SourceProgram p = MustParseProgram(
      "program p(x) { locals r; r = 9; if (x == 0) { r = 1; } else { y = 2; } y = y + r; }");
  const SourceProgram q = ApplyIfToSelect(p, {}, nullptr);
  EXPECT_TRUE(Equivalent(p, q));
}

TEST(IfToSelectTest, RecursesIntoLoopsAndIfs) {
  const SourceProgram p = MustParseProgram(R"(
    program p(x, n) {
      locals c;
      c = 2;
      while (c != 0) {
        if (x == 0) { y = y + 1; } else { y = y + 2; }
        c = c - 1;
      }
    })");
  bool changed = false;
  const SourceProgram q = ApplyIfToSelect(p, {}, &changed);
  EXPECT_TRUE(changed);
  EXPECT_TRUE(Equivalent(p, q));
  // The loop body's If is gone.
  EXPECT_EQ(q.ToString().find("if ("), std::string::npos);
}

// --- Example 7: the transform reaches the maximal mechanism ---

SourceProgram Example7Program() {
  // if (x1 == 1) r = 1 else r = 2; if (r == 1) y = 1 else y = 1.
  return MustParseProgram(R"(
    program ex7(x1, x2) {
      locals r;
      if (x1 == 1) { r = 1; } else { r = 2; }
      if (r == 1) { y = 1; } else { y = 1; }
    })");
}

TEST(Example7, PlainSurveillanceAlwaysViolates) {
  const SurveillanceMechanism ms = MakeSurveillanceM(Lower(Example7Program()), VarSet{1});
  InputDomain::Range(2, 0, 2).ForEach(
      [&](InputView input) { EXPECT_TRUE(ms.Run(input).IsViolation()); });
}

TEST(Example7, TransformedSurveillanceIsMaximal) {
  bool changed = false;
  const SourceProgram q_prime = ApplyIfToSelect(Example7Program(), {}, &changed);
  ASSERT_TRUE(changed);
  ASSERT_TRUE(Equivalent(Example7Program(), q_prime));

  const SurveillanceMechanism ms = MakeSurveillanceM(Lower(q_prime), VarSet{1});
  // "The surveillance protection mechanism for Q' and I = allow(2) always
  // gives the output 1; clearly it is maximal."
  InputDomain::Range(2, 0, 2).ForEach([&](InputView input) {
    const Outcome o = ms.Run(input);
    EXPECT_TRUE(o.IsValue());
    EXPECT_EQ(o.value, 1);
  });
  // Soundness is not sacrificed.
  EXPECT_TRUE(CheckSoundness(ms, AllowPolicy(2, VarSet{1}), InputDomain::Range(2, 0, 2),
                             Observability::kValueOnly)
                  .sound);
}

TEST(Example7, SimplificationIsWhatCollapsesIt) {
  // Without the equal-arm simplification the select keeps the dependency on
  // r (hence x1) and surveillance still violates.
  bool changed = false;
  const SourceProgram raw =
      ApplyIfToSelect(Example7Program(), {.simplify_equal_arms = false}, &changed);
  ASSERT_TRUE(changed);
  const SurveillanceMechanism ms = MakeSurveillanceM(Lower(raw), VarSet{1});
  EXPECT_TRUE(ms.Run(Input{0, 0}).IsViolation());
}

// --- Example 8: the same transform can make things strictly worse ---

SourceProgram Example8Program() {
  // if (x2 == 1) y = 1 else y = x1;  policy allow(x2).
  return MustParseProgram(
      "program ex8(x1, x2) { if (x2 == 1) { y = 1; } else { y = x1; } }");
}

TEST(Example8, TransformStrictlyLessComplete) {
  const SourceProgram q = Example8Program();
  bool changed = false;
  const SourceProgram q_prime = ApplyIfToSelect(q, {}, &changed);
  ASSERT_TRUE(changed);
  ASSERT_TRUE(Equivalent(q, q_prime));

  const VarSet allowed{1};
  const SurveillanceMechanism m = MakeSurveillanceM(Lower(q), allowed);
  const SurveillanceMechanism m_prime = MakeSurveillanceM(Lower(q_prime), allowed);

  const InputDomain domain = InputDomain::Range(2, 0, 2);
  // "M' always outputs Lambda. On the other hand, M outputs 1 provided
  // x2 = 1; hence M > M'."
  domain.ForEach([&](InputView input) {
    EXPECT_TRUE(m_prime.Run(input).IsViolation());
    EXPECT_EQ(m.Run(input).IsValue(), input[1] == 1);
  });
  EXPECT_EQ(CompareCompleteness(m, m_prime, domain).Relation(),
            CompletenessRelation::kFirstMore);
}

// --- Loop unrolling ---

TEST(TripCountTest, RecognizesBoundedCounterIdiom) {
  const SourceProgram p = MustParseProgram(
      "program p() { locals c; c = 3; while (c != 0) { y = y + 1; c = c - 1; } }");
  EXPECT_EQ(TryExtractTripCount(p.body, 1), 3);
}

TEST(TripCountTest, RejectsForeignShapes) {
  const SourceProgram no_init = MustParseProgram(
      "program p(n) { locals c; c = n; while (c != 0) { c = c - 1; } }");
  EXPECT_FALSE(TryExtractTripCount(no_init.body, 1).has_value());

  const SourceProgram no_dec = MustParseProgram(
      "program p() { locals c; c = 1; while (c != 0) { c = 0; } }");
  EXPECT_FALSE(TryExtractTripCount(no_dec.body, 1).has_value());

  const SourceProgram extra_assign = MustParseProgram(
      "program p() { locals c; c = 2; while (c != 0) { c = c + 1; c = c - 1; } }");
  EXPECT_FALSE(TryExtractTripCount(extra_assign.body, 1).has_value());
}

TEST(UnrollTest, PreservesSemantics) {
  const SourceProgram p = MustParseProgram(R"(
    program p(a) {
      locals c;
      c = 3;
      while (c != 0) { y = y + a; c = c - 1; }
    })");
  bool changed = false;
  const SourceProgram q = ApplyLoopUnroll(p, 8, &changed);
  EXPECT_TRUE(changed);
  EXPECT_TRUE(Equivalent(p, q));
  EXPECT_EQ(q.ToString().find("while"), std::string::npos);
}

TEST(UnrollTest, RespectsMaxFactor) {
  const SourceProgram p = MustParseProgram(
      "program p() { locals c; c = 9; while (c != 0) { y = y + 1; c = c - 1; } }");
  bool changed = false;
  const SourceProgram q = ApplyLoopUnroll(p, 4, &changed);
  EXPECT_FALSE(changed);
  EXPECT_NE(q.ToString().find("while"), std::string::npos);
}

TEST(UnrollTest, UnrollPlusSelectRemovesLoopTaint) {
  // Loop bound is a constant, the body taints y with a; after unroll +
  // if-to-select there are no decisions left, so the pc never taints and
  // surveillance releases y whenever its data labels allow.
  const SourceProgram p = MustParseProgram(R"(
    program p(pub, sec) {
      locals c;
      c = 2;
      while (c != 0) { y = y + pub; c = c - 1; }
    })");
  const VarSet allowed{0};
  const SurveillanceMechanism before = MakeSurveillanceM(Lower(p), allowed);
  // The loop tests c (label empty — c is a constant counter!), so actually
  // the loop itself is harmless here; make sure both release.
  EXPECT_TRUE(before.Run(Input{1, 9}).IsValue());

  bool changed = false;
  const SourceProgram unrolled = ApplyLoopUnroll(p, 8, &changed);
  ASSERT_TRUE(changed);
  const SourceProgram selected = ApplyIfToSelect(unrolled, {}, &changed);
  EXPECT_TRUE(Equivalent(p, selected));
  const SurveillanceMechanism after = MakeSurveillanceM(Lower(selected), allowed);
  EXPECT_TRUE(after.Run(Input{1, 9}).IsValue());
  const InputDomain domain = InputDomain::Range(2, 0, 2);
  EXPECT_EQ(CompareCompleteness(after, before, domain).second_only, 0u);
}

// --- Example 9: tail duplication ---

SourceProgram Example9Program() {
  return MustParseProgram(
      "program ex9(x1, x2) { locals r; if (x1 == 0) { r = 0; } else { r = x2; } y = r; }");
}

TEST(Example9, TailDuplicationPreservesSemantics) {
  bool changed = false;
  const SourceProgram dup = ApplyTailDuplication(Example9Program(), &changed);
  EXPECT_TRUE(changed);
  EXPECT_TRUE(Equivalent(Example9Program(), dup));
  // Both arms now end in explicit halts.
  const std::string text = dup.ToString();
  EXPECT_NE(text.find("halt;"), std::string::npos);
}

TEST(Example9, TailDuplicationBudgetMakesBlowupANoOp) {
  // Tail duplication is worst-case exponential in sequential ifs: each one
  // copies everything after it into both arms. Past the output budget the
  // transform must decline (original bytes back, *changed false) instead of
  // materializing the blowup.
  std::string body;
  for (int i = 0; i < 40; ++i) {
    body += "if (x1 == " + std::to_string(i) + ") { r = " + std::to_string(i) + "; } ";
  }
  const SourceProgram chain =
      MustParseProgram("program blowup(x1) { locals r; " + body + "y = r; }");

  bool changed = true;
  const SourceProgram dup = ApplyTailDuplication(chain, &changed);
  EXPECT_FALSE(changed);
  EXPECT_EQ(dup.ToString(), chain.ToString());

  // A generous explicit budget admits the same program.
  changed = false;
  const SourceProgram small = ApplyTailDuplication(Example9Program(), &changed, 1 << 20);
  EXPECT_TRUE(changed);
  EXPECT_TRUE(Equivalent(Example9Program(), small));
}

TEST(Example9, IfToSelectWouldAlwaysViolate) {
  bool changed = false;
  const SourceProgram selected = ApplyIfToSelect(Example9Program(), {}, &changed);
  ASSERT_TRUE(changed);
  const SurveillanceMechanism ms = MakeSurveillanceM(Lower(selected), VarSet{0});
  // "The related protection mechanism would always output a violation
  // notice."
  InputDomain::Range(2, 0, 2).ForEach(
      [&](InputView input) { EXPECT_TRUE(ms.Run(input).IsViolation()); });
}

TEST(Example9, DuplicationPlusResidualGuardViolatesOnlyWhenX1Nonzero) {
  bool changed = false;
  const SourceProgram dup = ApplyTailDuplication(Example9Program(), &changed);
  ASSERT_TRUE(changed);
  // (Verified against the paper's conclusion via the static residual guard —
  // see staticflow_test's ResidualGuardReleasesPerHalt, which uses the
  // duplicated shape directly.)
  const SurveillanceMechanism ms = MakeSurveillanceM(Lower(dup), VarSet{0});
  InputDomain::Range(2, 0, 2).ForEach([&](InputView input) {
    EXPECT_EQ(ms.Run(input).IsValue(), input[0] == 0) << FormatInput(input);
  });
}

// --- The advisor ---

TEST(AdvisorTest, PicksTheWinningTransformOnExample7) {
  const InputDomain domain = InputDomain::Range(2, 0, 2);
  const AdvisorReport report = AdviseTransforms(Example7Program(), VarSet{1}, domain);
  EXPECT_GE(report.candidates.size(), 2u);
  EXPECT_TRUE(report.best().equivalent);
  EXPECT_DOUBLE_EQ(report.best().utility, 1.0);
  EXPECT_NE(report.best().description.find("if-to-select"), std::string::npos);
}

TEST(AdvisorTest, KeepsTheOriginalOnExample8) {
  const InputDomain domain = InputDomain::Range(2, 0, 2);
  const AdvisorReport report = AdviseTransforms(Example8Program(), VarSet{1}, domain);
  // The transform only hurts here; the original must win.
  EXPECT_EQ(report.best_index, 0u);
  EXPECT_EQ(report.best().description, "original");
}

TEST(AdvisorTest, EveryCandidateIsAudited) {
  const InputDomain domain = InputDomain::Range(2, 0, 1);
  const AdvisorReport report = AdviseTransforms(Example9Program(), VarSet{0}, domain);
  for (const AdvisorCandidate& c : report.candidates) {
    EXPECT_TRUE(c.equivalent) << c.description;
  }
  EXPECT_NE(report.ToString().find("utility="), std::string::npos);
}

TEST(AdvisorTest, TransformedMechanismsRemainSound) {
  // Theorem-in-practice: whatever the advisor picks must still be sound.
  const InputDomain domain = InputDomain::Range(2, 0, 2);
  for (const SourceProgram& p :
       {Example7Program(), Example8Program(), Example9Program()}) {
    for (const VarSet allowed : {VarSet::Empty(), VarSet{0}, VarSet{1}}) {
      const AdvisorReport report = AdviseTransforms(p, allowed, domain);
      const SurveillanceMechanism best =
          MakeSurveillanceM(Lower(report.best().program), allowed);
      EXPECT_TRUE(CheckSoundness(best, AllowPolicy(2, allowed), domain,
                                 Observability::kValueOnly)
                      .sound)
          << p.name << " " << allowed.ToString() << " via " << report.best().description;
    }
  }
}

}  // namespace
}  // namespace secpol
