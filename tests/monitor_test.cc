// Tests for the reference-monitor substrate: Example 2's file system,
// Example 4's leaky violation notices, Example 5's logon program, and the
// MLS lattice kernel.

#include <gtest/gtest.h>

#include <memory>

#include "src/mechanism/completeness.h"
#include "src/mechanism/soundness.h"
#include "src/monitor/filesys.h"
#include "src/monitor/logon.h"
#include "src/monitor/mls.h"
#include "src/policy/policy.h"

namespace secpol {
namespace {

// A small 2-file domain: dirs in {0,1}, contents in {0,1,2}.
InputDomain TwoFileDomain() {
  return InputDomain::PerInput({{0, 1}, {0, 1}, {0, 1, 2}, {0, 1, 2}});
}

TEST(FileSystemTest, GrantsByDirectoryValue) {
  const FileSystem fs({1, 0}, {7, 9}, /*grant_value=*/1);
  EXPECT_EQ(fs.num_files(), 2);
  EXPECT_TRUE(fs.Granted(0));
  EXPECT_FALSE(fs.Granted(1));
  EXPECT_EQ(fs.RawContent(1), 9);
}

TEST(MonitorSessionTest, GrantedReadReturnsContent) {
  const FileSystem fs({1, 0}, {7, 9}, 1);
  MonitorSession session(fs, DenialMode::kFailStop);
  EXPECT_EQ(session.ReadFile(0), 7);
  EXPECT_FALSE(session.aborted());
  EXPECT_EQ(session.syscalls(), 1u);
}

TEST(MonitorSessionTest, FailStopLatchesAbort) {
  const FileSystem fs({1, 0}, {7, 9}, 1);
  MonitorSession session(fs, DenialMode::kFailStop);
  EXPECT_EQ(session.ReadFile(1), 0);
  EXPECT_TRUE(session.aborted());
  // The Example 2 notice.
  EXPECT_EQ(session.abort_notice(), "Illegal access attempted, run aborted");
  // Post-abort reads are inert.
  EXPECT_EQ(session.ReadFile(0), 0);
}

TEST(MonitorSessionTest, ZeroFillContinues) {
  const FileSystem fs({0, 1}, {7, 9}, 1);
  MonitorSession session(fs, DenialMode::kZeroFill);
  EXPECT_EQ(session.ReadFile(0), 0);
  EXPECT_FALSE(session.aborted());
  EXPECT_EQ(session.ReadFile(1), 9);
}

TEST(MonitorSessionTest, OutOfRangeReadsAreZero) {
  const FileSystem fs({1}, {7}, 1);
  MonitorSession session(fs, DenialMode::kFailStop);
  EXPECT_EQ(session.ReadFile(5), 0);
  EXPECT_EQ(session.ReadDirectory(-1), 0);
  EXPECT_FALSE(session.aborted());
}

// --- Example 2: soundness of the monitored mechanisms ---

struct MonitorCase {
  DenialMode mode;
  bool greedy;  // greedy summer vs compliant summer
  bool expect_sound;
};

class MonitorSoundnessTest : public ::testing::TestWithParam<MonitorCase> {};

TEST_P(MonitorSoundnessTest, AgainstDirectoryGatedPolicy) {
  const MonitorCase& c = GetParam();
  const auto mech =
      MakeMonitoredMechanism("sum", 2, 1, c.mode,
                             c.greedy ? MakeGreedySummer() : MakeCompliantSummer());
  const DirectoryGatedPolicy policy(2, 1);
  const auto report =
      CheckSoundness(*mech, policy, TwoFileDomain(), Observability::kValueOnly);
  EXPECT_EQ(report.sound, c.expect_sound)
      << DenialModeName(c.mode) << (c.greedy ? " greedy" : " compliant") << "\n"
      << report.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, MonitorSoundnessTest,
    ::testing::Values(
        MonitorCase{DenialMode::kFailStop, false, true},
        MonitorCase{DenialMode::kFailStop, true, true},
        MonitorCase{DenialMode::kZeroFill, false, true},
        MonitorCase{DenialMode::kZeroFill, true, true},
        // Example 4: the notice-dependent-on-content monitor is unsound,
        // regardless of which program runs against it... the compliant
        // program never triggers a denial, so only the greedy one exposes
        // the leak.
        MonitorCase{DenialMode::kLeakyLenient, false, true},
        MonitorCase{DenialMode::kLeakyLenient, true, false}));

TEST(Example4, LeakIsThroughTheNoticeItself) {
  const auto mech =
      MakeMonitoredMechanism("sum", 2, 1, DenialMode::kLeakyLenient, MakeGreedySummer());
  // Same directories (file 1 denied), different protected contents: the
  // abort decision differs.
  const Outcome zero = mech->Run(Input{1, 0, 5, 0});
  const Outcome nonzero = mech->Run(Input{1, 0, 5, 3});
  EXPECT_TRUE(zero.IsValue());
  EXPECT_TRUE(nonzero.IsViolation());
}

TEST(MonitorCompletenessTest, ZeroFillMoreCompleteThanFailStopForGreedy) {
  const auto failstop =
      MakeMonitoredMechanism("sum", 2, 1, DenialMode::kFailStop, MakeGreedySummer());
  const auto zerofill =
      MakeMonitoredMechanism("sum", 2, 1, DenialMode::kZeroFill, MakeGreedySummer());
  const CompletenessStats stats = CompareCompleteness(*zerofill, *failstop, TwoFileDomain());
  EXPECT_EQ(stats.Relation(), CompletenessRelation::kFirstMore);
}

TEST(MonitorTest, AdaptiveReaderSoundUnderHonestMonitors) {
  const DirectoryGatedPolicy policy(2, 1);
  for (const DenialMode mode : {DenialMode::kFailStop, DenialMode::kZeroFill}) {
    const auto mech = MakeMonitoredMechanism("adaptive", 2, 1, mode, MakeAdaptiveReader());
    EXPECT_TRUE(
        CheckSoundness(*mech, policy, TwoFileDomain(), Observability::kValueOnly).sound)
        << DenialModeName(mode);
  }
}

TEST(MonitorTest, AdaptiveReaderExposesLeakyMonitor) {
  const auto mech = MakeMonitoredMechanism("adaptive", 2, 1, DenialMode::kLeakyLenient,
                                           MakeAdaptiveReader());
  const DirectoryGatedPolicy policy(2, 1);
  const auto report =
      CheckSoundness(*mech, policy, TwoFileDomain(), Observability::kValueOnly);
  EXPECT_FALSE(report.sound);
}

TEST(MonitorTest, CompliantSummerComputesTheGatedSum) {
  const auto mech =
      MakeMonitoredMechanism("sum", 2, 1, DenialMode::kFailStop, MakeCompliantSummer());
  EXPECT_EQ(mech->Run(Input{1, 1, 5, 7}).value, 12);
  EXPECT_EQ(mech->Run(Input{1, 0, 5, 7}).value, 5);
  EXPECT_EQ(mech->Run(Input{0, 0, 5, 7}).value, 0);
}

// --- Example 5: the logon program ---

TEST(LogonTest, AcceptsExactlyTheStoredPassword) {
  // Base-4 table 0b...: table = 2 + 1*4 = 6: user0 -> 2, user1 -> 1.
  const auto logon = MakeLogonProgram(2, 4);
  EXPECT_EQ(logon->Run(Input{0, 6, 2}).value, 1);
  EXPECT_EQ(logon->Run(Input{0, 6, 1}).value, 0);
  EXPECT_EQ(logon->Run(Input{1, 6, 1}).value, 1);
  EXPECT_EQ(logon->Run(Input{1, 6, 2}).value, 0);
}

TEST(LogonTest, OutOfRangeUidRejected) {
  const auto logon = MakeLogonProgram(2, 4);
  EXPECT_EQ(logon->Run(Input{7, 6, 2}).value, 0);
  EXPECT_EQ(logon->Run(Input{-1, 6, 2}).value, 0);
}

TEST(LogonTest, PasswordOfDigits) {
  EXPECT_EQ(PasswordOf(6, 0, 4), 2);
  EXPECT_EQ(PasswordOf(6, 1, 4), 1);
  EXPECT_EQ(PasswordOf(6, 2, 4), 0);
  EXPECT_EQ(PasswordOf(-1, 0, 4), -1);
}

TEST(Example5, LogonAsItsOwnMechanismIsUnsound) {
  const auto logon = MakeLogonProgram(2, 2);
  const AllowPolicy policy = MakeLogonPolicy();
  const InputDomain domain = InputDomain::PerInput({
      {0, 1},        // uid
      {0, 1, 2, 3},  // all 2-user tables over a binary alphabet
      {0, 1},        // guess
  });
  const auto report = CheckSoundness(*logon, policy, domain, Observability::kValueOnly);
  EXPECT_FALSE(report.sound);
  // "The amount of information obtained by the user is small": one accept /
  // reject bit per run.
}

TEST(Example5, TimingIsUniformSoTheLeakIsValueOnly) {
  const auto logon = MakeLogonProgram(2, 2);
  const Outcome a = logon->Run(Input{0, 0, 0});
  const Outcome b = logon->Run(Input{1, 3, 1});
  EXPECT_EQ(a.steps, b.steps);
}

// --- The MLS kernel ---

MlsUserProgram SumAllFiles() {
  return [](MlsSession& session) {
    Value sum = 0;
    for (int i = 0; i < session.num_files(); ++i) {
      sum += session.ReadFile(i);
    }
    return sum;
  };
}

MlsUserProgram SumVisibleFiles(ClassId clearance) {
  return [clearance](MlsSession& session) {
    Value sum = 0;
    for (int i = 0; i < session.num_files(); ++i) {
      if (session.FileClass(i) <= clearance) {  // linear lattice order
        sum += session.ReadFile(i);
      }
    }
    return sum;
  };
}

TEST(MlsTest, NoReadUpZeroFillsHighFiles) {
  const auto lattice = std::make_shared<LinearLattice>(LinearLattice::Military());
  // Files: unclassified, secret, top-secret; clearance: secret.
  const auto mech = MakeMlsMechanism("sum", lattice, {0, 2, 3}, 2, MlsMonitorKind::kNoReadUp,
                                     SumAllFiles());
  EXPECT_EQ(mech->Run(Input{1, 2, 4}).value, 3);  // top-secret read as 0
}

TEST(MlsTest, TaintAndCheckBlocksAtOutput) {
  const auto lattice = std::make_shared<LinearLattice>(LinearLattice::Military());
  const auto mech = MakeMlsMechanism("sum", lattice, {0, 2, 3}, 2,
                                     MlsMonitorKind::kTaintAndCheck, SumAllFiles());
  EXPECT_TRUE(mech->Run(Input{1, 2, 4}).IsViolation());
}

TEST(MlsTest, BothMonitorsSoundForTheInducedPolicy) {
  const auto lattice = std::make_shared<LinearLattice>(LinearLattice::Military());
  const std::vector<ClassId> classes = {0, 2, 3};
  const ClassId clearance = 2;
  const AllowPolicy policy = MakeMlsPolicy(*lattice, classes, clearance);
  ASSERT_EQ(policy.allowed(), (VarSet{0, 1}));

  const InputDomain domain = InputDomain::Uniform(3, {0, 1, 2});
  for (const MlsMonitorKind kind :
       {MlsMonitorKind::kNoReadUp, MlsMonitorKind::kTaintAndCheck}) {
    for (const bool greedy : {true, false}) {
      const auto mech = MakeMlsMechanism(
          "sum", lattice, classes, clearance, kind,
          greedy ? SumAllFiles() : SumVisibleFiles(clearance));
      EXPECT_TRUE(
          CheckSoundness(*mech, policy, domain, Observability::kValueOnly).sound)
          << MlsMonitorKindName(kind) << (greedy ? " greedy" : " visible-only");
    }
  }
}

TEST(MlsTest, NoReadUpMoreCompleteForGreedyPrograms) {
  // The greedy program touches a top-secret file; taint-and-check must then
  // refuse the output, while no-read-up degrades gracefully.
  const auto lattice = std::make_shared<LinearLattice>(LinearLattice::Military());
  const std::vector<ClassId> classes = {0, 3};
  const auto no_read_up = MakeMlsMechanism("sum", lattice, classes, 2,
                                           MlsMonitorKind::kNoReadUp, SumAllFiles());
  const auto taint = MakeMlsMechanism("sum", lattice, classes, 2,
                                      MlsMonitorKind::kTaintAndCheck, SumAllFiles());
  const InputDomain domain = InputDomain::Uniform(2, {0, 1});
  const CompletenessStats stats = CompareCompleteness(*no_read_up, *taint, domain);
  EXPECT_EQ(stats.Relation(), CompletenessRelation::kFirstMore);
}

TEST(MlsTest, TaintAndCheckMoreCompleteForCarefulPrograms) {
  // A program that reads only low files: both release; and a program that
  // reads high data into a dead variable — no-read-up zero-fills it (wrong
  // value would be computed by a program relying on the read), while
  // taint-and-check lets the read happen and only gates the output. Model
  // the latter: read high, discard, output a constant.
  const auto lattice = std::make_shared<LinearLattice>(LinearLattice::Military());
  const std::vector<ClassId> classes = {0, 3};
  const MlsUserProgram discard = [](MlsSession& session) {
    (void)session.ReadFile(1);  // top-secret, discarded
    return session.ReadFile(0);
  };
  const auto no_read_up =
      MakeMlsMechanism("discard", lattice, classes, 2, MlsMonitorKind::kNoReadUp, discard);
  const auto taint = MakeMlsMechanism("discard", lattice, classes, 2,
                                      MlsMonitorKind::kTaintAndCheck, discard);
  // Values agree (the discard makes them equal) but taint refuses: here
  // no-read-up wins. The label is conservative exactly like high-water.
  EXPECT_TRUE(no_read_up->Run(Input{5, 9}).IsValue());
  EXPECT_TRUE(taint->Run(Input{5, 9}).IsViolation());
}

// --- Writes and the *-property ---

TEST(MlsWriteTest, WriteUpAllowedWriteDownRefused) {
  const LinearLattice lattice = LinearLattice::Military();
  // Files: unclassified, top-secret. Writer cleared secret.
  MlsSession session(lattice, {0, 3}, {5, 9}, /*clearance=*/2, MlsMonitorKind::kNoReadUp,
                     WriteDiscipline::kStarProperty);
  EXPECT_TRUE(session.WriteFile(1, 42));   // write up: secret -> top-secret
  EXPECT_EQ(session.FinalContent(1), 42);
  EXPECT_FALSE(session.WriteFile(0, 77));  // write down: refused
  EXPECT_EQ(session.FinalContent(0), 5);
}

TEST(MlsWriteTest, UnrestrictedWritesGoAnywhere) {
  const LinearLattice lattice = LinearLattice::Military();
  MlsSession session(lattice, {0, 3}, {5, 9}, 2, MlsMonitorKind::kNoReadUp,
                     WriteDiscipline::kUnrestrictedWrite);
  EXPECT_TRUE(session.WriteFile(0, 77));
  EXPECT_EQ(session.FinalContent(0), 77);
}

TEST(MlsWriteTest, TaintedEffectiveLabelGovernsWrites) {
  const LinearLattice lattice = LinearLattice::Military();
  // Taint mode: a top-secret-cleared process that has read NOTHING may still
  // write an unclassified file; after reading top-secret data it may not.
  MlsSession session(lattice, {0, 3}, {5, 9}, /*clearance=*/3,
                     MlsMonitorKind::kTaintAndCheck, WriteDiscipline::kStarProperty);
  EXPECT_TRUE(session.WriteFile(0, 11));  // label still bottom
  (void)session.ReadFile(1);              // taint with top-secret
  EXPECT_FALSE(session.WriteFile(0, 22));
  EXPECT_EQ(session.FinalContent(0), 11);
}

// The laundering experiment: a secret-cleared program copies a high file
// into a low file; an unclassified observer then reads the low file.
MlsUserProgram MakeDowngrader() {
  return [](MlsSession& session) {
    const Value high = session.ReadFile(1);
    session.WriteFile(0, high);
    return Value{0};
  };
}

TEST(MlsWriteTest, UnrestrictedWritesLaunderHighDataAndCheckerConvicts) {
  const auto lattice = std::make_shared<LinearLattice>(LinearLattice::Military());
  // Observer is cleared only for file 0 (unclassified).
  const AllowPolicy observer_policy = MakeMlsPolicy(*lattice, {0, 3}, /*clearance=*/0);
  ASSERT_EQ(observer_policy.allowed(), VarSet{0});

  const auto leaky = MakeMlsObserverMechanism(
      "downgrade", lattice, {0, 3}, /*writer_clearance=*/3, MlsMonitorKind::kTaintAndCheck,
      WriteDiscipline::kUnrestrictedWrite, MakeDowngrader(), /*observed_file=*/0);
  const InputDomain domain = InputDomain::Uniform(2, {0, 1, 2});
  EXPECT_FALSE(
      CheckSoundness(*leaky, observer_policy, domain, Observability::kValueOnly).sound);
}

TEST(MlsWriteTest, StarPropertyClosesTheDowngrade) {
  const auto lattice = std::make_shared<LinearLattice>(LinearLattice::Military());
  const AllowPolicy observer_policy = MakeMlsPolicy(*lattice, {0, 3}, 0);
  const auto guarded = MakeMlsObserverMechanism(
      "downgrade", lattice, {0, 3}, 3, MlsMonitorKind::kTaintAndCheck,
      WriteDiscipline::kStarProperty, MakeDowngrader(), 0);
  const InputDomain domain = InputDomain::Uniform(2, {0, 1, 2});
  EXPECT_TRUE(
      CheckSoundness(*guarded, observer_policy, domain, Observability::kValueOnly).sound);
  // The write was refused, so the observer sees the original low content.
  EXPECT_EQ(guarded->Run(Input{5, 9}).value, 5);
}

TEST(MlsWriteTest, CleanWritersStillWorkUnderStarProperty) {
  // A writer that only copies low data to a low file: permitted and sound.
  const auto lattice = std::make_shared<LinearLattice>(LinearLattice::Military());
  const MlsUserProgram low_updater = [](MlsSession& session) {
    const Value low = session.ReadFile(0);
    session.WriteFile(0, low + 1);
    return Value{0};
  };
  const auto mech = MakeMlsObserverMechanism("low-update", lattice, {0, 3}, 3,
                                             MlsMonitorKind::kTaintAndCheck,
                                             WriteDiscipline::kStarProperty, low_updater, 0);
  EXPECT_EQ(mech->Run(Input{5, 9}).value, 6);
  const AllowPolicy observer_policy = MakeMlsPolicy(*lattice, {0, 3}, 0);
  EXPECT_TRUE(CheckSoundness(*mech, observer_policy, InputDomain::Uniform(2, {0, 1, 2}),
                             Observability::kValueOnly)
                  .sound);
}

}  // namespace
}  // namespace secpol
