// Unit tests for the expression language.

#include <gtest/gtest.h>

#include <limits>

#include "src/expr/expr.h"

namespace secpol {
namespace {

Value EvalWith(const Expr& e, std::vector<Value> env) { return e.Eval(env); }

TEST(ExprTest, ConstAndVar) {
  EXPECT_EQ(EvalWith(C(7), {}), 7);
  EXPECT_EQ(EvalWith(V(1), {10, 20, 30}), 20);
  EXPECT_EQ(EvalWith(Expr(), {}), 0);  // default Expr is the constant 0
}

struct BinCase {
  BinaryOp op;
  Value a;
  Value b;
  Value expected;
};

class BinaryOpTest : public ::testing::TestWithParam<BinCase> {};

TEST_P(BinaryOpTest, Evaluates) {
  const BinCase& c = GetParam();
  const Expr e = Expr::Binary(c.op, C(c.a), C(c.b));
  EXPECT_EQ(e.Eval({}), c.expected)
      << BinaryOpName(c.op) << " on " << c.a << ", " << c.b;
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, BinaryOpTest,
    ::testing::Values(BinCase{BinaryOp::kAdd, 2, 3, 5}, BinCase{BinaryOp::kAdd, -2, 2, 0},
                      BinCase{BinaryOp::kSub, 2, 3, -1}, BinCase{BinaryOp::kMul, -4, 3, -12},
                      BinCase{BinaryOp::kDiv, 7, 2, 3}, BinCase{BinaryOp::kDiv, -7, 2, -3},
                      BinCase{BinaryOp::kMod, 7, 3, 1}, BinCase{BinaryOp::kMod, -7, 3, -1},
                      BinCase{BinaryOp::kMin, 2, -5, -5}, BinCase{BinaryOp::kMax, 2, -5, 2}));

INSTANTIATE_TEST_SUITE_P(
    Totality, BinaryOpTest,
    ::testing::Values(BinCase{BinaryOp::kDiv, 5, 0, 0}, BinCase{BinaryOp::kMod, 5, 0, 0},
                      BinCase{BinaryOp::kDiv, std::numeric_limits<Value>::min(), -1,
                              std::numeric_limits<Value>::min()},
                      BinCase{BinaryOp::kMod, std::numeric_limits<Value>::min(), -1, 0}));

INSTANTIATE_TEST_SUITE_P(
    Bitwise, BinaryOpTest,
    ::testing::Values(BinCase{BinaryOp::kBitAnd, 6, 3, 2}, BinCase{BinaryOp::kBitOr, 6, 3, 7},
                      BinCase{BinaryOp::kBitXor, 6, 3, 5}));

INSTANTIATE_TEST_SUITE_P(
    Comparisons, BinaryOpTest,
    ::testing::Values(BinCase{BinaryOp::kEq, 3, 3, 1}, BinCase{BinaryOp::kEq, 3, 4, 0},
                      BinCase{BinaryOp::kNe, 3, 4, 1}, BinCase{BinaryOp::kNe, 3, 3, 0},
                      BinCase{BinaryOp::kLt, -1, 0, 1}, BinCase{BinaryOp::kLt, 0, 0, 0},
                      BinCase{BinaryOp::kLe, 0, 0, 1}, BinCase{BinaryOp::kGt, 1, 0, 1},
                      BinCase{BinaryOp::kGe, -1, 0, 0}));

INSTANTIATE_TEST_SUITE_P(
    Logical, BinaryOpTest,
    ::testing::Values(BinCase{BinaryOp::kAnd, 2, 3, 1}, BinCase{BinaryOp::kAnd, 2, 0, 0},
                      BinCase{BinaryOp::kOr, 0, 0, 0}, BinCase{BinaryOp::kOr, 0, -1, 1}));

TEST(ExprTest, OverflowWraps) {
  const Value max = std::numeric_limits<Value>::max();
  EXPECT_EQ(EvalWith(Add(C(max), C(1)), {}), std::numeric_limits<Value>::min());
  EXPECT_EQ(EvalWith(Mul(C(max), C(2)), {}), -2);
  EXPECT_EQ(EvalWith(Expr::Unary(UnaryOp::kNeg, C(std::numeric_limits<Value>::min())), {}),
            std::numeric_limits<Value>::min());
}

TEST(ExprTest, UnaryOps) {
  EXPECT_EQ(EvalWith(Expr::Unary(UnaryOp::kNeg, C(5)), {}), -5);
  EXPECT_EQ(EvalWith(Expr::Unary(UnaryOp::kNot, C(0)), {}), 1);
  EXPECT_EQ(EvalWith(Expr::Unary(UnaryOp::kNot, C(-3)), {}), 0);
}

TEST(ExprTest, SelectEvaluatesBothArmsButPicksOne) {
  const Expr e = Expr::Select(V(0), V(1), V(2));
  EXPECT_EQ(EvalWith(e, {1, 10, 20}), 10);
  EXPECT_EQ(EvalWith(e, {0, 10, 20}), 20);
  EXPECT_EQ(EvalWith(e, {-7, 10, 20}), 10);  // any nonzero condition is true
}

TEST(ExprTest, FreeVars) {
  EXPECT_EQ(C(3).FreeVars(), VarSet::Empty());
  EXPECT_EQ(V(4).FreeVars(), VarSet{4});
  const Expr e = Add(Mul(V(0), V(2)), Expr::Select(V(1), C(1), V(0)));
  EXPECT_EQ(e.FreeVars(), (VarSet{0, 1, 2}));
}

TEST(ExprTest, NodeCount) {
  EXPECT_EQ(C(1).NodeCount(), 1);
  EXPECT_EQ(Add(C(1), V(0)).NodeCount(), 3);
  EXPECT_EQ(Expr::Select(V(0), C(1), C(2)).NodeCount(), 4);
}

TEST(ExprTest, StructuralEquality) {
  EXPECT_TRUE(Add(V(0), C(1)).StructurallyEquals(Add(V(0), C(1))));
  EXPECT_FALSE(Add(V(0), C(1)).StructurallyEquals(Add(V(0), C(2))));
  EXPECT_FALSE(Add(V(0), C(1)).StructurallyEquals(Sub(V(0), C(1))));
  EXPECT_FALSE(V(0).StructurallyEquals(C(0)));
  const Expr shared = Mul(V(1), V(2));
  EXPECT_TRUE(shared.StructurallyEquals(shared));
  EXPECT_TRUE(Expr::Unary(UnaryOp::kNot, V(0))
                  .StructurallyEquals(Expr::Unary(UnaryOp::kNot, V(0))));
  EXPECT_FALSE(Expr::Unary(UnaryOp::kNot, V(0))
                   .StructurallyEquals(Expr::Unary(UnaryOp::kNeg, V(0))));
}

TEST(ExprTest, MapVars) {
  const Expr e = Add(V(0), Mul(V(1), C(3)));
  const Expr mapped = e.MapVars([](int id) { return id + 10; });
  EXPECT_EQ(mapped.FreeVars(), (VarSet{10, 11}));
  EXPECT_EQ(mapped.Eval(std::vector<Value>(12, 2)), 2 + 2 * 3);
  // Original untouched.
  EXPECT_EQ(e.FreeVars(), (VarSet{0, 1}));
}

TEST(ExprTest, ToString) {
  const Expr e = Add(V(0), C(2));
  EXPECT_EQ(e.ToString(), "(v0 + 2)");
  EXPECT_EQ(Expr::Binary(BinaryOp::kMin, V(0), V(1)).ToString(), "min(v0, v1)");
  EXPECT_EQ(Expr::Select(V(0), C(1), C(2)).ToString(), "select(v0, 1, 2)");
  EXPECT_EQ(Expr::Unary(UnaryOp::kNot, V(3)).ToString(), "!(v3)");
}

TEST(ExprTest, AccessorsRoundTrip) {
  const Expr e = Expr::Binary(BinaryOp::kBitXor, V(3), C(9));
  ASSERT_EQ(e.kind(), Expr::Kind::kBinary);
  EXPECT_EQ(e.binary_op(), BinaryOp::kBitXor);
  ASSERT_EQ(e.num_operands(), 2);
  EXPECT_EQ(e.operand(0).var_id(), 3);
  EXPECT_EQ(e.operand(1).const_value(), 9);

  const Expr u = Expr::Unary(UnaryOp::kNeg, V(1));
  ASSERT_EQ(u.kind(), Expr::Kind::kUnary);
  EXPECT_EQ(u.unary_op(), UnaryOp::kNeg);
  EXPECT_EQ(u.num_operands(), 1);
}

}  // namespace
}  // namespace secpol
