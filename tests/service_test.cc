// Tests for the batch checking service: the differential guarantee (batch
// report ≡ standalone checker report, byte for byte, at any thread count,
// cached or uncached, faults injected or not), the result cache's boundary
// behaviour, persistence robustness, and the scheduler's admission control
// and deadline handling.

#include "src/service/service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "src/channels/timing.h"
#include "src/flowlang/lower.h"
#include "src/flowlang/parser.h"
#include "src/mechanism/completeness.h"
#include "src/mechanism/fault.h"
#include "src/mechanism/integrity.h"
#include "src/mechanism/maximal.h"
#include "src/mechanism/outcome.h"
#include "src/mechanism/policy_compare.h"
#include "src/mechanism/soundness.h"
#include "src/policy/policy.h"
#include "src/service/manifest.h"
#include "src/service/result_cache.h"
#include "tests/testlib.h"

namespace secpol {
namespace {

using testlib::MustLower;

// A program leaky enough that soundness/leak verdicts are interesting, with
// loops and branches so structural hashing has something to chew on.
constexpr char kLeakyProgram[] =
    "program leaky(pub, sec) { if (sec > 0) { y = pub + 1; } else { y = pub; } }";
constexpr char kCleanProgram[] = "program clean(pub, sec) { y = pub * pub; }";
constexpr char kLoopProgram[] =
    "program looper(n, sec) { locals c; c = n; while (c > 0) { y = y + 1; c = c - 1; } }";

CheckJobSpec BaseSpec(const std::string& program, CheckerKind checker) {
  CheckJobSpec spec;
  spec.program_text = program;
  spec.checker = checker;
  spec.allow = VarSet{0};
  spec.grid_lo = -1;
  spec.grid_hi = 1;
  return spec;
}

// Renders the expected report for `spec` by calling the underlying checker
// directly — independent re-derivation, duplicated on purpose so a drift in
// either path breaks the byte-for-byte comparison.
std::string ExpectedReport(const CheckJobSpec& spec, int num_threads) {
  const Program program = MustLower(spec.program_text);
  const InputDomain domain =
      InputDomain::Range(program.num_inputs(), spec.grid_lo, spec.grid_hi);
  const Observability obs =
      spec.observe_time ? Observability::kValueAndTime : Observability::kValueOnly;
  CheckOptions options;
  options.num_threads = num_threads;
  const AllowPolicy policy(program.num_inputs(), spec.allow);

  std::string error;
  std::shared_ptr<const ProtectionMechanism> mechanism =
      MakeMechanismKind(spec.mechanism, program, spec.allow, &error);
  EXPECT_NE(mechanism, nullptr) << error;
  if (!spec.fault_spec.empty()) {
    mechanism = std::make_shared<FaultInjectingMechanism>(
        std::move(mechanism), domain, std::move(ParseFaultSpecs(spec.fault_spec)).value());
  }
  if (spec.retries >= 0) {
    mechanism = std::make_shared<RetryingMechanism>(std::move(mechanism), spec.retries);
  }

  const std::string obs_tag = " [" + std::string(ObservabilityName(obs)) + "]";
  switch (spec.checker) {
    case CheckerKind::kSoundness:
      return mechanism->name() + " for " + policy.name() + " over " + domain.ToString() +
             obs_tag + ":\n" +
             CheckSoundness(*mechanism, policy, domain, obs, options).ToString() + "\n";
    case CheckerKind::kIntegrity:
      return mechanism->name() + " preserving " + policy.name() + " over " +
             domain.ToString() + obs_tag + ":\n" +
             CheckInformationPreservation(*mechanism, policy, domain, obs, options)
                 .ToString() +
             "\n";
    case CheckerKind::kCompleteness: {
      std::shared_ptr<const ProtectionMechanism> second =
          MakeMechanismKind(spec.mechanism2, program, spec.allow, &error);
      EXPECT_NE(second, nullptr) << error;
      return mechanism->name() + " vs " + second->name() + " over " + domain.ToString() +
             ":\n" + CompareCompleteness(*mechanism, *second, domain, options).ToString() +
             "\n";
    }
    case CheckerKind::kMaximal:
      return "maximal for " + policy.name() + " over " + domain.ToString() + obs_tag + ":\n" +
             RenderMaximalReport(
                 SynthesizeMaximalMechanism(*mechanism, policy, domain, obs, options)) +
             "\n";
    case CheckerKind::kPolicyCompare: {
      const AllowPolicy second(program.num_inputs(), spec.allow2);
      return policy.name() + " reveals-at-most " + second.name() + " over " +
             domain.ToString() + ":\n" +
             ComparePolicyDisclosure(policy, second, domain, options).ToString() + "\n";
    }
    case CheckerKind::kLeak:
      return mechanism->name() + " for " + policy.name() + " over " + domain.ToString() +
             obs_tag + ":\n" +
             MeasureLeak(*mechanism, policy, domain, obs, options).ToString() + "\n";
    case CheckerKind::kAudit:
      // The audit job's concatenation contract has its own differential
      // suite (tests/audit_test.cc); this helper only re-derives the six
      // single-checker jobs.
      ADD_FAILURE() << "ExpectedReport does not cover kAudit";
      return "";
  }
  return "";
}

Fingerprint KeyOf(char tag) {
  Fingerprinter fp;
  fp.Tag("test-key");
  fp.Str(std::string(1, tag));
  return fp.Digest();
}

CachedResult ValueOf(const std::string& report) {
  CachedResult value;
  value.report = report;
  value.exit_code = 0;
  value.evaluated = 1;
  value.total = 1;
  return value;
}

std::string TempPath(const std::string& stem) {
  return testlib::TempPath("service_test", stem);
}

// ---------------------------------------------------------------------------
// The differential guarantee.

TEST(ServiceDifferentialTest, EveryCheckerMatchesStandaloneAtEveryThreadCount) {
  const struct {
    const char* program;
    CheckerKind checker;
  } cases[] = {
      {kLeakyProgram, CheckerKind::kSoundness},
      {kCleanProgram, CheckerKind::kSoundness},
      {kLoopProgram, CheckerKind::kSoundness},
      {kLeakyProgram, CheckerKind::kIntegrity},
      {kLeakyProgram, CheckerKind::kCompleteness},
      {kCleanProgram, CheckerKind::kMaximal},
      {kLeakyProgram, CheckerKind::kPolicyCompare},
      {kLeakyProgram, CheckerKind::kLeak},
  };
  for (const auto& test_case : cases) {
    for (const int threads : {1, 2, 7}) {
      CheckJobSpec spec = BaseSpec(test_case.program, test_case.checker);
      spec.num_threads = threads;
      if (test_case.checker == CheckerKind::kPolicyCompare) {
        spec.allow2 = VarSet{0, 1};
      }
      const std::string expected = ExpectedReport(spec, threads);

      // Standalone execution.
      const JobResult direct = ExecuteJob(spec);
      EXPECT_EQ(direct.status, JobStatus::kCompleted);
      EXPECT_EQ(direct.report, expected)
          << CheckerKindName(test_case.checker) << " t=" << threads;

      // Cold batch, then warm batch on the same service: the cached bytes
      // must equal the cold bytes must equal the standalone bytes.
      CheckService service(ServiceConfig{});
      const BatchReport cold = service.RunBatch({spec});
      ASSERT_EQ(cold.jobs.size(), 1u);
      EXPECT_FALSE(cold.jobs[0].from_cache);
      EXPECT_EQ(cold.jobs[0].report, expected);

      const BatchReport warm = service.RunBatch({spec});
      ASSERT_EQ(warm.jobs.size(), 1u);
      EXPECT_TRUE(warm.jobs[0].from_cache);
      EXPECT_EQ(warm.jobs[0].report, expected);
      EXPECT_EQ(warm.jobs[0].exit_code, cold.jobs[0].exit_code);
    }
  }
}

TEST(ServiceDifferentialTest, FaultInjectionMatchesStandalone) {
  for (const char* fault : {"wrong@2", "fuel@1+3"}) {
    for (const int threads : {1, 2, 7}) {
      CheckJobSpec spec = BaseSpec(kLeakyProgram, CheckerKind::kSoundness);
      spec.fault_spec = fault;
      spec.num_threads = threads;
      const std::string expected = ExpectedReport(spec, threads);
      const JobResult direct = ExecuteJob(spec);
      EXPECT_EQ(direct.report, expected) << fault << " t=" << threads;

      CheckService service(ServiceConfig{});
      const BatchReport batch = service.RunBatch({spec});
      EXPECT_EQ(batch.jobs[0].report, expected) << fault << " t=" << threads;
    }
  }
}

TEST(ServiceDifferentialTest, TransientFaultWithRetryMatchesFaultFreeRun) {
  CheckJobSpec faulty = BaseSpec(kLeakyProgram, CheckerKind::kSoundness);
  faulty.fault_spec = "throw!@4";
  faulty.retries = 1;
  CheckJobSpec clean = BaseSpec(kLeakyProgram, CheckerKind::kSoundness);

  const JobResult faulty_result = ExecuteJob(faulty);
  const JobResult clean_result = ExecuteJob(clean);
  EXPECT_EQ(faulty_result.status, JobStatus::kCompleted);
  // The retry wrapper changes the mechanism *name* but must not change the
  // verdict or coverage: compare everything after the header line.
  const auto body = [](const std::string& report) {
    return report.substr(report.find(":\n"));
  };
  EXPECT_EQ(body(faulty_result.report), body(clean_result.report));
  EXPECT_EQ(faulty_result.exit_code, clean_result.exit_code);
}

TEST(ServiceDifferentialTest, PersistentFaultAborts) {
  CheckJobSpec spec = BaseSpec(kLeakyProgram, CheckerKind::kSoundness);
  spec.fault_spec = "throw@4";
  const JobResult result = ExecuteJob(spec);
  EXPECT_EQ(result.status, JobStatus::kAborted);
  EXPECT_EQ(result.exit_code, 4);

  // Aborted runs are never cached: a rerun on the same service re-executes.
  CheckService service(ServiceConfig{});
  const BatchReport first = service.RunBatch({spec});
  EXPECT_EQ(first.jobs[0].status, JobStatus::kAborted);
  const BatchReport second = service.RunBatch({spec});
  EXPECT_FALSE(second.jobs[0].from_cache);
  EXPECT_EQ(service.cache().Stats().entries, 0u);
}

TEST(ServiceDifferentialTest, CacheKeyIgnoresThreadCountSafely) {
  // A warm hit from a 1-thread run must serve a 7-thread request the exact
  // same bytes — legal only because completed reports are thread-invariant.
  CheckJobSpec spec = BaseSpec(kLoopProgram, CheckerKind::kSoundness);
  spec.num_threads = 1;
  CheckService service(ServiceConfig{});
  const BatchReport cold = service.RunBatch({spec});

  spec.num_threads = 7;
  const BatchReport warm = service.RunBatch({spec});
  EXPECT_TRUE(warm.jobs[0].from_cache);
  EXPECT_EQ(warm.jobs[0].report, cold.jobs[0].report);
  EXPECT_EQ(warm.jobs[0].report, ExpectedReport(spec, 7));
}

TEST(ServiceDifferentialTest, DuplicateJobsInOneBatchHitTheCache) {
  CheckJobSpec spec = BaseSpec(kCleanProgram, CheckerKind::kSoundness);
  ServiceConfig config;
  config.concurrency = 1;  // deterministic: first occurrence computes
  CheckService service(config);
  const BatchReport report = service.RunBatch({spec, spec, spec});
  EXPECT_EQ(report.stats.executed, 1);
  EXPECT_EQ(report.stats.cache_hits, 2);
  EXPECT_EQ(report.jobs[0].report, report.jobs[1].report);
  EXPECT_EQ(report.jobs[1].report, report.jobs[2].report);
}

// ---------------------------------------------------------------------------
// Scheduler behaviour.

TEST(SchedulerTest, AdmissionControlRejectsBeyondTheBound) {
  CheckJobSpec spec = BaseSpec(kCleanProgram, CheckerKind::kSoundness);
  ServiceConfig config;
  config.max_pending = 2;
  CheckService service(config);
  std::vector<CheckJobSpec> specs(5, spec);
  for (int i = 0; i < 5; ++i) {
    specs[i].id = "job-" + std::to_string(i);
  }
  const BatchReport report = service.RunBatch(specs);
  ASSERT_EQ(report.jobs.size(), 5u);
  EXPECT_EQ(report.stats.admitted, 2);
  EXPECT_EQ(report.stats.rejected, 3);
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(report.jobs[i].status, JobStatus::kCompleted) << i;
  }
  for (int i = 2; i < 5; ++i) {
    EXPECT_EQ(report.jobs[i].status, JobStatus::kRejected) << i;
    EXPECT_EQ(report.jobs[i].exit_code, 5) << i;
    EXPECT_NE(report.jobs[i].error.find("queue bound"), std::string::npos) << i;
    EXPECT_TRUE(report.jobs[i].report.empty()) << i;
  }
  EXPECT_EQ(report.ExitCode(), 5);
  // Results stay in submission order even though job-0/1 ran and 2-4 did not.
  EXPECT_EQ(report.jobs[4].id, "job-4");
}

TEST(SchedulerTest, HigherPriorityRunsFirst) {
  // Two jobs with identical cache keys and one worker: whichever runs first
  // computes, the other hits the cache. Priority must decide.
  CheckJobSpec low = BaseSpec(kLoopProgram, CheckerKind::kSoundness);
  low.id = "low";
  low.priority = 0;
  CheckJobSpec high = low;
  high.id = "high";
  high.priority = 5;
  ServiceConfig config;
  config.concurrency = 1;
  CheckService service(config);
  const BatchReport report = service.RunBatch({low, high});
  EXPECT_TRUE(report.jobs[0].from_cache) << "low priority should have been served second";
  EXPECT_FALSE(report.jobs[1].from_cache) << "high priority should have computed";
}

TEST(SchedulerTest, PerJobDeadlineYieldsStructuredStatus) {
  CheckJobSpec spec;
  // 11^6 ≈ 1.7M surveilled evaluations: far more than 1ms of work.
  spec.program_text =
      "program big(a, b, c, d, e, f) { y = a + b + c + d + e + f; }";
  spec.checker = CheckerKind::kSoundness;
  spec.allow = VarSet{0};
  spec.grid_lo = -5;
  spec.grid_hi = 5;
  spec.deadline_ms = 1;
  CheckService service(ServiceConfig{});
  const BatchReport report = service.RunBatch({spec});
  ASSERT_EQ(report.jobs.size(), 1u);
  EXPECT_EQ(report.jobs[0].status, JobStatus::kDeadlineExceeded);
  EXPECT_EQ(report.jobs[0].exit_code, 3);
  EXPECT_LT(report.jobs[0].evaluated, report.jobs[0].total);
  EXPECT_EQ(report.stats.deadline_exceeded, 1);
  // Partial runs must not poison the cache.
  EXPECT_EQ(service.cache().Stats().entries, 0u);
}

TEST(SchedulerTest, InvalidSpecsAreReportedNotRun) {
  const struct {
    void (*mutate)(CheckJobSpec*);
    const char* expect_in_error;
  } cases[] = {
      {[](CheckJobSpec* s) { s->program_text = "progrm oops"; }, "program:"},
      {[](CheckJobSpec* s) { s->allow = VarSet{7}; }, "allow:"},
      {[](CheckJobSpec* s) { s->mechanism = "warp"; }, "mechanism:"},
      {[](CheckJobSpec* s) { s->grid_lo = 3; s->grid_hi = 1; }, "grid:"},
      {[](CheckJobSpec* s) { s->num_threads = -2; }, "threads:"},
      {[](CheckJobSpec* s) { s->deadline_ms = -1; }, "deadline_ms:"},
      {[](CheckJobSpec* s) { s->fault_spec = "sproing"; }, "fault_spec:"},
  };
  CheckService service(ServiceConfig{});
  for (const auto& test_case : cases) {
    CheckJobSpec spec = BaseSpec(kCleanProgram, CheckerKind::kSoundness);
    test_case.mutate(&spec);
    const BatchReport report = service.RunBatch({spec});
    EXPECT_EQ(report.jobs[0].status, JobStatus::kInvalid);
    EXPECT_EQ(report.jobs[0].exit_code, 1);
    EXPECT_NE(report.jobs[0].error.find(test_case.expect_in_error), std::string::npos)
        << "error was: " << report.jobs[0].error;
  }
}

TEST(SchedulerTest, ConcurrentBatchMatchesSerialBatch) {
  // 12 distinct jobs, executed with 1 worker and with 4: identical reports.
  std::vector<CheckJobSpec> specs;
  for (int hi = 1; hi <= 3; ++hi) {
    for (const CheckerKind checker :
         {CheckerKind::kSoundness, CheckerKind::kIntegrity, CheckerKind::kCompleteness,
          CheckerKind::kLeak}) {
      CheckJobSpec spec = BaseSpec(kLeakyProgram, checker);
      spec.grid_hi = hi;
      specs.push_back(spec);
    }
  }
  ServiceConfig serial_config;
  serial_config.concurrency = 1;
  CheckService serial(serial_config);
  ServiceConfig parallel_config;
  parallel_config.concurrency = 4;
  CheckService parallel(parallel_config);

  const BatchReport a = serial.RunBatch(specs);
  const BatchReport b = parallel.RunBatch(specs);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].report, b.jobs[i].report) << i;
    EXPECT_EQ(a.jobs[i].exit_code, b.jobs[i].exit_code) << i;
  }
}

// ---------------------------------------------------------------------------
// Cache boundary conditions.

TEST(ResultCacheTest, CapacityOneIsATrueLru) {
  ResultCache cache(1, /*num_shards=*/8);  // shards clamp to capacity
  EXPECT_EQ(cache.num_shards(), 1);
  cache.Insert(KeyOf('a'), ValueOf("A"));
  EXPECT_TRUE(cache.Lookup(KeyOf('a')).has_value());
  cache.Insert(KeyOf('b'), ValueOf("B"));
  EXPECT_FALSE(cache.Lookup(KeyOf('a')).has_value()) << "a should have been evicted";
  EXPECT_EQ(cache.Lookup(KeyOf('b'))->report, "B");
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ResultCacheTest, LruEvictsLeastRecentlyUsed) {
  ResultCache cache(2, /*num_shards=*/1);
  cache.Insert(KeyOf('a'), ValueOf("A"));
  cache.Insert(KeyOf('b'), ValueOf("B"));
  EXPECT_TRUE(cache.Lookup(KeyOf('a')).has_value());  // freshen a
  cache.Insert(KeyOf('c'), ValueOf("C"));             // evicts b, not a
  EXPECT_TRUE(cache.Lookup(KeyOf('a')).has_value());
  EXPECT_FALSE(cache.Lookup(KeyOf('b')).has_value());
  EXPECT_TRUE(cache.Lookup(KeyOf('c')).has_value());
}

TEST(ResultCacheTest, ReinsertRefreshesInsteadOfDuplicating) {
  ResultCache cache(2, 1);
  cache.Insert(KeyOf('a'), ValueOf("A1"));
  cache.Insert(KeyOf('a'), ValueOf("A2"));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Lookup(KeyOf('a'))->report, "A2");
}

TEST(ResultCacheTest, EvictionUnderConcurrentInsert) {
  // Hammer a small sharded cache from many threads; TSan (CI) checks the
  // locking, this test checks the capacity invariant survives the race.
  ResultCache cache(16, 4);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::atomic<int> hits{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &hits, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Fingerprinter fp;
        fp.Tag("concurrent");
        fp.I32(t % 3);  // overlapping key ranges across threads
        fp.I32(i % 40);
        const Fingerprint key = fp.Digest();
        if (i % 2 == 0) {
          cache.Insert(key, ValueOf("value"));
        } else if (cache.Lookup(key).has_value()) {
          hits.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_LE(cache.size(), 16u);
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, cache.size());
  EXPECT_GT(stats.insertions, 0u);
  EXPECT_GT(stats.evictions, 0u);
}

TEST(ResultCacheTest, PersistenceRoundTrip) {
  const std::string path = TempPath("cache.json");
  {
    ResultCache cache(8, 2);
    CachedResult value;
    value.report = "line one\nline \"quoted\" two\n";
    value.exit_code = 2;
    value.evaluated = 81;
    value.total = 81;
    cache.Insert(KeyOf('a'), value);
    cache.Insert(KeyOf('b'), ValueOf("B"));
    const Result<int> saved = cache.SaveToFile(path);
    ASSERT_TRUE(saved.ok());
    EXPECT_EQ(saved.value(), 2);
  }
  ResultCache restored(8, 2);
  const Result<int> loaded = restored.LoadFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), 2);
  const auto hit = restored.Lookup(KeyOf('a'));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->report, "line one\nline \"quoted\" two\n");
  EXPECT_EQ(hit->exit_code, 2);
  EXPECT_EQ(hit->evaluated, 81u);
  std::remove(path.c_str());
}

TEST(ResultCacheTest, MissingFileIsAColdStartNotAnError) {
  ResultCache cache(8, 2);
  const Result<int> loaded = cache.LoadFromFile(TempPath("nonexistent.json"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), 0);
}

TEST(ResultCacheTest, CorruptAndTruncatedFilesDegradeToColdStart) {
  const std::string garbage_path = TempPath("garbage.json");
  {
    std::ofstream out(garbage_path);
    out << "this is not json {]";
  }
  ResultCache cache(8, 2);
  EXPECT_FALSE(cache.LoadFromFile(garbage_path).ok());
  EXPECT_EQ(cache.size(), 0u);

  // A valid file truncated mid-write (the failure rename() exists to
  // prevent, simulated here) must also degrade, not crash.
  const std::string truncated_path = TempPath("truncated.json");
  {
    ResultCache full(8, 2);
    full.Insert(KeyOf('a'), ValueOf("A"));
    full.Insert(KeyOf('b'), ValueOf("B"));
    ASSERT_TRUE(full.SaveToFile(truncated_path).ok());
    std::ifstream in(truncated_path, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    in.close();
    std::ofstream out(truncated_path, std::ios::binary | std::ios::trunc);
    out << contents.substr(0, contents.size() / 2);
  }
  ResultCache cache2(8, 2);
  EXPECT_FALSE(cache2.LoadFromFile(truncated_path).ok());

  // Wrong version and malformed entries are rejected too.
  const std::string versioned_path = TempPath("version.json");
  {
    std::ofstream out(versioned_path);
    out << R"({"version": 999, "entries": []})";
  }
  ResultCache cache3(8, 2);
  EXPECT_FALSE(cache3.LoadFromFile(versioned_path).ok());

  const std::string badentry_path = TempPath("badentry.json");
  {
    std::ofstream out(badentry_path);
    out << R"({"version": 1, "entries": [{"key": "tooshort", "report": "r",)"
        << R"( "exit_code": 0, "evaluated": 1, "total": 1}]})";
  }
  ResultCache cache4(8, 2);
  EXPECT_FALSE(cache4.LoadFromFile(badentry_path).ok());

  std::remove(garbage_path.c_str());
  std::remove(truncated_path.c_str());
  std::remove(versioned_path.c_str());
  std::remove(badentry_path.c_str());
}

TEST(ResultCacheTest, ServiceWarmStartsFromPersistedCache) {
  const std::string path = TempPath("service_cache.json");
  CheckJobSpec spec = BaseSpec(kLeakyProgram, CheckerKind::kSoundness);
  std::string cold_report;
  {
    ServiceConfig config;
    config.cache_file = path;
    CheckService service(config);
    const BatchReport report = service.RunBatch({spec});
    EXPECT_FALSE(report.jobs[0].from_cache);
    cold_report = report.jobs[0].report;
  }  // destructor persists
  {
    ServiceConfig config;
    config.cache_file = path;
    CheckService service(config);
    const BatchReport report = service.RunBatch({spec});
    EXPECT_TRUE(report.jobs[0].from_cache);
    EXPECT_EQ(report.jobs[0].report, cold_report);
    EXPECT_EQ(report.stats.cache_preloaded, 1);
  }
  // Corrupt the persisted file: the next service cold-starts and says why.
  {
    std::ofstream out(path, std::ios::trunc);
    out << "{broken";
  }
  {
    ServiceConfig config;
    config.cache_file = path;
    CheckService service(config);
    const BatchReport report = service.RunBatch({spec});
    EXPECT_FALSE(report.jobs[0].from_cache);
    EXPECT_EQ(report.jobs[0].report, cold_report);
    EXPECT_NE(report.stats.cache_load_error.find("corrupt"), std::string::npos);
  }
  std::remove(path.c_str());
}

// Regression for the racy persistence path: SaveToFile used to stage through
// one fixed "<path>.tmp", so two concurrent writers interleaved into the
// same temporary and could rename a torn file into place. With per-writer
// temporaries every rename publishes a complete snapshot — whichever save
// wins, the file on disk always loads.
TEST(ResultCacheTest, ConcurrentSavesToOnePathNeverPublishATornFile) {
  const std::string path = TempPath("contended.json");
  ResultCache cache(64, 4);
  for (char tag = 'a'; tag <= 'p'; ++tag) {
    cache.Insert(KeyOf(tag), ValueOf(std::string(200, tag)));
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20; ++i) {
        if (!cache.SaveToFile(path).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  ResultCache restored(64, 4);
  const Result<int> loaded = restored.LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error().ToString();
  EXPECT_EQ(loaded.value(), 16);
  std::remove(path.c_str());
}

TEST(ResultCacheTest, PersistFailureBumpsCounterAndAttemptIsCounted) {
  MetricsRegistry registry;
  ResultCache cache(8, 2);
  cache.AttachObs(ObsContext{&registry, nullptr});
  cache.Insert(KeyOf('a'), ValueOf("A"));
  // A path inside a directory that does not exist: open fails immediately.
  const std::string bad_path = TempPath("no_such_dir") + "/cache.json";
  EXPECT_FALSE(cache.SaveToFile(bad_path).ok());
  EXPECT_EQ(registry.GetCounter("cache.persist_attempts")->Value(), 1u);
  EXPECT_EQ(registry.GetCounter("cache.persist_failures")->Value(), 1u);
  EXPECT_EQ(registry.GetCounter("cache.persisted_entries")->Value(), 0u);
  // A good save afterwards counts entries and adds no failure.
  const std::string good_path = TempPath("good.json");
  EXPECT_TRUE(cache.SaveToFile(good_path).ok());
  EXPECT_EQ(registry.GetCounter("cache.persist_attempts")->Value(), 2u);
  EXPECT_EQ(registry.GetCounter("cache.persist_failures")->Value(), 1u);
  EXPECT_EQ(registry.GetCounter("cache.persisted_entries")->Value(), 1u);
  std::remove(good_path.c_str());
}

// Regression for the silently-discarded shutdown persist: ~CheckService used
// to ignore SaveToFile's Result entirely, so an unwritable cache_file left
// the next run cold with no evidence why. Now the failure is one stderr line
// plus a cache.persist_failures bump.
TEST(ResultCacheTest, ServiceShutdownPersistFailureIsLoudNotSilent) {
  MetricsRegistry registry;
  ServiceConfig config;
  config.cache_file = TempPath("absent_dir") + "/cache.json";
  config.obs.metrics = &registry;
  ::testing::internal::CaptureStderr();
  {
    CheckService service(std::move(config));
    const BatchReport report =
        service.RunBatch({BaseSpec(kCleanProgram, CheckerKind::kSoundness)});
    EXPECT_EQ(report.jobs[0].status, JobStatus::kCompleted);
  }  // destructor attempts (and fails) the persist
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("failed to persist result cache"), std::string::npos) << err;
  EXPECT_EQ(registry.GetCounter("cache.persist_failures")->Value(), 1u);
}

// ---------------------------------------------------------------------------
// The "table" mechanism kind and the out-of-domain fail-closed path.

// Within the canonical tabulation range {-1..2}^k, a "table" job replays the
// surveillance mechanism exactly, so the two reports agree byte for byte.
TEST(TableKindTest, TableJobMatchesSurveillanceInsideCanonicalDomain) {
  CheckJobSpec surveillance = BaseSpec(kLeakyProgram, CheckerKind::kSoundness);
  CheckJobSpec table = surveillance;
  table.mechanism = "table";
  const JobResult live = ExecuteJob(surveillance);
  const JobResult replayed = ExecuteJob(table);
  ASSERT_EQ(live.status, JobStatus::kCompleted);
  ASSERT_EQ(replayed.status, JobStatus::kCompleted);
  // The report header names the mechanism ("table(leaky)" vs
  // "surveillance[M](leaky)"); everything after it — the verdict, the counts,
  // the witness if any — must agree byte for byte.
  EXPECT_NE(replayed.report.find("table(leaky)"), std::string::npos);
  const auto body = [](const std::string& report) {
    return report.substr(report.find('\n'));
  };
  EXPECT_EQ(body(replayed.report), body(live.report));
  EXPECT_EQ(replayed.exit_code, live.exit_code);
  // Distinct mechanism recipes must never share a cache identity.
  EXPECT_NE(replayed.cache_key, live.cache_key);
}

// Regression for the process-killing abort: TableMechanism used to fprintf
// and abort() on an out-of-domain input, so one misconfigured job killed the
// whole batch. Now the typed OutOfDomainError fails that job closed
// (kAborted, exit 4) while sibling jobs complete untouched.
TEST(ServiceDifferentialTest, OutOfDomainJobAbortsWithoutKillingSiblings) {
  CheckJobSpec good = BaseSpec(kLeakyProgram, CheckerKind::kSoundness);
  good.id = "good";
  CheckJobSpec oob = BaseSpec(kLeakyProgram, CheckerKind::kSoundness);
  oob.id = "oob";
  oob.mechanism = "table";
  oob.grid_lo = -1;
  oob.grid_hi = 3;  // 3 is outside the canonical {-1..2} tabulation
  CheckJobSpec trailing = BaseSpec(kCleanProgram, CheckerKind::kLeak);
  trailing.id = "trailing";

  MetricsRegistry registry;
  ServiceConfig config;
  config.obs.metrics = &registry;
  CheckService service(std::move(config));
  const BatchReport report = service.RunBatch({good, oob, trailing});

  ASSERT_EQ(report.jobs.size(), 3u);
  EXPECT_EQ(report.jobs[0].status, JobStatus::kCompleted);
  EXPECT_EQ(report.jobs[0].report, ExpectedReport(good, 1));
  EXPECT_EQ(report.jobs[1].status, JobStatus::kAborted);
  EXPECT_EQ(report.jobs[1].exit_code, 4);
  EXPECT_EQ(report.jobs[2].status, JobStatus::kCompleted);
  EXPECT_EQ(report.jobs[2].report, ExpectedReport(trailing, 1));
  EXPECT_EQ(report.stats.aborted, 1);
  EXPECT_EQ(report.stats.completed, 2);
  EXPECT_EQ(report.ExitCode(), 4);
  EXPECT_EQ(registry.GetCounter("sweep.out_of_domain")->Value(), 1u);
  EXPECT_GE(registry.GetCounter("sweep.exceptions")->Value(), 1u);
}

// ---------------------------------------------------------------------------
// Manifest boundary.

TEST(ManifestTest, ParsesDefaultsAndJobs) {
  const std::string text = R"({
    "service": {"concurrency": 2, "max_pending": 9, "cache_capacity": 33},
    "defaults": {"program": "program p(a, b) { y = a; }", "allow": [0],
                 "grid": {"lo": 0, "hi": 1}},
    "jobs": [
      {"id": "first"},
      {"id": "second", "checker": "leak", "observe_time": true, "priority": 3},
      {"id": "third", "checker": "policy-compare", "allow2": [0, 1]}
    ]
  })";
  Result<BatchManifest> manifest = ParseBatchManifest(text);
  ASSERT_TRUE(manifest.ok()) << manifest.error().message;
  EXPECT_EQ(manifest.value().service.concurrency, 2);
  EXPECT_EQ(manifest.value().service.max_pending, 9);
  EXPECT_EQ(manifest.value().service.cache_capacity, 33u);
  ASSERT_EQ(manifest.value().jobs.size(), 3u);
  const CheckJobSpec& second = manifest.value().jobs[1];
  EXPECT_EQ(second.id, "second");
  EXPECT_EQ(second.checker, CheckerKind::kLeak);
  EXPECT_TRUE(second.observe_time);
  EXPECT_EQ(second.priority, 3);
  EXPECT_EQ(second.grid_lo, 0);
  EXPECT_EQ(second.grid_hi, 1);
  EXPECT_EQ(manifest.value().jobs[2].allow2, (VarSet{0, 1}));

  const BatchReport report = CheckService(manifest.value().service)
                                 .RunBatch(manifest.value().jobs);
  EXPECT_EQ(report.stats.completed, 3);
}

TEST(ManifestTest, ProgramFileIsALocalManifestOnlyKey) {
  const std::string path = ::testing::TempDir() + "/manifest_program.fl";
  std::ofstream(path) << "program p(a) { y = a; }";

  // A local manifest is operator-authored and may load files at parse time.
  const Result<BatchManifest> manifest = ParseBatchManifest(
      R"({"jobs": [{"program_file": ")" + path + R"(", "allow": [0]}]})");
  ASSERT_TRUE(manifest.ok()) << manifest.error().message;
  ASSERT_EQ(manifest.value().jobs.size(), 1u);
  EXPECT_EQ(manifest.value().jobs[0].program_text, "program p(a) { y = a; }");

  // An untrusted submission must not: the key itself is refused, with the
  // same error whether or not the path exists (no existence oracle).
  const auto reject = [](const std::string& file_path) {
    Json object = Json::MakeObject();
    object.Set("program_file", Json::MakeString(file_path));
    CheckJobSpec spec;
    const Result<bool> applied = ApplyManifestJobFields(
        object, "submit.job", &spec, JobFieldSource::kUntrustedSubmission);
    EXPECT_FALSE(applied.ok());
    EXPECT_TRUE(spec.program_text.empty()) << "file content must never load";
    return applied.ok() ? std::string() : applied.error().message;
  };
  const std::string exists = reject(path);
  const std::string missing = reject(path + ".does-not-exist");
  EXPECT_EQ(exists, missing);
  EXPECT_NE(exists.find("program_file"), std::string::npos);
}

TEST(ManifestTest, RejectsUnknownAndMistypedFields) {
  EXPECT_FALSE(ParseBatchManifest("[1]").ok());
  EXPECT_FALSE(ParseBatchManifest("{}").ok());  // no jobs array
  const auto error_of = [](const std::string& text) {
    const Result<BatchManifest> result = ParseBatchManifest(text);
    EXPECT_FALSE(result.ok());
    return result.ok() ? std::string() : result.error().message;
  };
  EXPECT_NE(error_of(R"({"jobs": [{"checkr": "soundness"}]})").find("unknown key 'checkr'"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"jobs": [{"checker": "vibes"}]})").find("unknown checker"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"jobs": [{"allow": [0, "one"]}]})").find("allow"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"jobs": [{"threads": "four"}]})").find("threads"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"service": {"cache_capacity": 0}, "jobs": []})")
                .find("cache_capacity"),
            std::string::npos);
  // Errors name the offending job.
  EXPECT_NE(error_of(R"({"jobs": [{}, {"grid": 5}]})").find("jobs[1]"), std::string::npos);
}

TEST(ManifestTest, BatchReportJsonIsWellFormed) {
  CheckJobSpec good = BaseSpec(kLeakyProgram, CheckerKind::kSoundness);
  good.id = "good";
  CheckJobSpec bad = good;
  bad.id = "bad";
  bad.mechanism = "warp";
  ServiceConfig config;
  config.max_pending = 2;
  CheckService service(config);
  const BatchReport report = service.RunBatch({good, bad, good});

  const Json doc = BatchReportToJson(report);
  // The serialized report must parse back — the CI step validating
  // BENCH_*.json relies on the same property for bench output.
  const Result<Json> parsed = Json::Parse(doc.Serialize());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().Find("jobs")->Items().size(), 3u);
  EXPECT_EQ(parsed.value().Find("jobs")->Items()[0].Find("status")->AsString(), "completed");
  EXPECT_EQ(parsed.value().Find("jobs")->Items()[1].Find("status")->AsString(), "invalid");
  EXPECT_EQ(parsed.value().Find("jobs")->Items()[2].Find("status")->AsString(), "rejected");
  EXPECT_EQ(parsed.value().Find("exit_code")->AsInt(), 5);
  EXPECT_EQ(parsed.value().Find("scheduler")->Find("rejected")->AsInt(), 1);
  EXPECT_NE(parsed.value().Find("cache"), nullptr);
}

}  // namespace
}  // namespace secpol
