// Unit tests for the flowlang lexer, parser, pretty-printer, and lowering.

#include <gtest/gtest.h>

#include "src/flowchart/interpreter.h"
#include "src/flowlang/ast.h"
#include "src/flowlang/lexer.h"
#include "src/flowlang/lower.h"
#include "src/flowlang/parser.h"

namespace secpol {
namespace {

TEST(LexerTest, BasicTokens) {
  const auto tokens = Tokenize("program p(x) { y = x + 41; }");
  ASSERT_TRUE(tokens.ok());
  const auto& t = tokens.value();
  ASSERT_GE(t.size(), 12u);
  EXPECT_EQ(t[0].kind, TokenKind::kKwProgram);
  EXPECT_EQ(t[1].kind, TokenKind::kIdent);
  EXPECT_EQ(t[1].text, "p");
  EXPECT_EQ(t.back().kind, TokenKind::kEof);
}

TEST(LexerTest, TwoCharOperators) {
  const auto tokens = Tokenize("== != <= >= && ||");
  ASSERT_TRUE(tokens.ok());
  const auto& t = tokens.value();
  EXPECT_EQ(t[0].kind, TokenKind::kEqEq);
  EXPECT_EQ(t[1].kind, TokenKind::kNotEq);
  EXPECT_EQ(t[2].kind, TokenKind::kLe);
  EXPECT_EQ(t[3].kind, TokenKind::kGe);
  EXPECT_EQ(t[4].kind, TokenKind::kAmpAmp);
  EXPECT_EQ(t[5].kind, TokenKind::kPipePipe);
}

TEST(LexerTest, CommentsAndPositions) {
  const auto tokens = Tokenize("a // comment to end of line\nb");
  ASSERT_TRUE(tokens.ok());
  const auto& t = tokens.value();
  ASSERT_EQ(t.size(), 3u);  // a, b, eof
  EXPECT_EQ(t[0].text, "a");
  EXPECT_EQ(t[1].text, "b");
  EXPECT_EQ(t[1].line, 2);
  EXPECT_EQ(t[1].column, 1);
}

TEST(LexerTest, IntegerValue) {
  const auto tokens = Tokenize("12345");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].int_value, 12345);
}

TEST(LexerTest, RejectsOutOfRangeInteger) {
  const auto tokens = Tokenize("99999999999999999999999999");
  ASSERT_FALSE(tokens.ok());
  EXPECT_NE(tokens.error().message.find("out of range"), std::string::npos);
}

TEST(LexerTest, RejectsUnknownCharacter) {
  const auto tokens = Tokenize("a @ b");
  ASSERT_FALSE(tokens.ok());
  EXPECT_NE(tokens.error().message.find("unexpected character"), std::string::npos);
}

TEST(ParserTest, MinimalProgram) {
  const auto parsed = ParseProgram("program p() { y = 1; }");
  ASSERT_TRUE(parsed.ok());
  const SourceProgram& p = parsed.value();
  EXPECT_EQ(p.name, "p");
  EXPECT_EQ(p.num_inputs(), 0);
  ASSERT_EQ(p.body.size(), 1u);
  EXPECT_EQ(p.body[0].kind, Stmt::Kind::kAssign);
  EXPECT_EQ(p.body[0].var, p.output_var());
}

TEST(ParserTest, ParamsAndLocals) {
  const auto parsed = ParseProgram("program p(a, b) { locals r, s; r = a; s = b; y = r + s; }");
  ASSERT_TRUE(parsed.ok());
  const SourceProgram& p = parsed.value();
  EXPECT_EQ(p.num_inputs(), 2);
  EXPECT_EQ(p.num_locals(), 2);
  EXPECT_EQ(p.FindVar("a"), 0);
  EXPECT_EQ(p.FindVar("s"), 3);
  EXPECT_EQ(p.FindVar("y"), 4);
}

TEST(ParserTest, RejectsUndeclaredVariable) {
  const auto parsed = ParseProgram("program p() { y = z; }");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message.find("undeclared"), std::string::npos);
}

TEST(ParserTest, RejectsAssignToInput) {
  const auto parsed = ParseProgram("program p(x) { x = 1; }");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message.find("input"), std::string::npos);
}

TEST(ParserTest, RejectsDuplicateNames) {
  const auto parsed = ParseProgram("program p(x) { locals x; y = 1; }");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error().message.find("duplicate"), std::string::npos);
}

TEST(ParserTest, RejectsTrailingInput) {
  const auto parsed = ParseProgram("program p() { y = 1; } extra");
  ASSERT_FALSE(parsed.ok());
}

TEST(ParserTest, ErrorCarriesPosition) {
  const auto parsed = ParseProgram("program p() {\n  y = ;\n}");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.error().line, 2);
}

// Precedence is easiest to verify through evaluation.
struct PrecCase {
  const char* source;
  Value expected;
};

class PrecedenceTest : public ::testing::TestWithParam<PrecCase> {};

TEST_P(PrecedenceTest, EvaluatesWithCPrecedence) {
  const std::string source =
      std::string("program p() { y = ") + GetParam().source + "; }";
  const Program lowered = MustCompile(source);
  EXPECT_EQ(RunProgram(lowered, {}).output, GetParam().expected) << GetParam().source;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PrecedenceTest,
    ::testing::Values(PrecCase{"1 + 2 * 3", 7}, PrecCase{"(1 + 2) * 3", 9},
                      PrecCase{"10 - 2 - 3", 5},  // left associative
                      PrecCase{"1 + 2 == 3", 1},  // + binds tighter than ==
                      PrecCase{"1 < 2 == 1", 1},  // < tighter than ==
                      PrecCase{"1 | 2 ^ 3 & 2", 1}, PrecCase{"0 || 1 && 0", 0},
                      PrecCase{"-2 * 3", -6}, PrecCase{"!0 + 1", 2},
                      PrecCase{"min(3, max(1, 2))", 2}, PrecCase{"select(2 > 1, 7, 8)", 7},
                      PrecCase{"7 % 3 + 1", 2}, PrecCase{"6 / 2 / 3", 1}));

TEST(LowerTest, IfElseSemantics) {
  const Program p = MustCompile(
      "program p(x) { if (x > 0) { y = 1; } else { y = 2; } }");
  EXPECT_EQ(RunProgram(p, Input{5}).output, 1);
  EXPECT_EQ(RunProgram(p, Input{0}).output, 2);
}

TEST(LowerTest, IfWithoutElseFallsThrough) {
  const Program p = MustCompile("program p(x) { y = 9; if (x == 0) { y = 1; } }");
  EXPECT_EQ(RunProgram(p, Input{0}).output, 1);
  EXPECT_EQ(RunProgram(p, Input{3}).output, 9);
}

TEST(LowerTest, WhileLoop) {
  const Program p = MustCompile(
      "program p(n) { locals c; c = n; while (c != 0) { y = y + c; c = c - 1; } }");
  EXPECT_EQ(RunProgram(p, Input{4}).output, 10);
  EXPECT_EQ(RunProgram(p, Input{0}).output, 0);
}

TEST(LowerTest, NestedControlFlow) {
  const Program p = MustCompile(R"(
    program p(a, b) {
      locals i;
      i = a;
      while (i != 0) {
        if (b > 0) { y = y + 2; } else { y = y + 1; }
        i = i - 1;
      }
    })");
  EXPECT_EQ(RunProgram(p, Input{3, 1}).output, 6);
  EXPECT_EQ(RunProgram(p, Input{3, 0}).output, 3);
}

TEST(LowerTest, ExplicitHaltStopsExecution) {
  const Program p = MustCompile("program p(x) { y = 1; if (x == 0) { halt; } y = 2; }");
  EXPECT_EQ(RunProgram(p, Input{0}).output, 1);
  EXPECT_EQ(RunProgram(p, Input{5}).output, 2);
}

TEST(LowerTest, EmptyBodyYieldsZero) {
  const Program p = MustCompile("program p(x) { }");
  const ExecResult r = RunProgram(p, Input{42});
  EXPECT_TRUE(r.halted);
  EXPECT_EQ(r.output, 0);
}

TEST(PrettyPrintTest, RoundTripPreservesSemantics) {
  const char* source = R"(
    program rt(a, b) {
      locals c, r;
      r = a * 2;
      if (r > b) { y = r - b; } else { y = b - r; halt; }
      c = 3;
      while (c != 0) { y = y + 1; c = c - 1; }
    })";
  const SourceProgram original = MustParseProgram(source);
  const std::string printed = original.ToString();
  const SourceProgram reparsed = MustParseProgram(printed);
  EXPECT_TRUE(FunctionallyEquivalentOnGrid(Lower(original), Lower(reparsed),
                                           {-3, -1, 0, 1, 2, 5}));
}

TEST(PrettyPrintTest, ShowsLocalsAndStructure) {
  const SourceProgram p = MustParseProgram(
      "program q(x) { locals r; if (x == 0) { r = 1; } else { r = 2; } y = r; }");
  const std::string text = p.ToString();
  EXPECT_NE(text.find("locals r;"), std::string::npos);
  EXPECT_NE(text.find("} else {"), std::string::npos);
  EXPECT_NE(text.find("y = r;"), std::string::npos);
}

TEST(LowerTest, StepCountsMatchBoxSemantics) {
  // start, assign, halt = 3 steps.
  const Program p = MustCompile("program p() { y = 5; }");
  EXPECT_EQ(RunProgram(p, {}).steps, 3u);
}

}  // namespace
}  // namespace secpol
