// Tests for the random program generator: validity, totality, determinism.

#include <gtest/gtest.h>

#include <functional>

#include "src/corpus/generator.h"
#include "src/flowchart/interpreter.h"
#include "src/flowlang/lower.h"
#include "src/flowlang/parser.h"
#include "src/mechanism/domain.h"

namespace secpol {
namespace {

TEST(CorpusTest, DeterministicBySeed) {
  const CorpusConfig config;
  // Compare bodies (strip the differing program names at the first '(').
  auto body_of = [](const SourceProgram& p) {
    const std::string text = p.ToString();
    return text.substr(text.find('('));
  };
  const SourceProgram a = GenerateProgram(config, 99, "a");
  const SourceProgram b = GenerateProgram(config, 99, "b");
  EXPECT_EQ(body_of(a), body_of(b));
  const SourceProgram c = GenerateProgram(config, 100, "c");
  EXPECT_NE(body_of(a), body_of(c));
}

TEST(CorpusTest, RespectsVariableBudget) {
  CorpusConfig config;
  config.num_inputs = 4;
  config.num_value_locals = 3;
  config.num_counter_locals = 2;
  const SourceProgram p = GenerateProgram(config, 1, "p");
  EXPECT_EQ(p.num_inputs(), 4);
  EXPECT_EQ(p.num_locals(), 5);
}

class CorpusValidityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CorpusValidityTest, LowersValidates) {
  const CorpusConfig config;
  const SourceProgram source = GenerateProgram(config, GetParam(), "gen");
  const Program lowered = Lower(source);
  EXPECT_TRUE(lowered.Validate().ok());
}

TEST_P(CorpusValidityTest, IsTotalWithinFuel) {
  const CorpusConfig config;
  const Program lowered = Lower(GenerateProgram(config, GetParam(), "gen"));
  // Sample a grid of inputs, including negatives: the bounded-counter loops
  // must terminate regardless.
  InputDomain::Uniform(config.num_inputs, {-3, 0, 5}).ForEach([&](InputView input) {
    const ExecResult result = RunProgram(lowered, input, /*fuel=*/100000);
    EXPECT_TRUE(result.halted) << "seed " << GetParam();
  });
}

TEST_P(CorpusValidityTest, ReparsesFromPrettyPrint) {
  const CorpusConfig config;
  const SourceProgram source = GenerateProgram(config, GetParam(), "gen");
  const auto reparsed = ParseProgram(source.ToString());
  ASSERT_TRUE(reparsed.ok()) << source.ToString() << "\n"
                             << reparsed.error().ToString();
  EXPECT_TRUE(FunctionallyEquivalentOnGrid(Lower(source), Lower(reparsed.value()),
                                           {-2, 0, 1, 3}));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorpusValidityTest,
                         ::testing::Range<std::uint64_t>(0, 60));

TEST(CorpusTest, CountersOnlyTouchedByLoopScaffold) {
  // Counters (the trailing locals) must only appear as `c = K`, the loop
  // test, and `c = c - 1`. We verify the invariant that matters: loops
  // always terminate, even with adversarial inputs, because nothing else
  // writes the counter. Checked behaviourally over many seeds above; here
  // check structurally that counter assignments are constant or decrement.
  CorpusConfig config;
  config.num_counter_locals = 2;
  const int first_counter = config.num_inputs + config.num_value_locals;

  std::function<void(const std::vector<Stmt>&)> scan = [&](const std::vector<Stmt>& block) {
    for (const Stmt& stmt : block) {
      if (stmt.kind == Stmt::Kind::kAssign && stmt.var >= first_counter &&
          stmt.var < first_counter + config.num_counter_locals) {
        const bool is_const_init = stmt.expr.kind() == Expr::Kind::kConst;
        const bool is_decrement = stmt.expr.kind() == Expr::Kind::kBinary &&
                                  stmt.expr.binary_op() == BinaryOp::kSub;
        EXPECT_TRUE(is_const_init || is_decrement);
      }
      scan(stmt.then_body);
      scan(stmt.else_body);
      scan(stmt.body);
    }
  };
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const SourceProgram p = GenerateProgram(config, seed, "gen");
    scan(p.body);
  }
}

TEST(CorpusTest, MakeCorpusProducesDistinctPrograms) {
  const CorpusConfig config;
  const auto corpus = MakeCorpus(config, 10, 500);
  ASSERT_EQ(corpus.size(), 10u);
  int distinct = 0;
  for (size_t i = 1; i < corpus.size(); ++i) {
    if (corpus[i].ToString() != corpus[0].ToString()) {
      ++distinct;
    }
  }
  EXPECT_GT(distinct, 5);
}

TEST(CorpusTest, LoopsAppearInTheCorpus) {
  // With default probabilities, some seed in a small range must generate a
  // while loop — guards against silently losing loop generation.
  bool found = false;
  for (std::uint64_t seed = 0; seed < 30 && !found; ++seed) {
    const SourceProgram p = GenerateProgram(CorpusConfig{}, seed, "gen");
    found = p.ToString().find("while") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(CorpusTest, BranchesAppearInTheCorpus) {
  bool found = false;
  for (std::uint64_t seed = 0; seed < 30 && !found; ++seed) {
    const SourceProgram p = GenerateProgram(CorpusConfig{}, seed, "gen");
    // Loop scaffolding uses `if (1)`; look for a non-constant test.
    const std::string text = p.ToString();
    size_t pos = 0;
    while ((pos = text.find("if (", pos)) != std::string::npos) {
      if (text.compare(pos, 6, "if (1)") != 0) {
        found = true;
        break;
      }
      ++pos;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace secpol
