// Robustness runtime tests: deadlines, cancellation, the thread-pool
// exception barrier, retry policy, and the fuel-exhaustion path.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/flowlang/lower.h"
#include "src/flowlang/parser.h"
#include "src/mechanism/completeness.h"
#include "src/mechanism/fault.h"
#include "src/mechanism/maximal.h"
#include "src/mechanism/soundness.h"
#include "src/util/deadline.h"
#include "src/util/thread_pool.h"

namespace secpol {
namespace {

// ---------------------------------------------------------------------------
// Deadline / CancelToken / PollGate

TEST(DeadlineTest, DefaultIsUnbounded) {
  Deadline deadline;
  EXPECT_TRUE(deadline.unbounded());
  EXPECT_FALSE(deadline.Expired());
  EXPECT_FALSE(Deadline::Never().Expired());
}

TEST(DeadlineTest, NonPositiveMillisExpiresImmediately) {
  EXPECT_TRUE(Deadline::AfterMillis(0).Expired());
  EXPECT_TRUE(Deadline::AfterMillis(-5).Expired());
}

TEST(DeadlineTest, FutureDeadlineExpiresAfterSleep) {
  const Deadline deadline = Deadline::AfterMillis(10);
  EXPECT_FALSE(deadline.Expired());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(deadline.Expired());
}

TEST(CancelTokenTest, CopiesShareTheFlag) {
  CancelToken a;
  CancelToken b = a;
  EXPECT_FALSE(b.Cancelled());
  a.RequestCancel();
  EXPECT_TRUE(a.Cancelled());
  EXPECT_TRUE(b.Cancelled());
}

TEST(PollGateTest, StopsOnExpiredDeadline) {
  PollGate gate(Deadline::AfterMillis(0));
  EXPECT_TRUE(gate.ShouldStop());
  EXPECT_EQ(gate.reason(), StopReason::kDeadline);
  // Sticky: stays stopped.
  EXPECT_TRUE(gate.ShouldStop());
}

TEST(PollGateTest, StopsOnEitherToken) {
  CancelToken primary;
  CancelToken secondary;
  {
    PollGate gate(Deadline::Never(), primary, secondary);
    EXPECT_FALSE(gate.ShouldStop());
    primary.RequestCancel();
    EXPECT_TRUE(gate.Poll());
    EXPECT_EQ(gate.reason(), StopReason::kCancelled);
  }
  {
    CancelToken other_primary;
    PollGate gate(Deadline::Never(), other_primary, secondary);
    secondary.RequestCancel();
    EXPECT_TRUE(gate.Poll());
    EXPECT_EQ(gate.reason(), StopReason::kCancelled);
  }
}

TEST(PollGateTest, AmortizesPollsOverStride) {
  CancelToken token;
  PollGate gate(Deadline::Never(), token, CancelToken(), /*stride=*/8);
  EXPECT_FALSE(gate.ShouldStop());  // first call polls
  token.RequestCancel();
  // The next stride-1 calls ride the cached verdict.
  for (int i = 0; i < 7; ++i) {
    EXPECT_FALSE(gate.ShouldStop()) << "call " << i;
  }
  EXPECT_TRUE(gate.ShouldStop());  // stride boundary: real poll sees the token
}

// ---------------------------------------------------------------------------
// ThreadPool exception barrier

TEST(ThreadPoolExceptionTest, WaitRethrowsFirstException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&ran, i] {
      if (i == 3) {
        throw std::runtime_error("task 3 failed");
      }
      ran.fetch_add(1);
    });
  }
  try {
    pool.Wait();
    FAIL() << "Wait() should have rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 3 failed");
  }
  // Every non-throwing task still ran exactly once.
  EXPECT_EQ(ran.load(), 15);
}

TEST(ThreadPoolExceptionTest, ExceptionIsReportedExactlyOnce) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // Claimed: a second Wait() is clean, and the pool still works.
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  EXPECT_NO_THROW(pool.Wait());
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolExceptionTest, DestructionWithUnclaimedExceptionIsSafe) {
  // No Wait(): the destructor must drain, discard the exception, and join
  // without terminating the process.
  ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) {
    pool.Submit([] { throw std::runtime_error("unclaimed"); });
  }
}

TEST(ThreadPoolExceptionTest, CancelOnExceptionDrainsSiblings) {
  ThreadPool pool(2);
  CancelToken drain;
  pool.SetCancelOnException(drain);
  std::atomic<int> drained{0};
  pool.Submit([] { throw std::runtime_error("first"); });
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&drain, &drained] {
      // Cooperative task: observe the drain signal instead of doing work.
      for (int spin = 0; spin < 1000 && !drain.Cancelled(); ++spin) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
      if (drain.Cancelled()) {
        drained.fetch_add(1);
      }
    });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  EXPECT_EQ(drained.load(), 32);
}

TEST(ThreadPoolExceptionTest, NonStdExceptionIsContained) {
  ThreadPool pool(2);
  pool.Submit([] { throw 42; });  // not derived from std::exception
  EXPECT_THROW(pool.Wait(), int);
}

// ---------------------------------------------------------------------------
// InputDomain::RankOf

TEST(RankOfTest, InvertsEnumerationOrder) {
  const InputDomain domain = InputDomain::PerInput({{-1, 0, 2}, {5, 7}});
  std::uint64_t expected = 0;
  domain.ForEachRange(0, domain.size(), [&](std::uint64_t rank, InputView input) -> bool {
    EXPECT_EQ(rank, expected);
    const auto decoded = domain.RankOf(input);
    EXPECT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded.value_or(~0ull), rank);
    ++expected;
    return true;
  });
  EXPECT_EQ(expected, domain.size());
}

TEST(RankOfTest, RejectsOffGridInputs) {
  const InputDomain domain = InputDomain::Range(2, 0, 2);
  EXPECT_FALSE(domain.RankOf(std::vector<Value>{0, 99}).has_value());
  EXPECT_FALSE(domain.RankOf(std::vector<Value>{-1, 0}).has_value());
}

// ---------------------------------------------------------------------------
// Deadline-bounded and cancelled checker runs

std::shared_ptr<const ProtectionMechanism> SlowMechanism(int num_inputs,
                                                         std::uint32_t micros) {
  return std::make_shared<FunctionMechanism>(
      "slow", num_inputs, [micros](InputView input) {
        std::this_thread::sleep_for(std::chrono::microseconds(micros));
        return Outcome::Val(input[0], 1);
      });
}

TEST(DeadlineBoundedCheckTest, SerialRunStopsWithPartialProgress) {
  // 10^4 grid points at 100us each would take ~1s; the 200ms deadline must
  // stop the sweep long before that, with the stop observed within one poll
  // stride (64 points ~ 6.4ms) of the deadline.
  const InputDomain domain = InputDomain::Range(4, 0, 9);
  const auto mechanism = SlowMechanism(4, 100);
  const AllowPolicy policy = AllowPolicy::AllowAll(4);
  CheckOptions options = CheckOptions::Serial();
  options.deadline = Deadline::AfterMillis(200);

  const auto start = std::chrono::steady_clock::now();
  const SoundnessReport report =
      CheckSoundness(*mechanism, policy, domain, Observability::kValueOnly, options);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);

  EXPECT_EQ(report.progress.status, CheckStatus::kDeadlineExceeded);
  EXPECT_GT(report.progress.evaluated, 0u);
  EXPECT_LT(report.progress.evaluated, domain.size());
  EXPECT_FALSE(report.sound);  // fail closed
  EXPECT_FALSE(report.counterexample.has_value());
  EXPECT_NE(report.ToString().find("UNKNOWN"), std::string::npos);
  EXPECT_LT(elapsed.count(), 400) << "sweep overran 2x the deadline";
}

TEST(DeadlineBoundedCheckTest, ParallelRunStopsWithPartialProgress) {
  const InputDomain domain = InputDomain::Range(4, 0, 9);
  const auto mechanism = SlowMechanism(4, 100);
  const AllowPolicy policy = AllowPolicy::AllowAll(4);
  CheckOptions options = CheckOptions::Threads(4);
  options.deadline = Deadline::AfterMillis(100);

  const auto start = std::chrono::steady_clock::now();
  const SoundnessReport report =
      CheckSoundness(*mechanism, policy, domain, Observability::kValueOnly, options);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);

  EXPECT_EQ(report.progress.status, CheckStatus::kDeadlineExceeded);
  EXPECT_GT(report.progress.evaluated, 0u);
  EXPECT_LT(report.progress.evaluated, domain.size());
  EXPECT_LT(elapsed.count(), 2000);
}

TEST(CancelledCheckTest, PreCancelledRunAbortsImmediately) {
  const InputDomain domain = InputDomain::Range(3, 0, 9);
  const auto mechanism = SlowMechanism(3, 0);
  const AllowPolicy policy = AllowPolicy::AllowAll(3);
  for (int threads : {1, 3}) {
    CheckOptions options = CheckOptions::Threads(threads);
    options.cancel.RequestCancel();
    const SoundnessReport report =
        CheckSoundness(*mechanism, policy, domain, Observability::kValueOnly, options);
    EXPECT_EQ(report.progress.status, CheckStatus::kAborted) << threads;
    EXPECT_EQ(report.progress.message, "cancelled") << threads;
    EXPECT_EQ(report.progress.evaluated, 0u) << threads;
  }
}

// ---------------------------------------------------------------------------
// Retry policy

TEST(RetryTest, TransientFaultIsAbsorbedWithinBudget) {
  const InputDomain domain = InputDomain::Range(1, 0, 4);
  auto specs = ParseFaultSpecs("throw!@2");
  ASSERT_TRUE(specs.ok()) << specs.error().ToString();
  auto inner = std::make_shared<FunctionMechanism>(
      "inner", 1, [](InputView input) { return Outcome::Val(input[0], 1); });
  auto faulty = std::make_shared<FaultInjectingMechanism>(inner, domain, specs.value());
  RetryingMechanism retrying(faulty, /*max_retries=*/1);

  for (Value v = 0; v <= 4; ++v) {
    const Outcome outcome = retrying.Run(std::vector<Value>{v});
    EXPECT_TRUE(outcome.IsValue());
    EXPECT_EQ(outcome.value, v);
  }
  EXPECT_EQ(retrying.retries_used(), 1u);
  EXPECT_EQ(faulty->faults_fired(), 1u);
}

TEST(RetryTest, ExhaustedBudgetRethrows) {
  const InputDomain domain = InputDomain::Range(1, 0, 4);
  // Fires on the first three attempts at rank 2; one retry is not enough.
  auto specs = ParseFaultSpecs("throw!@2x3");
  ASSERT_TRUE(specs.ok());
  auto inner = std::make_shared<FunctionMechanism>(
      "inner", 1, [](InputView input) { return Outcome::Val(input[0], 1); });
  auto faulty = std::make_shared<FaultInjectingMechanism>(inner, domain, specs.value());
  RetryingMechanism retrying(faulty, /*max_retries=*/1);
  EXPECT_THROW(retrying.Run(std::vector<Value>{2}), TransientFaultError);
  // A third attempt exhausts the fault's own budget and succeeds.
  EXPECT_EQ(retrying.Run(std::vector<Value>{2}).value, 2);
}

TEST(RetryTest, PersistentFaultIsNeverRetried) {
  const InputDomain domain = InputDomain::Range(1, 0, 4);
  auto specs = ParseFaultSpecs("throw@2");
  ASSERT_TRUE(specs.ok());
  auto inner = std::make_shared<FunctionMechanism>(
      "inner", 1, [](InputView input) { return Outcome::Val(input[0], 1); });
  auto faulty = std::make_shared<FaultInjectingMechanism>(inner, domain, specs.value());
  RetryingMechanism retrying(faulty, /*max_retries=*/5);
  EXPECT_THROW(retrying.Run(std::vector<Value>{2}), FaultInjectedError);
  EXPECT_EQ(faulty->faults_fired(), 1u);  // no retry attempts were made
}

// ---------------------------------------------------------------------------
// Fault-spec parsing

TEST(FaultSpecTest, ParsesClausesAndDefaults) {
  const auto specs = ParseFaultSpecs("throw@5+9,fuel~1/10:42,slow~1/4u200,wrong@0x2");
  ASSERT_TRUE(specs.ok()) << specs.error().ToString();
  ASSERT_EQ(specs.value().size(), 4u);
  const FaultSpec& t = specs.value()[0];
  EXPECT_EQ(t.kind, FaultKind::kThrow);
  EXPECT_EQ(t.ranks, (std::vector<std::uint64_t>{5, 9}));
  EXPECT_FALSE(t.transient);
  const FaultSpec& f = specs.value()[1];
  EXPECT_EQ(f.kind, FaultKind::kFuelExhaustion);
  EXPECT_EQ(f.rate_num, 1u);
  EXPECT_EQ(f.rate_den, 10u);
  EXPECT_EQ(f.seed, 42u);
  const FaultSpec& s = specs.value()[2];
  EXPECT_EQ(s.kind, FaultKind::kSlowEval);
  EXPECT_EQ(s.slow_micros, 200u);
  const FaultSpec& w = specs.value()[3];
  EXPECT_EQ(w.kind, FaultKind::kWrongValue);
  EXPECT_EQ(w.fires_per_rank, 2);
}

TEST(FaultSpecTest, TransientDefaultsToSingleFiring) {
  const auto specs = ParseFaultSpecs("throw!@3");
  ASSERT_TRUE(specs.ok());
  EXPECT_TRUE(specs.value()[0].transient);
  EXPECT_EQ(specs.value()[0].fires_per_rank, 1);
}

TEST(FaultSpecTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(ParseFaultSpecs("").ok());
  EXPECT_FALSE(ParseFaultSpecs("explode@1").ok());
  EXPECT_FALSE(ParseFaultSpecs("throw").ok());        // targets nothing
  EXPECT_FALSE(ParseFaultSpecs("throw~1/0").ok());    // zero denominator
  EXPECT_FALSE(ParseFaultSpecs("fuel!@1").ok());      // transient non-throw
  EXPECT_FALSE(ParseFaultSpecs("throw@1,").ok());     // trailing empty clause
  EXPECT_FALSE(ParseFaultSpecs("throw@x").ok());      // not a number
}

TEST(FaultSpecTest, HashTargetingIsDeterministic) {
  FaultSpec spec;
  spec.rate_num = 1;
  spec.rate_den = 4;
  spec.seed = 7;
  std::uint64_t hits = 0;
  for (std::uint64_t rank = 0; rank < 1000; ++rank) {
    if (spec.TargetsRank(rank)) {
      EXPECT_TRUE(spec.TargetsRank(rank));  // stable on re-query
      ++hits;
    }
  }
  // Roughly a quarter of the ranks; generous bounds to avoid flakiness.
  EXPECT_GT(hits, 150u);
  EXPECT_LT(hits, 350u);
}

// ---------------------------------------------------------------------------
// Fuel exhaustion flows through the checkers as a normal violation

TEST(FuelExhaustionTest, NonHaltingProgramBecomesViolation) {
  const auto parsed = ParseProgram("program p(n) { locals c; c = n; while (c != 0) { c = c + 1; } y = 0; }");
  ASSERT_TRUE(parsed.ok()) << parsed.error().ToString();
  const ProgramAsMechanism mechanism(Lower(parsed.value()), /*fuel=*/100);
  // n = 1 never reaches 0 counting upward; the fuel bound converts the
  // divergence into a violation notice.
  const Outcome diverged = mechanism.Run(std::vector<Value>{1});
  ASSERT_TRUE(diverged.IsViolation());
  EXPECT_EQ(diverged.notice, "fuel exhausted");
  EXPECT_TRUE(mechanism.Run(std::vector<Value>{0}).IsValue());
}

TEST(FuelExhaustionTest, FlowsThroughSoundnessAsNormalOutcome) {
  const auto parsed = ParseProgram("program p(n) { locals c; c = n; while (c != 0) { c = c + 1; } y = 0; }");
  ASSERT_TRUE(parsed.ok());
  const ProgramAsMechanism mechanism(Lower(parsed.value()), /*fuel=*/100);
  const InputDomain domain = InputDomain::Range(1, 0, 3);
  // allow() hides n entirely, but the mechanism halts on 0 and exhausts fuel
  // on 1..3 — an observable difference inside the single policy class, i.e.
  // an ordinary UNSOUND verdict, not a crash or an abort.
  const AllowPolicy policy = AllowPolicy::AllowNone(1);
  for (int threads : {1, 2}) {
    const SoundnessReport report = CheckSoundness(mechanism, policy, domain,
                                                  Observability::kValueOnly,
                                                  CheckOptions::Threads(threads));
    EXPECT_EQ(report.progress.status, CheckStatus::kCompleted) << threads;
    EXPECT_FALSE(report.sound) << threads;
    ASSERT_TRUE(report.counterexample.has_value()) << threads;
    EXPECT_EQ(report.counterexample->outcome_b.notice, "fuel exhausted") << threads;
  }
}

TEST(FuelExhaustionTest, FlowsThroughCompletenessAsNormalOutcome) {
  const auto parsed = ParseProgram("program p(n) { locals c; c = n; while (c != 0) { c = c + 1; } y = 0; }");
  ASSERT_TRUE(parsed.ok());
  const ProgramAsMechanism mechanism(Lower(parsed.value()), /*fuel=*/100);
  const PlugMechanism plug(1);
  const InputDomain domain = InputDomain::Range(1, 0, 3);
  const CompletenessStats stats = CompareCompleteness(mechanism, plug, domain,
                                                      CheckOptions::Serial());
  EXPECT_EQ(stats.progress.status, CheckStatus::kCompleted);
  // Fuel-exhausted runs count as violations: only n = 0 yields a value.
  EXPECT_EQ(stats.first_only, 1u);
  EXPECT_EQ(stats.neither, 3u);
  EXPECT_EQ(stats.Relation(), CompletenessRelation::kFirstMore);
}

TEST(FuelExhaustionTest, InjectedFuelFaultMatchesRealFuelExhaustion) {
  // The harness's kFuelExhaustion is indistinguishable from a genuine
  // out-of-fuel run as far as the checkers are concerned.
  const InputDomain domain = InputDomain::Range(1, 0, 3);
  auto inner = std::make_shared<FunctionMechanism>(
      "inner", 1, [](InputView) { return Outcome::Val(0, 1); });
  auto specs = ParseFaultSpecs("fuel@1+2+3");
  ASSERT_TRUE(specs.ok());
  const FaultInjectingMechanism faulty(inner, domain, specs.value());
  const Outcome outcome = faulty.Run(std::vector<Value>{1});
  ASSERT_TRUE(outcome.IsViolation());
  EXPECT_EQ(outcome.notice, "fuel exhausted");
}

}  // namespace
}  // namespace secpol
