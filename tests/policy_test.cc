// Unit tests for security policies.

#include <gtest/gtest.h>

#include "src/policy/policy.h"

namespace secpol {
namespace {

TEST(AllowPolicyTest, ProjectsAllowedCoordinates) {
  const AllowPolicy policy(4, VarSet{0, 2});
  const Input input = {10, 20, 30, 40};
  EXPECT_EQ(policy.Image(input), (PolicyImage{10, 30}));
  EXPECT_EQ(policy.num_inputs(), 4);
}

TEST(AllowPolicyTest, AllowNoneErasesEverything) {
  const AllowPolicy policy = AllowPolicy::AllowNone(3);
  EXPECT_EQ(policy.Image(Input{1, 2, 3}), PolicyImage{});
  EXPECT_EQ(policy.Image(Input{7, 8, 9}), PolicyImage{});
  EXPECT_EQ(policy.name(), "allow()");
}

TEST(AllowPolicyTest, AllowAllIsIdentity) {
  const AllowPolicy policy = AllowPolicy::AllowAll(3);
  const Input input = {1, 2, 3};
  EXPECT_EQ(policy.Image(input), (PolicyImage{1, 2, 3}));
}

TEST(AllowPolicyTest, DeniedComplement) {
  const AllowPolicy policy(4, VarSet{1});
  EXPECT_EQ(policy.denied(), (VarSet{0, 2, 3}));
}

TEST(AllowPolicyTest, NameListsCoordinates) {
  EXPECT_EQ(AllowPolicy(4, VarSet{1, 3}).name(), "allow(1,3)");
}

TEST(AllowPolicyTest, EquivalenceClassesAreProjectionFibers) {
  const AllowPolicy policy(2, VarSet{0});
  EXPECT_EQ(policy.Image(Input{5, 1}), policy.Image(Input{5, 9}));
  EXPECT_NE(policy.Image(Input{5, 1}), policy.Image(Input{6, 1}));
}

TEST(DirectoryGatedPolicyTest, GrantsRevealFiles) {
  // 2 files: dirs = (1, 0), files = (7, 9).
  const DirectoryGatedPolicy policy(2, /*grant_value=*/1);
  EXPECT_EQ(policy.num_inputs(), 4);
  EXPECT_EQ(policy.Image(Input{1, 0, 7, 9}), (PolicyImage{1, 0, 7, 0}));
  EXPECT_EQ(policy.Image(Input{0, 1, 7, 9}), (PolicyImage{0, 1, 0, 9}));
  EXPECT_EQ(policy.Image(Input{1, 1, 7, 9}), (PolicyImage{1, 1, 7, 9}));
  EXPECT_EQ(policy.Image(Input{0, 0, 7, 9}), (PolicyImage{0, 0, 0, 0}));
}

TEST(DirectoryGatedPolicyTest, DeniedFileContentsAreEquivalent) {
  const DirectoryGatedPolicy policy(1, 1);
  // Directory denies: different contents, same image.
  EXPECT_EQ(policy.Image(Input{0, 5}), policy.Image(Input{0, 42}));
  // Directory grants: contents distinguish.
  EXPECT_NE(policy.Image(Input{1, 5}), policy.Image(Input{1, 42}));
}

TEST(DirectoryGatedPolicyTest, NotOfAllowForm) {
  // The set of revealed coordinates depends on the input itself — the
  // defining feature distinguishing it from every allow(J).
  const DirectoryGatedPolicy policy(1, 1);
  const PolicyImage granted = policy.Image(Input{1, 5});
  const PolicyImage denied = policy.Image(Input{0, 5});
  EXPECT_NE(granted, denied);
  EXPECT_EQ(granted[1], 5);
  EXPECT_EQ(denied[1], 0);
}

TEST(QueryBudgetPolicyTest, BudgetControlsVisibility) {
  const QueryBudgetPolicy policy(3);
  EXPECT_EQ(policy.num_inputs(), 4);
  EXPECT_EQ(policy.Image(Input{10, 20, 30, 0}), (PolicyImage{0, 0, 0, 0}));
  EXPECT_EQ(policy.Image(Input{10, 20, 30, 2}), (PolicyImage{10, 20, 0, 2}));
  EXPECT_EQ(policy.Image(Input{10, 20, 30, 3}), (PolicyImage{10, 20, 30, 3}));
}

TEST(QueryBudgetPolicyTest, BudgetClamped) {
  const QueryBudgetPolicy policy(2);
  EXPECT_EQ(policy.Image(Input{1, 2, 99}), (PolicyImage{1, 2, 99}));
  EXPECT_EQ(policy.Image(Input{1, 2, -5}), (PolicyImage{0, 0, -5}));
}

TEST(QueryBudgetPolicyTest, BudgetItselfAlwaysVisible) {
  const QueryBudgetPolicy policy(1);
  EXPECT_NE(policy.Image(Input{5, 0}), policy.Image(Input{5, 1}));
}

}  // namespace
}  // namespace secpol
