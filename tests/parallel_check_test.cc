// Differential tests locking the parallel checking engine to the serial
// reference: for corpus-generated programs and random allow(J) policies,
// every checker must produce a report *field-for-field identical* to the
// serial scan at 1, 2, 3, and 7 threads — including the exact counterexample
// pair and inputs_checked. This is the determinism contract of the sharded
// grid evaluation (first-witness merge by global grid rank).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "src/channels/timing.h"
#include "src/corpus/generator.h"
#include "src/flowlang/lower.h"
#include "src/mechanism/completeness.h"
#include "src/mechanism/check_options.h"
#include "src/mechanism/domain.h"
#include "src/mechanism/integrity.h"
#include "src/mechanism/maximal.h"
#include "src/mechanism/mechanism.h"
#include "src/mechanism/policy_compare.h"
#include "src/mechanism/soundness.h"
#include "src/policy/policy.h"
#include "src/surveillance/surveillance.h"
#include "src/util/rng.h"
#include "tests/testlib.h"

namespace secpol {
namespace {

using testlib::ExpectSameCompleteness;
using testlib::ExpectSameIntegrity;
using testlib::ExpectSameLeak;
using testlib::ExpectSameMaximal;
using testlib::ExpectSameSoundness;
using testlib::kThreadCounts;

constexpr int kNumPrograms = 50;

// One corpus program, one seeded random allow(J) policy, every checker, every
// thread count. The bare program is deliberately checked (not just the
// surveillance mechanism): it is unsound for most policies, so the
// counterexample-reconstruction path gets real coverage.
TEST(ParallelDifferentialTest, CorpusReportsIdenticalAtEveryThreadCount) {
  CorpusConfig config;
  const auto corpus = MakeCorpus(config, kNumPrograms, /*seed=*/2026);
  Rng rng(77);
  const InputDomain domain = InputDomain::Range(config.num_inputs, -1, 1);

  for (const SourceProgram& source : corpus) {
    const Program program = Lower(source);
    const VarSet allowed = testlib::RandomAllowSet(config.num_inputs, &rng);
    const AllowPolicy policy(config.num_inputs, allowed);
    const AllowPolicy required = AllowPolicy::AllowAll(config.num_inputs);
    const ProgramAsMechanism bare{Program(program)};
    const SurveillanceMechanism monitored{Program(program), allowed};
    const Observability obs =
        rng.Chance(1, 2) ? Observability::kValueOnly : Observability::kValueAndTime;

    const auto serial = CheckOptions::Serial();
    const SoundnessReport sound_bare = CheckSoundness(bare, policy, domain, obs, serial);
    const SoundnessReport sound_mon = CheckSoundness(monitored, policy, domain, obs, serial);
    const IntegrityReport integ = CheckInformationPreservation(bare, required, domain, obs, serial);
    const CompletenessStats stats = CompareCompleteness(monitored, bare, domain, serial);
    const MaximalSynthesis maximal = SynthesizeMaximalMechanism(bare, policy, domain, obs, serial);
    const LeakReport leak = MeasureLeak(bare, policy, domain, obs, serial);

    for (const int threads : kThreadCounts) {
      const CheckOptions options = CheckOptions::Threads(threads);
      ExpectSameSoundness(sound_bare, CheckSoundness(bare, policy, domain, obs, options),
                          threads);
      ExpectSameSoundness(sound_mon, CheckSoundness(monitored, policy, domain, obs, options),
                          threads);
      ExpectSameIntegrity(
          integ, CheckInformationPreservation(bare, required, domain, obs, options), threads);
      ExpectSameCompleteness(stats, CompareCompleteness(monitored, bare, domain, options),
                             threads);
      ExpectSameMaximal(maximal,
                        SynthesizeMaximalMechanism(bare, policy, domain, obs, options), domain,
                        threads);
      ExpectSameLeak(leak, MeasureLeak(bare, policy, domain, obs, options), threads);
    }
  }
}

// Policy comparison is a bare bool, but its parallel path still has to agree
// with the serial one on both functional and non-functional pairs.
TEST(ParallelDifferentialTest, RevealsAtMostAgreesAtEveryThreadCount) {
  const InputDomain domain = InputDomain::Range(3, -1, 1);
  Rng rng(13);
  for (int trial = 0; trial < 32; ++trial) {
    VarSet j1, j2;
    for (int i = 0; i < 3; ++i) {
      if (rng.Chance(1, 2)) {
        j1.Insert(i);
      }
      if (rng.Chance(1, 2)) {
        j2.Insert(i);
      }
    }
    const AllowPolicy p(3, j1);
    const AllowPolicy q(3, j2);
    const bool serial = RevealsAtMost(p, q, domain, CheckOptions::Serial());
    for (const int threads : kThreadCounts) {
      EXPECT_EQ(serial, RevealsAtMost(p, q, domain, CheckOptions::Threads(threads)))
          << p.name() << " vs " << q.name() << " at " << threads << " threads";
    }
  }
}

// A domain whose per-coordinate radices differ exercises the mixed-radix
// rank decoding; shard boundaries fall mid-class so the first-witness merge
// has to cross shards to find the serial counterexample.
TEST(ParallelDifferentialTest, UnevenRadixDomainWithCrossShardCounterexample) {
  const InputDomain domain = InputDomain::PerInput({{0, 1, 2, 3, 4}, {10, 20, 30}, {-1, 1}});
  // Leaks coordinate 2 (the sign); policy allows only coordinates 0 and 1.
  const FunctionMechanism leaky("leaky", 3, [](InputView in) {
    return Outcome::Val(in[2] > 0 ? 1 : 0, 1);
  });
  const AllowPolicy policy(3, VarSet{0, 1});
  const auto serial =
      CheckSoundness(leaky, policy, domain, Observability::kValueOnly, CheckOptions::Serial());
  ASSERT_FALSE(serial.sound);
  ASSERT_TRUE(serial.counterexample.has_value());
  for (const int threads : kThreadCounts) {
    ExpectSameSoundness(serial,
                        CheckSoundness(leaky, policy, domain, Observability::kValueOnly,
                                       CheckOptions::Threads(threads)),
                        threads);
  }
}

// Sharded iteration itself: every shard split of the grid visits exactly the
// full grid, in rank order, with ranks matching the serial enumeration.
TEST(ParallelDifferentialTest, ShardsPartitionTheGrid) {
  const InputDomain domain = InputDomain::PerInput({{1, 2}, {3, 4, 5}, {6, 7, 8, 9}});
  std::vector<Input> serial_order;
  domain.ForEach(
      [&](InputView input) { serial_order.emplace_back(input.begin(), input.end()); });
  ASSERT_EQ(serial_order.size(), domain.size());

  for (const std::uint64_t num_shards : {1u, 2u, 3u, 5u, 7u, 24u, 100u}) {
    std::vector<Input> sharded(serial_order.size());
    std::vector<int> visits(serial_order.size(), 0);
    for (std::uint64_t shard = 0; shard < num_shards; ++shard) {
      domain.ForEachShard(shard, num_shards, [&](std::uint64_t rank, InputView input) {
        sharded[rank] = Input(input.begin(), input.end());
        ++visits[rank];
        return true;
      });
    }
    EXPECT_EQ(sharded, serial_order) << num_shards << " shards";
    for (const int count : visits) {
      EXPECT_EQ(count, 1) << num_shards << " shards";
    }
  }
}

}  // namespace
}  // namespace secpol
