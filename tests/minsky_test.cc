// Tests for the Minsky machine substrate and Fenton's data-mark machine
// (Example 1): the negative-inference leak and its repairs.

#include <gtest/gtest.h>

#include "src/mechanism/soundness.h"
#include "src/minsky/data_mark.h"
#include "src/minsky/minsky.h"
#include "src/policy/policy.h"

namespace secpol {
namespace {

TEST(MinskyTest, ProgramsValidate) {
  EXPECT_TRUE(MakeAddProgram().Valid());
  EXPECT_TRUE(MakeMoveProgram().Valid());
  EXPECT_TRUE(MakeIsZeroProgram().Valid());
  EXPECT_TRUE(MakeMinProgram().Valid());
  EXPECT_TRUE(MakeNegativeInferenceWitness().Valid());

  MinskyProgram bad = MakeAddProgram();
  bad.code[0].reg = 9;
  EXPECT_FALSE(bad.Valid());
}

struct BinaryMachineCase {
  Value a;
  Value b;
  Value expected;
};

class AddMachineTest : public ::testing::TestWithParam<BinaryMachineCase> {};

TEST_P(AddMachineTest, Computes) {
  const auto& c = GetParam();
  const MinskyResult r = RunMinsky(MakeAddProgram(), Input{c.a, c.b});
  EXPECT_TRUE(r.halted);
  EXPECT_EQ(r.output, c.expected);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AddMachineTest,
                         ::testing::Values(BinaryMachineCase{0, 0, 0},
                                           BinaryMachineCase{3, 4, 7},
                                           BinaryMachineCase{0, 5, 5},
                                           BinaryMachineCase{7, 0, 7},
                                           BinaryMachineCase{-2, 3, 3}));  // clamp to 0

class MinMachineTest : public ::testing::TestWithParam<BinaryMachineCase> {};

TEST_P(MinMachineTest, Computes) {
  const auto& c = GetParam();
  const MinskyResult r = RunMinsky(MakeMinProgram(), Input{c.a, c.b});
  EXPECT_TRUE(r.halted);
  EXPECT_EQ(r.output, c.expected);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MinMachineTest,
                         ::testing::Values(BinaryMachineCase{0, 0, 0},
                                           BinaryMachineCase{2, 3, 2},
                                           BinaryMachineCase{3, 2, 2},
                                           BinaryMachineCase{5, 5, 5},
                                           BinaryMachineCase{0, 9, 0},
                                           BinaryMachineCase{9, 0, 0}));

TEST(MinskyTest, MoveAndIsZero) {
  EXPECT_EQ(RunMinsky(MakeMoveProgram(), Input{9, 4}).output, 4);
  EXPECT_EQ(RunMinsky(MakeIsZeroProgram(), Input{0}).output, 1);
  EXPECT_EQ(RunMinsky(MakeIsZeroProgram(), Input{7}).output, 0);
}

TEST(MinskyTest, StepsCountInstructions) {
  // add(0, n): DecJz is executed n+1 times plus n Inc and n Jmp, then Halt.
  const MinskyResult r0 = RunMinsky(MakeAddProgram(), Input{0, 0});
  const MinskyResult r2 = RunMinsky(MakeAddProgram(), Input{0, 2});
  EXPECT_EQ(r0.steps, 2u);               // DecJz (jump), Halt
  EXPECT_EQ(r2.steps, r0.steps + 2 * 3); // 2 iterations of DecJz/Inc/Jmp
}

TEST(MinskyTest, FuelExhaustion) {
  MinskyProgram spin;
  spin.name = "spin";
  spin.num_registers = 1;
  spin.num_inputs = 0;
  spin.code = {MinskyInst::Jmp(0)};
  const MinskyResult r = RunMinsky(spin, {}, /*fuel=*/100);
  EXPECT_FALSE(r.halted);
  EXPECT_EQ(r.steps, 100u);
}

TEST(MinskyTest, FallOffEndIsFlagged) {
  MinskyProgram p;
  p.name = "falls";
  p.num_registers = 1;
  p.num_inputs = 0;
  p.code = {MinskyInst::Inc(0)};
  const MinskyResult r = RunMinsky(p, {});
  EXPECT_TRUE(r.halted);
  EXPECT_TRUE(r.fell_off_end);
}

// --- The data-mark machine ---

TEST(DataMarkTest, NullComputationReleases) {
  DataMarkConfig config;  // nothing priv
  const DataMarkMachine m(MakeAddProgram(), config);
  const Outcome o = m.Run(Input{2, 3});
  ASSERT_TRUE(o.IsValue());
  EXPECT_EQ(o.value, 5);
}

TEST(DataMarkTest, PrivInputTaintsOutput) {
  DataMarkConfig config;
  config.priv_registers = VarSet{1};  // the added amount is priv
  const DataMarkMachine m(MakeAddProgram(), config);
  EXPECT_TRUE(m.Run(Input{2, 3}).IsViolation());
}

TEST(DataMarkTest, PcTaintPropagatesThroughWrites) {
  // is_zero branches on its (priv) input and then writes the output under a
  // priv pc: the output must be marked priv.
  DataMarkConfig config;
  config.priv_registers = VarSet{0};
  const DataMarkMachine m(MakeIsZeroProgram(), config);
  EXPECT_TRUE(m.Run(Input{0}).IsViolation());
  EXPECT_TRUE(m.Run(Input{3}).IsViolation());
}

// --- Example 1 continued: the unsound halt interpretation ---

TEST(NegativeInference, ErrorInterpretationLeaksWhetherXIsZero) {
  DataMarkConfig config;
  config.priv_registers = VarSet{0};
  config.guarded_halt = GuardedHaltSemantics::kErrorWhenPriv;
  const DataMarkMachine m(MakeNegativeInferenceWitness(), config);

  // "a program can be written that will output an error message if and only
  // if x = 0."
  EXPECT_TRUE(m.Run(Input{0}).IsViolation());
  EXPECT_TRUE(m.Run(Input{1}).IsValue());
  EXPECT_TRUE(m.Run(Input{5}).IsValue());

  const auto report = CheckSoundness(m, AllowPolicy::AllowNone(1),
                                     InputDomain::Range(1, 0, 3), Observability::kValueOnly);
  EXPECT_FALSE(report.sound);
}

TEST(NegativeInference, SkipInterpretationIsSoundOnTheWitness) {
  DataMarkConfig config;
  config.priv_registers = VarSet{0};
  config.guarded_halt = GuardedHaltSemantics::kSkipWhenPriv;
  const DataMarkMachine m(MakeNegativeInferenceWitness(), config);

  // Both paths fall through to the plain halt and release 0.
  EXPECT_TRUE(m.Run(Input{0}).IsValue());
  EXPECT_TRUE(m.Run(Input{4}).IsValue());
  EXPECT_TRUE(CheckSoundness(m, AllowPolicy::AllowNone(1), InputDomain::Range(1, 0, 3),
                             Observability::kValueOnly)
                  .sound);
}

TEST(NegativeInference, RepairedMachineUniformlyViolates) {
  DataMarkConfig config;
  config.priv_registers = VarSet{0};
  config.guarded_halt = GuardedHaltSemantics::kErrorWhenPriv;
  config.check_pc_at_halt = true;
  const DataMarkMachine m(MakeNegativeInferenceWitness(), config);

  // Checking P at the plain halt closes the channel: every input violates.
  EXPECT_TRUE(m.Run(Input{0}).IsViolation());
  EXPECT_TRUE(m.Run(Input{4}).IsViolation());
  EXPECT_TRUE(CheckSoundness(m, AllowPolicy::AllowNone(1), InputDomain::Range(1, 0, 3),
                             Observability::kValueOnly)
                  .sound);
}

TEST(DataMarkTest, GuardedHaltAsLastStatementIsUndefined) {
  // "the semantics of the halt statement are undefined in case the halt
  // statement is the last program statement."
  MinskyProgram p;
  p.name = "ends_with_guard";
  p.num_registers = 1;
  p.num_inputs = 1;
  p.code = {
      MinskyInst::DecJz(0, 1),    // taint P with the priv input
      MinskyInst::GuardedHalt(),  // last statement
  };
  DataMarkConfig config;
  config.priv_registers = VarSet{0};
  config.guarded_halt = GuardedHaltSemantics::kSkipWhenPriv;
  const DataMarkMachine m(p, config);
  const Outcome o = m.Run(Input{0});
  EXPECT_TRUE(o.IsViolation());
  EXPECT_NE(o.notice.find("undefined"), std::string::npos);
}

TEST(DataMarkTest, GuardedHaltReleasesWhenPcNull) {
  MinskyProgram p;
  p.name = "clean_guarded";
  p.num_registers = 1;
  p.num_inputs = 1;
  p.code = {MinskyInst::Inc(0), MinskyInst::GuardedHalt()};
  DataMarkConfig config;  // nothing priv
  const DataMarkMachine m(p, config);
  const Outcome o = m.Run(Input{4});
  ASSERT_TRUE(o.IsValue());
  EXPECT_EQ(o.value, 5);
}

TEST(DataMarkTest, NameReflectsConfiguration) {
  DataMarkConfig config;
  config.guarded_halt = GuardedHaltSemantics::kErrorWhenPriv;
  config.check_pc_at_halt = true;
  const DataMarkMachine m(MakeAddProgram(), config);
  EXPECT_NE(m.name().find("error-when-priv"), std::string::npos);
  EXPECT_NE(m.name().find("pc-checked"), std::string::npos);
}

}  // namespace
}  // namespace secpol
