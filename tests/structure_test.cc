// Tests for the flowchart structurizer (decompiler): round trips through
// lowering, hand-built graphs, and refusal on irreducible control flow.

#include <gtest/gtest.h>

#include "src/corpus/generator.h"
#include "src/flowchart/builder.h"
#include "src/flowchart/interpreter.h"
#include "src/flowlang/lower.h"
#include "src/flowlang/parser.h"
#include "src/transforms/structure.h"
#include "src/transforms/transforms.h"

namespace secpol {
namespace {

void ExpectRoundTrip(const Program& q, const std::vector<Value>& grid = {-2, -1, 0, 1, 2}) {
  const auto structured = StructureProgram(q);
  ASSERT_TRUE(structured.has_value()) << q.ToString();
  const Program relowered = Lower(*structured);
  EXPECT_TRUE(FunctionallyEquivalentOnGrid(q, relowered, grid))
      << q.ToString() << "\nvs\n"
      << structured->ToString();
}

TEST(StructureTest, StraightLine) {
  ExpectRoundTrip(MustCompile("program p(a, b) { y = a * b + 1; }"));
}

TEST(StructureTest, IfElse) {
  ExpectRoundTrip(
      MustCompile("program p(x) { if (x > 0) { y = 1; } else { y = 2; } y = y + 1; }"));
}

TEST(StructureTest, IfWithoutElse) {
  ExpectRoundTrip(MustCompile("program p(x) { y = 9; if (x == 0) { y = 1; } }"));
}

TEST(StructureTest, WhileLoop) {
  ExpectRoundTrip(MustCompile(
      "program p(n) { locals c; c = n; while (c != 0) { y = y + c; c = c - 1; } }"));
}

TEST(StructureTest, NestedStructures) {
  ExpectRoundTrip(MustCompile(R"(
    program p(a, b) {
      locals i;
      i = 3;
      while (i != 0) {
        if (b > 0) { y = y + a; } else { y = y - a; }
        i = i - 1;
      }
      y = y * 2;
    })"));
}

TEST(StructureTest, ExplicitHaltInBranch) {
  ExpectRoundTrip(
      MustCompile("program p(x) { if (x == 0) { y = 7; halt; } y = 8; }"));
}

TEST(StructureTest, TailDuplicatedBothArmsHalt) {
  ExpectRoundTrip(MustCompile(
      "program p(x, z) { if (x == 0) { y = 0; halt; } else { y = z; halt; } }"));
}

TEST(StructureTest, HandBuiltGraphWithSwappedLoopBranches) {
  // A loop whose FALSE edge is the back edge: while (!(r == 0)) shape
  // written directly as a graph.
  ProgramBuilder b("swapped", {"n"}, {"r"});
  const int r = b.Var("r");
  const int init = b.Assign(r, V(0));
  const int d = b.Decision(Eq(V(r), V(0)));
  const int body = b.Assign(r, Add(V(r), C(1)));  // runs while r == 0 (once)
  const int tail = b.Assign(b.OutputVar(), V(r));
  const int h = b.HaltBox();
  b.Goto(init, d);
  b.SetBranches(d, body, tail);
  b.Goto(body, d);
  b.Goto(tail, h);
  const Program q = b.Build();
  ExpectRoundTrip(q, {0, 1, 2});
}

TEST(StructureTest, RefusesIrreducibleGraph) {
  // Two decisions jumping into each other's "loop bodies": the classic
  // irreducible shape.
  ProgramBuilder b("irreducible", {"x"}, {"r"});
  const int r = b.Var("r");
  const int d1 = b.Decision(Ne(V(0), C(0)));
  const int a1 = b.Assign(r, Add(V(r), C(1)));
  const int d2 = b.Decision(Ne(V(r), C(5)));
  const int a2 = b.Assign(r, Add(V(r), C(2)));
  const int h = b.HaltBox();
  b.SetBranches(d1, a1, a2);
  b.Goto(a1, d2);
  b.SetBranches(d2, a2, h);
  b.Goto(a2, d2);  // a2 joins the "loop" of d2 from outside: irreducible-ish
  const Program q = b.Build();
  // Either a correct structuring or a refusal is acceptable; a WRONG
  // structuring is not.
  const auto structured = StructureProgram(q);
  if (structured.has_value()) {
    EXPECT_TRUE(FunctionallyEquivalentOnGrid(q, Lower(*structured), {0, 1, 2}));
  }
}

class StructureRoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StructureRoundTripTest, CorpusProgramsRoundTrip) {
  CorpusConfig config;
  config.num_inputs = 2;
  const Program q = Lower(GenerateProgram(config, GetParam(), "rt"));
  const auto structured = StructureProgram(q);
  ASSERT_TRUE(structured.has_value()) << "seed " << GetParam();
  EXPECT_TRUE(FunctionallyEquivalentOnGrid(q, Lower(*structured), {-2, 0, 1, 3}))
      << "seed " << GetParam() << "\n"
      << structured->ToString();
}

INSTANTIATE_TEST_SUITE_P(Corpus, StructureRoundTripTest,
                         ::testing::Range<std::uint64_t>(11000, 11050));

TEST(StructureTest, EnablesTransformsOnHandBuiltGraphs) {
  // Build Example 7 directly as a graph, structure it, and run the advisor
  // pipeline on the result.
  ProgramBuilder b("ex7_graph", {"x1", "x2"}, {"r"});
  const int r = b.Var("r");
  const int d1 = b.Decision(Eq(V(0), C(1)));
  const int t1 = b.Assign(r, C(1));
  const int e1 = b.Assign(r, C(2));
  const int d2 = b.Decision(Eq(V(r), C(1)));
  const int t2 = b.Assign(b.OutputVar(), C(1));
  const int e2 = b.Assign(b.OutputVar(), C(1));
  const int h = b.HaltBox();
  b.SetBranches(d1, t1, e1);
  b.Goto(t1, d2);
  b.Goto(e1, d2);
  b.SetBranches(d2, t2, e2);
  b.Goto(t2, h);
  b.Goto(e2, h);
  const Program q = b.Build();

  const auto structured = StructureProgram(q);
  ASSERT_TRUE(structured.has_value());
  bool changed = false;
  const SourceProgram transformed = ApplyIfToSelect(*structured, {}, &changed);
  EXPECT_TRUE(changed);
  EXPECT_TRUE(FunctionallyEquivalentOnGrid(q, Lower(transformed), {0, 1, 2}));
  // The Example 7 collapse survived the graph detour: no ifs remain.
  EXPECT_EQ(transformed.ToString().find("if ("), std::string::npos);
}

}  // namespace
}  // namespace secpol
