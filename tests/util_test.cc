// Unit tests for src/util.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "src/util/bitvec.h"
#include "src/util/thread_pool.h"
#include "src/util/result.h"
#include "src/util/rng.h"
#include "src/util/strings.h"
#include "src/util/var_set.h"

namespace secpol {
namespace {

TEST(VarSetTest, EmptyAndSingleton) {
  EXPECT_TRUE(VarSet::Empty().empty());
  EXPECT_EQ(VarSet::Empty().size(), 0);
  const VarSet s = VarSet::Singleton(5);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.size(), 1);
  EXPECT_TRUE(s.Contains(5));
  EXPECT_FALSE(s.Contains(4));
}

TEST(VarSetTest, FirstN) {
  const VarSet s = VarSet::FirstN(3);
  EXPECT_EQ(s.size(), 3);
  EXPECT_TRUE(s.Contains(0));
  EXPECT_TRUE(s.Contains(2));
  EXPECT_FALSE(s.Contains(3));
  EXPECT_TRUE(VarSet::FirstN(0).empty());
}

TEST(VarSetTest, FirstNFull64) {
  const VarSet s = VarSet::FirstN(64);
  EXPECT_EQ(s.size(), 64);
  EXPECT_TRUE(s.Contains(63));
}

TEST(VarSetTest, InsertErase) {
  VarSet s;
  s.Insert(1);
  s.Insert(3);
  EXPECT_EQ(s.size(), 2);
  s.Erase(1);
  EXPECT_FALSE(s.Contains(1));
  EXPECT_TRUE(s.Contains(3));
}

TEST(VarSetTest, SetAlgebra) {
  const VarSet a{0, 1, 2};
  const VarSet b{2, 3};
  EXPECT_EQ(a.Union(b), (VarSet{0, 1, 2, 3}));
  EXPECT_EQ(a.Intersect(b), VarSet{2});
  EXPECT_EQ(a.Minus(b), (VarSet{0, 1}));
  EXPECT_TRUE((VarSet{1}).SubsetOf(a));
  EXPECT_FALSE(b.SubsetOf(a));
  EXPECT_TRUE(VarSet::Empty().SubsetOf(VarSet::Empty()));
}

TEST(VarSetTest, SubsetOfIsPartialOrder) {
  const VarSet sets[] = {VarSet::Empty(), VarSet{0}, VarSet{1}, VarSet{0, 1}, VarSet{0, 2}};
  for (const VarSet& a : sets) {
    EXPECT_TRUE(a.SubsetOf(a));
    for (const VarSet& b : sets) {
      if (a.SubsetOf(b) && b.SubsetOf(a)) {
        EXPECT_EQ(a, b);
      }
      for (const VarSet& c : sets) {
        if (a.SubsetOf(b) && b.SubsetOf(c)) {
          EXPECT_TRUE(a.SubsetOf(c));
        }
      }
    }
  }
}

TEST(VarSetTest, ToString) {
  EXPECT_EQ(VarSet::Empty().ToString(), "{}");
  EXPECT_EQ((VarSet{0, 2, 5}).ToString(), "{0,2,5}");
}

TEST(BitVecTest, SetTestClear) {
  BitVec v(130);
  EXPECT_EQ(v.size(), 130);
  EXPECT_FALSE(v.Test(0));
  v.Set(0);
  v.Set(64);
  v.Set(129);
  EXPECT_TRUE(v.Test(0));
  EXPECT_TRUE(v.Test(64));
  EXPECT_TRUE(v.Test(129));
  EXPECT_EQ(v.Count(), 3);
  v.Clear(64);
  EXPECT_FALSE(v.Test(64));
  EXPECT_EQ(v.Count(), 2);
}

TEST(BitVecTest, AllTrueConstructorTrimsTail) {
  BitVec v(70, true);
  EXPECT_EQ(v.Count(), 70);
}

TEST(BitVecTest, IntersectAndUnion) {
  BitVec a(100);
  BitVec b(100);
  a.Set(1);
  a.Set(99);
  b.Set(99);
  BitVec a2 = a;
  EXPECT_TRUE(a2.IntersectWith(b));  // changed: bit 1 dropped
  EXPECT_FALSE(a2.Test(1));
  EXPECT_TRUE(a2.Test(99));
  EXPECT_FALSE(a2.IntersectWith(b));  // stable now

  BitVec c(100);
  EXPECT_TRUE(c.UnionWith(a));
  EXPECT_EQ(c, a);
  EXPECT_FALSE(c.UnionWith(a));
}

TEST(RngTest, DeterministicBySeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Rng c(43);
  bool all_equal = true;
  Rng a2(42);
  for (int i = 0; i < 10; ++i) {
    all_equal = all_equal && (a2.Next() == c.Next());
  }
  EXPECT_FALSE(all_equal);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0, 100));
    EXPECT_TRUE(rng.Chance(100, 100));
  }
}

TEST(RngTest, NextDoubleUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok(5);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);

  Result<int> err(Error{"boom", 3, 7});
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error().message, "boom");
  EXPECT_EQ(err.error().ToString(), "3:7: boom");
  EXPECT_EQ(Error{"plain"}.ToString(), "plain");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringsTest, FormatInput) {
  const Input input = {1, -2, 3};
  EXPECT_EQ(FormatInput(input), "(1, -2, 3)");
  EXPECT_EQ(FormatInput(Input{}), "()");
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(1.23456, 2), "1.23");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("surveillance", "surv"));
  EXPECT_FALSE(StartsWith("surv", "surveillance"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(ThreadPoolTest, RunsEverySubmittedTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  constexpr int kTasks = 200;
  std::vector<std::atomic<int>> hits(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&hits, i] { hits[i].fetch_add(1); });
  }
  pool.Wait();
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPoolTest, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPoolTest, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran.store(true); });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::HardwareThreads(), 1);
}

}  // namespace
}  // namespace secpol
