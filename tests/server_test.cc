// Tests for the serve daemon: byte parity with the batch path (cold and
// warm, across connections and transports), typed protocol errors and their
// close-vs-continue semantics, per-client admission quotas with sibling
// isolation, priority-fair dispatch, policy hot-reload with epoch pinning of
// in-flight jobs, and graceful drain.

#include "src/server/server.h"

#include <arpa/inet.h>
#include <sys/socket.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/server/client.h"
#include "src/server/protocol.h"
#include "src/server/socket.h"
#include "src/service/manifest.h"
#include "src/service/service.h"
#include "src/util/json.h"
#include "tests/testlib.h"

namespace secpol {
namespace {

constexpr char kLeakyProgram[] =
    "program leaky(pub, sec) { if (sec > 0) { y = pub + 1; } else { y = pub; } }";
constexpr char kCleanProgram[] = "program clean(pub, sec) { y = pub * pub; }";

CheckJobSpec BaseSpec(const std::string& id, const std::string& program) {
  CheckJobSpec spec;
  spec.id = id;
  spec.program_text = program;
  spec.checker = CheckerKind::kSoundness;
  spec.allow = VarSet{0};
  spec.grid_lo = -1;
  spec.grid_hi = 1;
  return spec;
}

// A spec whose sweep takes a macroscopic wall time (every grid point sleeps),
// used to hold the single worker busy while admission behaviour is probed.
CheckJobSpec SlowSpec(const std::string& id) {
  CheckJobSpec spec = BaseSpec(id, kLeakyProgram);
  spec.fault_spec = "slow~1/1u20000";  // 9 grid points x 20ms
  return spec;
}

std::unique_ptr<CheckServer> StartServer(ServerConfig config) {
  if (config.unix_path.empty() && config.tcp_port < 0) {
    config.unix_path = testlib::TempSocketPath("server_test");
  }
  auto server = std::make_unique<CheckServer>(std::move(config));
  const Result<bool> started = server->Start();
  EXPECT_TRUE(started.ok()) << (started.ok() ? "" : started.error().message);
  return server;
}

ServeClient MustConnect(const CheckServer& server) {
  Result<ServeClient> client = ServeClient::ConnectUnixPath(server.unix_path());
  EXPECT_TRUE(client.ok()) << (client.ok() ? "" : client.error().message);
  return client.ok() ? std::move(client.value()) : ServeClient();
}

std::string TypeOf(const Json& frame) {
  const Json* type = frame.Find("type");
  return type != nullptr && type->is_string() ? type->AsString() : "";
}

std::string ErrorCodeOf(const Json& frame) {
  const Json* code = frame.Find("code");
  return code != nullptr && code->is_string() ? code->AsString() : "";
}

std::int64_t IntField(const Json& object, const std::string& key) {
  const Json* value = object.Find(key);
  return value != nullptr && value->is_int() ? value->AsInt() : -1;
}

std::string StringField(const Json& object, const std::string& key) {
  const Json* value = object.Find(key);
  return value != nullptr && value->is_string() ? value->AsString() : "";
}

// The deterministic slice of a result-frame job object (everything except
// wall_ms and from_cache), re-serialized in fixed order so the serve path
// and the batch path compare as bytes. Mirrors the scenario runner's oracle.
std::string DeterministicJobFields(const Json& job) {
  static constexpr const char* kFields[] = {"id",        "status", "exit_code", "cache_key",
                                            "evaluated", "total",  "error",     "report"};
  Json out = Json::MakeObject();
  for (const char* field : kFields) {
    const Json* value = job.Find(field);
    if (value != nullptr) {
      out.Set(field, *value);
    }
  }
  return out.Serialize();
}

// The batch-path rendering of one spec, run on a fresh single-thread service.
std::string BatchRendering(const CheckJobSpec& spec) {
  ServiceConfig config;
  config.concurrency = 1;
  CheckService service(config);
  const BatchReport report = service.RunBatch({spec});
  EXPECT_EQ(report.jobs.size(), 1u);
  return report.jobs.empty() ? ""
                             : DeterministicJobFields(JobResultToJson(report.jobs[0]));
}

// Reads frames in arrival order, letting a test wait for one frame type
// while result frames from still-running jobs interleave arbitrarily.
class FrameReader {
 public:
  explicit FrameReader(ServeClient* client) : client_(client) {}

  Json Next() {
    if (!pending_.empty()) {
      Json frame = std::move(pending_.front());
      pending_.erase(pending_.begin());
      return frame;
    }
    Result<Json> frame = client_->Read();
    EXPECT_TRUE(frame.ok()) << (frame.ok() ? "" : frame.error().message);
    return frame.ok() ? std::move(frame.value()) : Json();
  }

  // Next frame of the given type; earlier frames of other types are queued
  // for later Next() calls in their original order.
  Json NextOfType(const std::string& type) {
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (TypeOf(pending_[i]) == type) {
        Json frame = std::move(pending_[i]);
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
        return frame;
      }
    }
    for (int attempts = 0; attempts < 64; ++attempts) {
      Result<Json> frame = client_->Read();
      EXPECT_TRUE(frame.ok()) << (frame.ok() ? "" : frame.error().message);
      if (!frame.ok()) {
        return Json();
      }
      if (TypeOf(frame.value()) == type) {
        return std::move(frame.value());
      }
      pending_.push_back(std::move(frame.value()));
    }
    ADD_FAILURE() << "no frame of type " << type << " within 64 frames";
    return Json();
  }

 private:
  ServeClient* client_;
  std::vector<Json> pending_;
};

// ---------------------------------------------------------------------------
// Byte parity with the batch path.

TEST(ServerTest, ResultFrameMatchesBatchBytesColdAndWarmAcrossConnections) {
  const CheckJobSpec spec = BaseSpec("parity", kLeakyProgram);
  const std::string expected = BatchRendering(spec);

  std::unique_ptr<CheckServer> server = StartServer(ServerConfig{});
  {
    ServeClient first = MustConnect(*server);
    const Result<Json> terminal = first.SubmitJob(CheckJobSpecToJson(spec));
    ASSERT_TRUE(terminal.ok()) << terminal.error().message;
    ASSERT_EQ(TypeOf(terminal.value()), "result");
    const Json* job = terminal.value().Find("job");
    ASSERT_NE(job, nullptr);
    EXPECT_EQ(DeterministicJobFields(*job), expected);
    const Json* from_cache = job->Find("from_cache");
    ASSERT_NE(from_cache, nullptr);
    EXPECT_FALSE(from_cache->AsBool()) << "first submission must be a cold run";
  }  // connection closes; the cache must stay hot

  ServeClient second = MustConnect(*server);
  const Result<Json> replay = second.SubmitJob(CheckJobSpecToJson(spec));
  ASSERT_TRUE(replay.ok()) << replay.error().message;
  ASSERT_EQ(TypeOf(replay.value()), "result");
  const Json* job = replay.value().Find("job");
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(DeterministicJobFields(*job), expected);
  const Json* from_cache = job->Find("from_cache");
  ASSERT_NE(from_cache, nullptr);
  EXPECT_TRUE(from_cache->AsBool()) << "second connection must hit the warm cache";
}

TEST(ServerTest, TcpTransportCarriesTheSameBytes) {
  const CheckJobSpec spec = BaseSpec("tcp-parity", kCleanProgram);
  const std::string expected = BatchRendering(spec);

  ServerConfig config;
  config.tcp_port = 0;  // ephemeral
  std::unique_ptr<CheckServer> server = StartServer(std::move(config));
  ASSERT_GT(server->tcp_port(), 0);

  Result<ServeClient> client = ServeClient::ConnectTcpPort(server->tcp_port());
  ASSERT_TRUE(client.ok()) << client.error().message;

  const Result<Json> pong = client.value().Ping();
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(TypeOf(pong.value()), "pong");

  const Result<Json> terminal = client.value().SubmitJob(CheckJobSpecToJson(spec));
  ASSERT_TRUE(terminal.ok()) << terminal.error().message;
  ASSERT_EQ(TypeOf(terminal.value()), "result");
  const Json* job = terminal.value().Find("job");
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(DeterministicJobFields(*job), expected);
}

TEST(ServerTest, InvalidJobKeepsBatchShape) {
  // A program that fails to prepare flows through the same invalid-result
  // path as `secpol batch`: accepted frame, then a kInvalid result frame —
  // not a protocol error, and the connection stays open.
  CheckJobSpec bad = BaseSpec("unparsable", "progrm oops");
  const std::string expected = BatchRendering(bad);

  std::unique_ptr<CheckServer> server = StartServer(ServerConfig{});
  ServeClient client = MustConnect(*server);
  const Result<Json> terminal = client.SubmitJob(CheckJobSpecToJson(bad));
  ASSERT_TRUE(terminal.ok()) << terminal.error().message;
  ASSERT_EQ(TypeOf(terminal.value()), "result");
  const Json* job = terminal.value().Find("job");
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(StringField(*job, "status"), "invalid");
  EXPECT_EQ(IntField(*job, "exit_code"), 1);
  EXPECT_EQ(DeterministicJobFields(*job), expected);

  const Result<Json> pong = client.Ping();
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(TypeOf(pong.value()), "pong");
}

TEST(ServerTest, UnknownJobFieldIsInvalidNotProtocolError) {
  std::unique_ptr<CheckServer> server = StartServer(ServerConfig{});
  ServeClient client = MustConnect(*server);

  Json job = CheckJobSpecToJson(BaseSpec("strict", kCleanProgram));
  job.Set("flarp", Json::MakeInt(1));
  const Result<Json> terminal = client.SubmitJob(job);
  ASSERT_TRUE(terminal.ok()) << terminal.error().message;
  ASSERT_EQ(TypeOf(terminal.value()), "result");
  const Json* result_job = terminal.value().Find("job");
  ASSERT_NE(result_job, nullptr);
  EXPECT_EQ(StringField(*result_job, "status"), "invalid");
  EXPECT_EQ(IntField(*result_job, "exit_code"), 1);
  EXPECT_NE(StringField(*result_job, "error").find("flarp"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Typed protocol errors.

TEST(ServerTest, MalformedFrameGetsTypedErrorAndCloses) {
  std::unique_ptr<CheckServer> server = StartServer(ServerConfig{});
  ServeClient client = MustConnect(*server);

  const std::uint32_t zero = 0;  // a zero-length frame is framing nonsense
  std::string error;
  ASSERT_TRUE(SendAll(client.fd().get(), &zero, sizeof(zero), &error)) << error;

  Result<Json> frame = client.Read();
  ASSERT_TRUE(frame.ok()) << frame.error().message;
  EXPECT_EQ(TypeOf(frame.value()), "error");
  EXPECT_EQ(ErrorCodeOf(frame.value()), "malformed-frame");
  EXPECT_TRUE(ServeErrorClosesConnection(ServeErrorCode::kMalformedFrame));
  EXPECT_FALSE(client.Read().ok()) << "framing errors must close the connection";
}

TEST(ServerTest, OversizedFrameGetsTypedErrorAndCloses) {
  ServerConfig config;
  config.quotas.max_frame_bytes = 4096;
  std::unique_ptr<CheckServer> server = StartServer(std::move(config));
  ServeClient client = MustConnect(*server);

  const std::uint32_t huge = htonl(8192);  // over the quota, never allocated
  std::string error;
  ASSERT_TRUE(SendAll(client.fd().get(), &huge, sizeof(huge), &error)) << error;

  Result<Json> frame = client.Read();
  ASSERT_TRUE(frame.ok()) << frame.error().message;
  EXPECT_EQ(TypeOf(frame.value()), "error");
  EXPECT_EQ(ErrorCodeOf(frame.value()), "oversized-frame");
  EXPECT_FALSE(client.Read().ok());
}

TEST(ServerTest, BadJsonGetsTypedErrorAndCloses) {
  std::unique_ptr<CheckServer> server = StartServer(ServerConfig{});
  ServeClient client = MustConnect(*server);

  const std::string frame_bytes = EncodeFrameText("{\"type\": ");
  std::string error;
  ASSERT_TRUE(SendAll(client.fd().get(), frame_bytes.data(), frame_bytes.size(), &error));

  Result<Json> frame = client.Read();
  ASSERT_TRUE(frame.ok()) << frame.error().message;
  EXPECT_EQ(TypeOf(frame.value()), "error");
  EXPECT_EQ(ErrorCodeOf(frame.value()), "bad-json");
  EXPECT_FALSE(client.Read().ok());
}

TEST(ServerTest, TooDeepJsonGetsTypedErrorAndCloses) {
  ServerConfig config;
  config.quotas.max_json_depth = 6;
  std::unique_ptr<CheckServer> server = StartServer(std::move(config));
  ServeClient client = MustConnect(*server);

  std::string deep;
  for (int i = 0; i < 10; ++i) deep += "[";
  for (int i = 0; i < 10; ++i) deep += "]";
  const std::string frame_bytes = EncodeFrameText(deep);
  std::string error;
  ASSERT_TRUE(SendAll(client.fd().get(), frame_bytes.data(), frame_bytes.size(), &error));

  Result<Json> frame = client.Read();
  ASSERT_TRUE(frame.ok()) << frame.error().message;
  EXPECT_EQ(TypeOf(frame.value()), "error");
  EXPECT_EQ(ErrorCodeOf(frame.value()), "too-deep");
  EXPECT_FALSE(client.Read().ok());
}

TEST(ServerTest, BadRequestKeepsConnectionOpen) {
  std::unique_ptr<CheckServer> server = StartServer(ServerConfig{});
  ServeClient client = MustConnect(*server);

  Json request = Json::MakeObject();
  request.Set("type", Json::MakeString("flarp"));
  const Result<Json> frame = client.Call(request);
  ASSERT_TRUE(frame.ok()) << frame.error().message;
  EXPECT_EQ(TypeOf(frame.value()), "error");
  EXPECT_EQ(ErrorCodeOf(frame.value()), "bad-request");
  EXPECT_FALSE(ServeErrorClosesConnection(ServeErrorCode::kBadRequest));

  // Only the request was bad; the stream is intact.
  const Result<Json> pong = client.Ping();
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(TypeOf(pong.value()), "pong");
}

TEST(ServerTest, SubmitProgramFileIsRejectedWithoutTouchingTheFilesystem) {
  std::unique_ptr<CheckServer> server = StartServer(ServerConfig{});
  ServeClient client = MustConnect(*server);

  const std::string existing = ::testing::TempDir() + "/server_test_secret.fl";
  std::ofstream(existing) << "program p(a) { y = a; }";

  const auto submit_program_file = [&](const std::string& path) {
    Json job = Json::MakeObject();
    job.Set("id", Json::MakeString("spy"));
    job.Set("program_file", Json::MakeString(path));
    Result<Json> terminal = client.SubmitJob(job);
    EXPECT_TRUE(terminal.ok()) << (terminal.ok() ? "" : terminal.error().message);
    return terminal.ok() ? std::move(terminal.value()) : Json();
  };

  const Json present = submit_program_file(existing);
  const Json absent = submit_program_file(existing + ".does-not-exist");
  EXPECT_EQ(TypeOf(present), "error");
  EXPECT_EQ(ErrorCodeOf(present), "bad-request");
  EXPECT_EQ(StringField(present, "id"), "spy");
  EXPECT_NE(StringField(present, "message").find("program_file"), std::string::npos);
  // No existence oracle: the refusal is byte-identical whether or not the
  // named path exists on the daemon host.
  EXPECT_EQ(StringField(present, "message"), StringField(absent, "message"));
  EXPECT_EQ(ErrorCodeOf(present), ErrorCodeOf(absent));

  // Request-level rejection: the stream is intact and real work proceeds.
  const Result<Json> pong = client.Ping();
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(TypeOf(pong.value()), "pong");
}

TEST(ServerTest, ReloadDefaultsCannotSmuggleProgramFile) {
  std::unique_ptr<CheckServer> server = StartServer(ServerConfig{});
  ServeClient client = MustConnect(*server);

  Json defaults = Json::MakeObject();
  defaults.Set("program_file", Json::MakeString("/etc/passwd"));
  const Result<Json> response = client.Reload(defaults, Json());
  ASSERT_TRUE(response.ok()) << response.error().message;
  EXPECT_EQ(TypeOf(response.value()), "error");
  EXPECT_EQ(ErrorCodeOf(response.value()), "bad-request");
  EXPECT_NE(StringField(response.value(), "message").find("program_file"),
            std::string::npos);

  // The failed reload left the original policy (and epoch) in place.
  const Result<Json> pong = client.Ping();
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(IntField(pong.value(), "epoch"), 1);
}

TEST(ServerTest, TcpPortsOutsideRangeAreRejectedNotTruncated) {
  int bound = -1;
  const Result<Fd> listen_high = ListenTcp(70000, &bound);  // htons would bind 4464
  ASSERT_FALSE(listen_high.ok());
  EXPECT_NE(listen_high.error().message.find("65535"), std::string::npos);
  EXPECT_FALSE(ListenTcp(65536, &bound).ok());
  EXPECT_FALSE(ConnectTcp(70000).ok());
  EXPECT_FALSE(ConnectTcp(0).ok());  // 0 means "ephemeral" only for listeners
}

TEST(ServerTest, SendTimeoutFailsFastWhenPeerStopsReading) {
  int pair[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
  Fd writer(pair[0]);
  Fd silent_peer(pair[1]);  // never reads, exactly like a stalled client
  ASSERT_TRUE(SetSendTimeoutMs(writer, 100));

  // Far beyond any default socket buffer, so the write must eventually wait
  // for the peer — and with SO_SNDTIMEO set, fail instead of waiting forever.
  const std::string block(8u << 20, 'x');
  std::string error;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(SendAll(writer.get(), block.data(), block.size(), &error));
  const auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - start)
                              .count();
  EXPECT_NE(error.find("timed out"), std::string::npos) << error;
  EXPECT_LT(elapsed_ms, 5000) << "send timeout did not bound the blocking write";
}

TEST(ServerTest, ErrorCodesAreDistinctOnTheWire) {
  const ServeErrorCode codes[] = {
      ServeErrorCode::kMalformedFrame, ServeErrorCode::kOversizedFrame,
      ServeErrorCode::kBadJson,        ServeErrorCode::kTooDeep,
      ServeErrorCode::kBadRequest,     ServeErrorCode::kOverQuota,
      ServeErrorCode::kShuttingDown,
  };
  std::vector<std::string> names;
  for (const ServeErrorCode code : codes) {
    const std::string name = ServeErrorCodeName(code);
    EXPECT_EQ(ParseServeErrorCode(name), code);
    for (const std::string& seen : names) {
      EXPECT_NE(seen, name);
    }
    names.push_back(name);
  }
}

TEST(ServerTest, SiblingConnectionSurvivesAPoisonedOne) {
  std::unique_ptr<CheckServer> server = StartServer(ServerConfig{});
  ServeClient poisoned = MustConnect(*server);
  ServeClient sibling = MustConnect(*server);

  const std::uint32_t zero = 0;
  std::string error;
  ASSERT_TRUE(SendAll(poisoned.fd().get(), &zero, sizeof(zero), &error));
  Result<Json> frame = poisoned.Read();
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(ErrorCodeOf(frame.value()), "malformed-frame");

  // The sibling's work proceeds untouched, and new connections still land.
  const Result<Json> terminal =
      sibling.SubmitJob(CheckJobSpecToJson(BaseSpec("sibling", kCleanProgram)));
  ASSERT_TRUE(terminal.ok()) << terminal.error().message;
  ASSERT_EQ(TypeOf(terminal.value()), "result");
  const Json* job = terminal.value().Find("job");
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(StringField(*job, "status"), "completed");

  ServeClient fresh = MustConnect(*server);
  const Result<Json> pong = fresh.Ping();
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(TypeOf(pong.value()), "pong");
}

// ---------------------------------------------------------------------------
// Admission quotas and fairness.

TEST(ServerTest, OverQuotaRejectsWhileSiblingsProceed) {
  ServerConfig config;
  config.concurrency = 1;
  config.quotas.max_inflight_per_client = 1;
  std::unique_ptr<CheckServer> server = StartServer(std::move(config));

  ServeClient greedy = MustConnect(*server);
  FrameReader greedy_frames(&greedy);

  // First submission occupies the whole quota for the slow sweep's duration.
  Json submit = Json::MakeObject();
  submit.Set("type", Json::MakeString("submit"));
  submit.Set("job", CheckJobSpecToJson(SlowSpec("slow")));
  ASSERT_TRUE(greedy.Send(submit).ok());
  EXPECT_EQ(TypeOf(greedy_frames.NextOfType("accepted")), "accepted");

  // Second submission on the same connection: typed over-quota error that
  // names the offending job, connection still open.
  Json second = Json::MakeObject();
  second.Set("type", Json::MakeString("submit"));
  second.Set("job", CheckJobSpecToJson(BaseSpec("second", kCleanProgram)));
  ASSERT_TRUE(greedy.Send(second).ok());
  const Json rejection = greedy_frames.NextOfType("error");
  EXPECT_EQ(ErrorCodeOf(rejection), "over-quota");
  EXPECT_EQ(StringField(rejection, "id"), "second");

  // A sibling connection has its own quota and proceeds.
  ServeClient sibling = MustConnect(*server);
  const Result<Json> terminal =
      sibling.SubmitJob(CheckJobSpecToJson(BaseSpec("sibling", kCleanProgram)));
  ASSERT_TRUE(terminal.ok()) << terminal.error().message;
  ASSERT_EQ(TypeOf(terminal.value()), "result");

  // The greedy client's admitted job still completes.
  const Json result = greedy_frames.NextOfType("result");
  EXPECT_EQ(StringField(result, "id"), "slow");
  const Json* job = result.Find("job");
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(StringField(*job, "status"), "completed");
}

TEST(ServerTest, HigherPriorityJobsDispatchFirst) {
  ServerConfig config;
  config.concurrency = 1;
  std::unique_ptr<CheckServer> server = StartServer(std::move(config));
  ServeClient client = MustConnect(*server);
  FrameReader frames(&client);

  // The slow job pins the single worker; the two queued behind it must then
  // dispatch by priority, not arrival order. Slow carries the top priority so
  // the order holds even if the worker only wakes after all three are queued
  // (the accepted frame is sent at admission, before dispatch).
  CheckJobSpec low = BaseSpec("low", kCleanProgram);
  low.priority = 1;
  CheckJobSpec high = BaseSpec("high", kLeakyProgram);
  high.grid_lo = -2;  // distinct spec: a cache hit would not mask ordering
  high.priority = 9;

  CheckJobSpec slow = SlowSpec("slow");
  slow.priority = 10;
  const CheckJobSpec* submissions[] = {&slow /*holds the worker*/, &low, &high};
  for (const CheckJobSpec* spec : submissions) {
    Json submit = Json::MakeObject();
    submit.Set("type", Json::MakeString("submit"));
    submit.Set("job", CheckJobSpecToJson(*spec));
    ASSERT_TRUE(client.Send(submit).ok());
    EXPECT_EQ(TypeOf(frames.NextOfType("accepted")), "accepted");
  }

  EXPECT_EQ(StringField(frames.NextOfType("result"), "id"), "slow");
  EXPECT_EQ(StringField(frames.NextOfType("result"), "id"), "high");
  EXPECT_EQ(StringField(frames.NextOfType("result"), "id"), "low");
}

// ---------------------------------------------------------------------------
// Hot reload and epoch pinning.

TEST(ServerTest, ReloadPinsInFlightJobsToTheirEpoch) {
  ServerConfig config;
  config.concurrency = 1;
  std::unique_ptr<CheckServer> server = StartServer(std::move(config));
  ServeClient client = MustConnect(*server);
  FrameReader frames(&client);

  Json submit = Json::MakeObject();
  submit.Set("type", Json::MakeString("submit"));
  submit.Set("job", CheckJobSpecToJson(SlowSpec("pinned")));
  ASSERT_TRUE(client.Send(submit).ok());
  const Json accepted = frames.NextOfType("accepted");
  EXPECT_EQ(IntField(accepted, "epoch"), 1);

  // Reload while the job is mid-sweep: new quotas install atomically under
  // a bumped epoch...
  Json reload = Json::MakeObject();
  reload.Set("type", Json::MakeString("reload"));
  Json quotas = Json::MakeObject();
  quotas.Set("max_inflight_per_client", Json::MakeInt(3));
  reload.Set("quotas", std::move(quotas));
  ASSERT_TRUE(client.Send(reload).ok());
  const Json reload_ok = frames.NextOfType("reload-ok");
  EXPECT_EQ(IntField(reload_ok, "epoch"), 2);
  EXPECT_EQ(server->policy()->epoch, 2u);
  EXPECT_EQ(server->policy()->quotas.max_inflight_per_client, 3);

  // ...but the in-flight job still completes under — and reports — the
  // epoch it was admitted at.
  const Json result = frames.NextOfType("result");
  EXPECT_EQ(StringField(result, "id"), "pinned");
  EXPECT_EQ(IntField(result, "epoch"), 1);
  const Json* job = result.Find("job");
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(StringField(*job, "status"), "completed");

  // A submission after the reload is admitted under the new epoch.
  Json next = Json::MakeObject();
  next.Set("type", Json::MakeString("submit"));
  next.Set("job", CheckJobSpecToJson(BaseSpec("fresh", kCleanProgram)));
  ASSERT_TRUE(client.Send(next).ok());
  EXPECT_EQ(IntField(frames.NextOfType("accepted"), "epoch"), 2);
  EXPECT_EQ(IntField(frames.NextOfType("result"), "epoch"), 2);
}

TEST(ServerTest, ReloadDefaultsApplyToLaterSubmissions) {
  std::unique_ptr<CheckServer> server = StartServer(ServerConfig{});
  ServeClient client = MustConnect(*server);

  // Install a default program via reload, then submit a job that relies on
  // the defaults for everything but its id and policy bits.
  Json defaults = Json::MakeObject();
  defaults.Set("program", Json::MakeString(kCleanProgram));
  defaults.Set("grid", [] {
    Json grid = Json::MakeObject();
    grid.Set("lo", Json::MakeInt(-1));
    grid.Set("hi", Json::MakeInt(1));
    return grid;
  }());
  const Result<Json> reload_ok = client.Reload(defaults, Json());
  ASSERT_TRUE(reload_ok.ok()) << reload_ok.error().message;
  ASSERT_EQ(TypeOf(reload_ok.value()), "reload-ok");

  Json job = Json::MakeObject();
  job.Set("id", Json::MakeString("defaulted"));
  Json allow = Json::MakeArray();
  allow.Append(Json::MakeInt(0));
  job.Set("allow", std::move(allow));
  const Result<Json> terminal = client.SubmitJob(job);
  ASSERT_TRUE(terminal.ok()) << terminal.error().message;
  ASSERT_EQ(TypeOf(terminal.value()), "result");
  const Json* result_job = terminal.value().Find("job");
  ASSERT_NE(result_job, nullptr);
  EXPECT_EQ(StringField(*result_job, "status"), "completed");
}

TEST(ServerTest, ReloadValidationFailsClosed) {
  std::unique_ptr<CheckServer> server = StartServer(ServerConfig{});
  ServeClient client = MustConnect(*server);

  Json bad_quotas = Json::MakeObject();
  bad_quotas.Set("max_inflight_per_client", Json::MakeInt(0));
  const Result<Json> rejected = client.Reload(Json(), bad_quotas);
  ASSERT_TRUE(rejected.ok());
  EXPECT_EQ(TypeOf(rejected.value()), "error");
  EXPECT_EQ(ErrorCodeOf(rejected.value()), "bad-request");

  Json unknown = Json::MakeObject();
  unknown.Set("max_flarps", Json::MakeInt(5));
  const Result<Json> unknown_key = client.Reload(Json(), unknown);
  ASSERT_TRUE(unknown_key.ok());
  EXPECT_EQ(ErrorCodeOf(unknown_key.value()), "bad-request");

  // A failed reload installs nothing: the epoch is unchanged and the
  // connection remains usable.
  EXPECT_EQ(server->policy()->epoch, 1u);
  const Result<Json> pong = client.Ping();
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(TypeOf(pong.value()), "pong");
}

// ---------------------------------------------------------------------------
// Drain and stats.

TEST(ServerTest, DrainCompletesInFlightAndRejectsNewSubmissions) {
  ServerConfig config;
  config.concurrency = 1;
  std::unique_ptr<CheckServer> server = StartServer(std::move(config));
  ServeClient client = MustConnect(*server);
  FrameReader frames(&client);

  Json submit = Json::MakeObject();
  submit.Set("type", Json::MakeString("submit"));
  submit.Set("job", CheckJobSpecToJson(SlowSpec("draining")));
  ASSERT_TRUE(client.Send(submit).ok());
  EXPECT_EQ(TypeOf(frames.NextOfType("accepted")), "accepted");

  server->RequestDrain();
  EXPECT_TRUE(server->draining());

  Json late = Json::MakeObject();
  late.Set("type", Json::MakeString("submit"));
  late.Set("job", CheckJobSpecToJson(BaseSpec("late", kCleanProgram)));
  ASSERT_TRUE(client.Send(late).ok());
  const Json rejection = frames.NextOfType("error");
  EXPECT_EQ(ErrorCodeOf(rejection), "shutting-down");
  EXPECT_EQ(StringField(rejection, "id"), "late");

  // The admitted job is never dropped or re-policed by the drain.
  const Json result = frames.NextOfType("result");
  EXPECT_EQ(StringField(result, "id"), "draining");
  const Json* job = result.Find("job");
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(StringField(*job, "status"), "completed");

  // Shutdown returns only after the drain barrier: no admitted work left.
  server->Shutdown();
  const Json stats = server->StatsJson();
  const Json* jobs = stats.Find("jobs");
  ASSERT_NE(jobs, nullptr);
  EXPECT_EQ(IntField(*jobs, "completed"), 1);
  EXPECT_EQ(IntField(*jobs, "rejected_draining"), 1);
}

TEST(ServerTest, StatsFrameReportsLiveCountersAndMetrics) {
  std::unique_ptr<CheckServer> server = StartServer(ServerConfig{});
  ServeClient client = MustConnect(*server);

  const CheckJobSpec spec = BaseSpec("counted", kLeakyProgram);
  ASSERT_TRUE(client.SubmitJob(CheckJobSpecToJson(spec)).ok());
  ASSERT_TRUE(client.SubmitJob(CheckJobSpecToJson(spec)).ok());  // warm replay

  const Result<Json> stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.error().message;
  ASSERT_EQ(TypeOf(stats.value()), "stats");

  const Json* server_obj = stats.value().Find("server");
  ASSERT_NE(server_obj, nullptr);
  EXPECT_EQ(IntField(*server_obj, "epoch"), 1);
  const Json* jobs = server_obj->Find("jobs");
  ASSERT_NE(jobs, nullptr);
  EXPECT_EQ(IntField(*jobs, "submitted"), 2);
  EXPECT_EQ(IntField(*jobs, "completed"), 2);
  EXPECT_EQ(IntField(*jobs, "executed"), 1);
  EXPECT_EQ(IntField(*jobs, "cache_hits"), 1);
  const Json* cache = server_obj->Find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(IntField(*cache, "entries"), 1);

  // The metrics snapshot rides along: the daemon's own registry, including
  // the per-job wall-time histogram it records.
  const Json* metrics = stats.value().Find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_TRUE(metrics->is_object());
  EXPECT_NE(metrics->Find("counters"), nullptr);
}

TEST(ServerTest, ShutdownIsIdempotentAndUnlinksTheSocket) {
  ServerConfig config;
  config.unix_path = testlib::TempSocketPath("server_test_shutdown");
  const std::string path = config.unix_path;
  std::unique_ptr<CheckServer> server = StartServer(std::move(config));

  ServeClient client = MustConnect(*server);
  ASSERT_TRUE(client.Ping().ok());

  server->Shutdown();
  server->Shutdown();  // idempotent

  // The socket file is gone; a new connection attempt fails.
  EXPECT_FALSE(ServeClient::ConnectUnixPath(path).ok());
}

}  // namespace
}  // namespace secpol
