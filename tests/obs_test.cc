// Tests for the observability layer: concurrent counter/histogram merging
// (run under TSan in CI), deterministic registry snapshots, well-formed
// Chrome trace JSON, the zero-cost disabled mode, and the contract that
// attaching sinks never changes a checker's or a batch's report bytes.

#include "src/obs/obs.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/flowlang/lower.h"
#include "src/flowlang/parser.h"
#include "src/mechanism/domain.h"
#include "src/mechanism/mechanism.h"
#include "src/mechanism/soundness.h"
#include "src/policy/policy.h"
#include "src/service/manifest.h"
#include "src/service/service.h"
#include "src/util/json.h"

namespace secpol {
namespace {

constexpr int kThreads = 7;

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
}

TEST(CounterTest, MergesAcrossThreads) {
  Counter counter;
  constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter.Add(1);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter.Value(), kPerThread * kThreads);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge gauge;
  EXPECT_EQ(gauge.Value(), 0);
  gauge.Set(10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.Value(), 7);
}

TEST(HistogramTest, ExactStatsAndBuckets) {
  Histogram histogram;
  EXPECT_EQ(histogram.Count(), 0u);
  for (std::uint64_t v : {0u, 1u, 2u, 3u, 1000u}) {
    histogram.Record(v);
  }
  EXPECT_EQ(histogram.Count(), 5u);
  EXPECT_EQ(histogram.Sum(), 1006u);
  EXPECT_EQ(histogram.Min(), 0u);
  EXPECT_EQ(histogram.Max(), 1000u);
  // Bucket i holds values of bit width i: 0 -> bucket 0, 1 -> bucket 1,
  // {2, 3} -> bucket 2, 1000 (10 bits) -> bucket 10.
  EXPECT_EQ(histogram.BucketCount(0), 1u);
  EXPECT_EQ(histogram.BucketCount(1), 1u);
  EXPECT_EQ(histogram.BucketCount(2), 2u);
  EXPECT_EQ(histogram.BucketCount(10), 1u);
}

TEST(HistogramTest, MergesAcrossThreads) {
  Histogram histogram;
  constexpr std::uint64_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        histogram.Record(static_cast<std::uint64_t>(t) * kPerThread + i);
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  const std::uint64_t n = kPerThread * kThreads;
  EXPECT_EQ(histogram.Count(), n);
  EXPECT_EQ(histogram.Sum(), n * (n - 1) / 2);
  EXPECT_EQ(histogram.Min(), 0u);
  EXPECT_EQ(histogram.Max(), n - 1);
}

TEST(HistogramTest, ToJsonOmitsEmptyBucketsAndReportsMean) {
  Histogram histogram;
  histogram.Record(4);
  histogram.Record(6);
  const Json json = histogram.ToJson();
  ASSERT_TRUE(json.is_object());
  EXPECT_EQ(json.Find("count")->AsInt(), 2);
  EXPECT_EQ(json.Find("sum")->AsInt(), 10);
  EXPECT_EQ(json.Find("min")->AsInt(), 4);
  EXPECT_EQ(json.Find("max")->AsInt(), 6);
  EXPECT_DOUBLE_EQ(json.Find("mean")->AsDouble(), 5.0);
  // Both samples have bit width 3, so exactly one bucket survives.
  ASSERT_TRUE(json.Find("buckets")->is_array());
  EXPECT_EQ(json.Find("buckets")->Items().size(), 1u);
  EXPECT_EQ(json.Find("buckets")->Items()[0].Find("le")->AsInt(), 7);
  EXPECT_EQ(json.Find("buckets")->Items()[0].Find("count")->AsInt(), 2);
}

TEST(RegistryTest, GetReturnsStablePointersAndRegistersOnce) {
  MetricsRegistry registry;
  EXPECT_TRUE(registry.empty());
  Counter* counter = registry.GetCounter("a.count");
  EXPECT_EQ(counter, registry.GetCounter("a.count"));
  EXPECT_NE(counter, registry.GetCounter("b.count"));
  EXPECT_EQ(registry.GetGauge("a.gauge"), registry.GetGauge("a.gauge"));
  EXPECT_EQ(registry.GetHistogram("a.hist"), registry.GetHistogram("a.hist"));
  EXPECT_FALSE(registry.empty());
}

TEST(RegistryTest, ConcurrentRegistrationAndRecordingIsSafe) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < 1000; ++i) {
        registry.GetCounter("shared.count")->Add(1);
        registry.GetHistogram("shared.hist")->Record(static_cast<std::uint64_t>(i));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(registry.GetCounter("shared.count")->Value(), 7000u);
  EXPECT_EQ(registry.GetHistogram("shared.hist")->Count(), 7000u);
}

TEST(RegistryTest, SnapshotIsNameSortedAndDeterministic) {
  MetricsRegistry registry;
  // Registered out of order; the snapshot must not care.
  registry.GetCounter("zebra")->Add(1);
  registry.GetCounter("alpha")->Add(2);
  registry.GetGauge("middle")->Set(-5);
  const Json snapshot = registry.Snapshot();
  ASSERT_TRUE(snapshot.is_object());
  const Json* counters = snapshot.Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_EQ(counters->Members().size(), 2u);
  EXPECT_EQ(counters->Members()[0].first, "alpha");
  EXPECT_EQ(counters->Members()[1].first, "zebra");
  EXPECT_EQ(counters->Find("alpha")->AsInt(), 2);
  EXPECT_EQ(snapshot.Find("gauges")->Find("middle")->AsInt(), -5);
  EXPECT_EQ(registry.Snapshot().Serialize(), snapshot.Serialize());
  // The snapshot text itself must re-parse with our own parser.
  EXPECT_TRUE(Json::Parse(snapshot.Pretty()).ok());
}

TEST(TraceTest, EmitsWellFormedChromeTraceJson) {
  TraceRecorder recorder;
  {
    ScopedSpan span(&recorder, "outer", "test");
    Json args = Json::MakeObject();
    args.Set("points", Json::MakeInt(9));
    span.SetArgs(std::move(args));
  }
  recorder.AddInstant("marker", "test");
  EXPECT_EQ(recorder.size(), 2u);

  const std::string text = recorder.ToJson().Serialize();
  Result<Json> parsed = Json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << text;
  const Json* events = parsed.value().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->Items().size(), 2u);
  const Json& span_event = events->Items()[0];
  EXPECT_EQ(span_event.Find("name")->AsString(), "outer");
  EXPECT_EQ(span_event.Find("ph")->AsString(), "X");
  EXPECT_GE(span_event.Find("dur")->AsInt(), 0);
  EXPECT_EQ(span_event.Find("args")->Find("points")->AsInt(), 9);
  const Json& instant = events->Items()[1];
  EXPECT_EQ(instant.Find("ph")->AsString(), "i");
  // Same thread -> same small sequential tid.
  EXPECT_EQ(span_event.Find("tid")->AsInt(), instant.Find("tid")->AsInt());
}

TEST(TraceTest, ConcurrentRecordingAssignsSequentialTids) {
  TraceRecorder recorder;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder] {
      for (int i = 0; i < 50; ++i) {
        recorder.AddInstant("tick", "test");
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(recorder.size(), static_cast<std::size_t>(kThreads) * 50);
  const Json json = recorder.ToJson();
  for (const Json& event : json.Find("traceEvents")->Items()) {
    const std::int64_t tid = event.Find("tid")->AsInt();
    EXPECT_GE(tid, 0);
    EXPECT_LT(tid, kThreads);
  }
}

TEST(ScopedSpanTest, NullRecorderIsANoOp) {
  ScopedSpan span(nullptr, "nothing", "test");
  span.SetArgs(Json::MakeObject());
  // Destructor must not touch anything; reaching the end is the assertion.
}

// --- End-to-end: a checker run against attached vs. disabled sinks. ---

struct Checked {
  SoundnessReport report;
};

Checked RunSoundness(const ObsContext& obs) {
  Result<SourceProgram> parsed =
      ParseProgram("program p(a, b) { if (b > 0) { y = a + 1; } else { y = a; } }");
  EXPECT_TRUE(parsed.ok());
  const Program program = Lower(parsed.value());
  const ProgramAsMechanism mechanism{Program(program)};
  const AllowPolicy policy(program.num_inputs(), VarSet{0});
  const InputDomain domain = InputDomain::Range(program.num_inputs(), -1, 2);
  CheckOptions options = CheckOptions::Serial();
  options.obs = obs;
  return Checked{CheckSoundness(mechanism, policy, domain,
                                Observability::kValueOnly, options)};
}

TEST(ObsContextTest, DisabledContextReportsDisabled) {
  ObsContext disabled;
  EXPECT_FALSE(disabled.enabled());
  MetricsRegistry registry;
  EXPECT_TRUE((ObsContext{&registry, nullptr}.enabled()));
  TraceRecorder recorder;
  EXPECT_TRUE((ObsContext{nullptr, &recorder}.enabled()));
}

TEST(ObsContextTest, CheckerPopulatesAttachedSinks) {
  MetricsRegistry registry;
  TraceRecorder recorder;
  const Checked checked = RunSoundness(ObsContext{&registry, &recorder});
  EXPECT_EQ(registry.GetCounter("check.soundness.runs")->Value(), 1u);
  EXPECT_EQ(registry.GetCounter("check.soundness.points")->Value(),
            checked.report.progress.evaluated);
  EXPECT_EQ(registry.GetCounter("sweep.sweeps")->Value(), 1u);
  EXPECT_EQ(registry.GetCounter("sweep.points")->Value(), checked.report.progress.evaluated);
  // One serial shard span plus the check span, at minimum.
  EXPECT_GE(recorder.size(), 2u);
  bool saw_check_span = false;
  const Json trace_json = recorder.ToJson();
  for (const Json& event : trace_json.Find("traceEvents")->Items()) {
    if (event.Find("name")->AsString() == "soundness" &&
        event.Find("cat")->AsString() == "check") {
      saw_check_span = true;
    }
  }
  EXPECT_TRUE(saw_check_span);
}

TEST(ObsContextTest, DisabledModeLeavesReportBitsAndSinksUntouched) {
  const Checked with_obs = [&] {
    MetricsRegistry registry;
    TraceRecorder recorder;
    return RunSoundness(ObsContext{&registry, &recorder});
  }();
  const Checked without = RunSoundness(ObsContext());
  // Attaching sinks must not perturb the report in any way.
  EXPECT_EQ(with_obs.report.ToString(), without.report.ToString());
  EXPECT_EQ(with_obs.report.sound, without.report.sound);
  EXPECT_EQ(with_obs.report.progress.evaluated, without.report.progress.evaluated);
}

// --- Batch report: the "metrics" block is strictly opt-in. ---

std::vector<CheckJobSpec> TwoJobs() {
  std::vector<CheckJobSpec> jobs(2);
  jobs[0].id = "a";
  jobs[0].program_text = "program p(a, b) { y = a; }";
  jobs[0].allow = VarSet{0};
  jobs[1] = jobs[0];
  jobs[1].id = "b";
  jobs[1].checker = CheckerKind::kLeak;
  return jobs;
}

TEST(BatchObsTest, ReportBytesIdenticalWithMetricsOff) {
  // Default config: no sinks, no metrics block.
  const BatchReport plain = CheckService(ServiceConfig()).RunBatch(TwoJobs());

  // Sinks attached but report_metrics left off: every deterministic byte of
  // the report must be identical, and the JSON must not grow a metrics key.
  MetricsRegistry registry;
  TraceRecorder recorder;
  ServiceConfig config;
  config.obs = ObsContext{&registry, &recorder};
  const BatchReport observed = CheckService(std::move(config)).RunBatch(TwoJobs());

  ASSERT_EQ(observed.jobs.size(), plain.jobs.size());
  for (std::size_t i = 0; i < plain.jobs.size(); ++i) {
    EXPECT_EQ(observed.jobs[i].report, plain.jobs[i].report);
    EXPECT_EQ(observed.jobs[i].exit_code, plain.jobs[i].exit_code);
    EXPECT_EQ(observed.jobs[i].cache_key, plain.jobs[i].cache_key);
  }
  EXPECT_FALSE(plain.metrics.is_object());
  EXPECT_FALSE(observed.metrics.is_object());
  EXPECT_EQ(BatchReportToJson(plain).Find("metrics"), nullptr);
  EXPECT_EQ(BatchReportToJson(observed).Find("metrics"), nullptr);
  // The sinks did observe the batch even though the report ignores them.
  EXPECT_GE(registry.GetCounter("service.batches")->Value(), 1u);
  EXPECT_GE(recorder.size(), 1u);
}

TEST(BatchObsTest, ReportMetricsOptInAddsSnapshotBlock) {
  ServiceConfig config;
  config.report_metrics = true;  // no registry given: the service owns one
  const BatchReport report = CheckService(std::move(config)).RunBatch(TwoJobs());
  ASSERT_TRUE(report.metrics.is_object());
  const Json* counters = report.metrics.Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->Find("service.batches"), nullptr);
  EXPECT_EQ(counters->Find("service.batches")->AsInt(), 1);
  EXPECT_EQ(counters->Find("service.submitted")->AsInt(), 2);
  const Json rendered = BatchReportToJson(report);
  ASSERT_NE(rendered.Find("metrics"), nullptr);
  EXPECT_TRUE(Json::Parse(rendered.Serialize()).ok());
}

TEST(BatchObsTest, ManifestMetricsFlagRoundTrips) {
  const char* manifest_text = R"({
    "service": {"metrics": true},
    "jobs": [{"id": "j", "program": "program p(a) { y = a; }", "allow": [0]}]
  })";
  Result<BatchManifest> manifest = ParseBatchManifest(manifest_text);
  ASSERT_TRUE(manifest.ok()) << manifest.error().ToString();
  EXPECT_TRUE(manifest.value().service.report_metrics);
  // Default stays off.
  Result<BatchManifest> plain = ParseBatchManifest(
      R"({"jobs": [{"id": "j", "program": "program p(a) { y = a; }", "allow": [0]}]})");
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain.value().service.report_metrics);
}

}  // namespace
}  // namespace secpol
