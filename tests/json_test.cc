// Tests for the minimal JSON value type the batch service speaks at its
// boundaries (manifests in, batch reports and cache files out).

#include "src/util/json.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>

namespace secpol {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(Json::Parse("null").value().is_null());
  EXPECT_TRUE(Json::Parse("true").value().AsBool());
  EXPECT_FALSE(Json::Parse("false").value().AsBool());
  EXPECT_EQ(Json::Parse("42").value().AsInt(), 42);
  EXPECT_EQ(Json::Parse("-7").value().AsInt(), -7);
  EXPECT_DOUBLE_EQ(Json::Parse("2.5").value().AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(Json::Parse("1e3").value().AsDouble(), 1000.0);
  EXPECT_EQ(Json::Parse("\"hi\"").value().AsString(), "hi");
}

TEST(JsonParseTest, IntegerVsDoubleKinds) {
  EXPECT_TRUE(Json::Parse("42").value().is_int());
  EXPECT_FALSE(Json::Parse("42.0").value().is_int());
  EXPECT_TRUE(Json::Parse("42.0").value().is_number());
  // An integer literal too large for int64 degrades to double.
  EXPECT_FALSE(Json::Parse("99999999999999999999999").value().is_int());
}

TEST(JsonParseTest, Structures) {
  const Json doc = Json::Parse(R"({"a": [1, 2, {"b": true}], "c": "x"})").value();
  ASSERT_TRUE(doc.is_object());
  const Json* a = doc.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->Items().size(), 3u);
  EXPECT_EQ(a->Items()[1].AsInt(), 2);
  EXPECT_TRUE(a->Items()[2].Find("b")->AsBool());
  EXPECT_EQ(doc.Find("c")->AsString(), "x");
  EXPECT_EQ(doc.Find("missing"), nullptr);
}

TEST(JsonParseTest, StringEscapes) {
  EXPECT_EQ(Json::Parse(R"("a\"b\\c\nd\te")").value().AsString(), "a\"b\\c\nd\te");
  EXPECT_EQ(Json::Parse(R"("Aé")").value().AsString(), "A\xc3\xa9");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(Json::Parse("").ok());
  EXPECT_FALSE(Json::Parse("{").ok());
  EXPECT_FALSE(Json::Parse("[1,]").ok());
  EXPECT_FALSE(Json::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(Json::Parse("tru").ok());
  EXPECT_FALSE(Json::Parse("\"unterminated").ok());
  EXPECT_FALSE(Json::Parse("1 2").ok());           // trailing document
  EXPECT_FALSE(Json::Parse("\"\x01\"").ok());      // raw control char
  EXPECT_FALSE(Json::Parse("{\"a\": nope}").ok());
}

TEST(JsonParseTest, ErrorsCarryLineAndColumn) {
  const auto result = Json::Parse("{\n  \"a\": ??\n}");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().line, 2);
  EXPECT_GT(result.error().column, 1);
}

TEST(JsonSerializeTest, RoundTripsCompact) {
  const std::string text = R"({"jobs": [1, 2], "ok": true, "name": "a\"b", "x": null})";
  const Json doc = Json::Parse(text).value();
  const Json again = Json::Parse(doc.Serialize()).value();
  EXPECT_EQ(doc.Serialize(), again.Serialize());
}

TEST(JsonSerializeTest, ObjectKeysKeepInsertionOrder) {
  Json doc = Json::MakeObject();
  doc.Set("z", Json::MakeInt(1));
  doc.Set("a", Json::MakeInt(2));
  doc.Set("z", Json::MakeInt(3));  // replace keeps position
  EXPECT_EQ(doc.Serialize(), R"({"z": 3, "a": 2})");
}

TEST(JsonSerializeTest, PrettyParsesBack) {
  const Json doc = Json::Parse(R"({"a": [1, {"b": []}], "c": {}})").value();
  const Json again = Json::Parse(doc.Pretty()).value();
  EXPECT_EQ(doc.Serialize(), again.Serialize());
}

TEST(JsonSerializeTest, NonFiniteDoublesDegradeToNull) {
  Json doc = Json::MakeDouble(std::numeric_limits<double>::infinity());
  EXPECT_EQ(doc.Serialize(), "null");
}

// --- Resource limits (untrusted socket input) ---

TEST(JsonLimitsTest, DepthCapRejectsDeepNesting) {
  Json::Limits limits;
  limits.max_depth = 4;
  limits.max_bytes = 0;
  // Depth 4 parses, depth 5 is a typed limit error.
  EXPECT_TRUE(Json::Parse("[[[[1]]]]", limits).ok());
  const Result<Json> deep = Json::Parse("[[[[[1]]]]]", limits);
  ASSERT_FALSE(deep.ok());
  EXPECT_EQ(ClassifyJsonLimit(deep.error()), JsonLimitViolation::kTooDeep);
  // Mixed object/array nesting counts every level.
  const Result<Json> mixed = Json::Parse(R"({"a": [{"b": [{"c": 1}]}]})", limits);
  ASSERT_FALSE(mixed.ok());
  EXPECT_EQ(ClassifyJsonLimit(mixed.error()), JsonLimitViolation::kTooDeep);
}

TEST(JsonLimitsTest, DepthBombFailsFastInsteadOfOverflowing) {
  // A pathological frame an adversary can cheaply construct: 1M open
  // brackets. Without the cap this would exhaust the parser's stack.
  Json::Limits limits;  // defaults: depth 64, 1 MiB
  const std::string bomb(1 << 19, '[');
  const Result<Json> parsed = Json::Parse(bomb, limits);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(ClassifyJsonLimit(parsed.error()), JsonLimitViolation::kTooDeep);
}

TEST(JsonLimitsTest, SizeCapRejectsOversizedDocuments) {
  Json::Limits limits;
  limits.max_depth = 0;
  limits.max_bytes = 16;
  EXPECT_TRUE(Json::Parse(R"({"k": 1})", limits).ok());
  const Result<Json> big = Json::Parse(R"({"key": "0123456789abcdef"})", limits);
  ASSERT_FALSE(big.ok());
  EXPECT_EQ(ClassifyJsonLimit(big.error()), JsonLimitViolation::kTooLarge);
  // The size check is up-front: no partial parse work happens first.
  const Result<Json> garbage = Json::Parse(std::string(1000, '@'), limits);
  ASSERT_FALSE(garbage.ok());
  EXPECT_EQ(ClassifyJsonLimit(garbage.error()), JsonLimitViolation::kTooLarge);
}

TEST(JsonLimitsTest, SyntaxErrorsAreNotLimitViolations) {
  Json::Limits limits;
  const Result<Json> bad = Json::Parse("{oops}", limits);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(ClassifyJsonLimit(bad.error()), JsonLimitViolation::kNone);
}

TEST(JsonLimitsTest, ZeroMeansUnlimited) {
  Json::Limits limits;
  limits.max_depth = 0;
  limits.max_bytes = 0;
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  deep += '1';
  for (int i = 0; i < 200; ++i) deep += ']';
  EXPECT_TRUE(Json::Parse(deep, limits).ok());
  EXPECT_TRUE(Json::Parse(deep).ok());  // the plain overload stays permissive
}

}  // namespace
}  // namespace secpol
