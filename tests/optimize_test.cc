// Tests for the flowchart optimizer: semantic preservation (including step
// counts) and the never-less-complete guarantee for surveillance.

#include <gtest/gtest.h>

#include "src/corpus/generator.h"
#include "src/flowchart/interpreter.h"
#include "src/flowchart/optimize.h"
#include "src/flowlang/lower.h"
#include "src/mechanism/completeness.h"
#include "src/mechanism/domain.h"
#include "src/surveillance/surveillance.h"
#include "src/util/strings.h"

namespace secpol {
namespace {

TEST(OptimizeTest, SimplifiesAssignments) {
  const Program q = MustCompile("program q(a) { y = a * 1 + 0; }");
  OptimizeStats stats;
  const Program opt = OptimizeProgram(q, &stats);
  EXPECT_EQ(stats.expressions_simplified, 1);
  // The simplified expression is just `a`.
  bool found = false;
  for (int b = 0; b < opt.num_boxes(); ++b) {
    if (opt.box(b).kind == Box::Kind::kAssign) {
      EXPECT_TRUE(opt.box(b).expr.StructurallyEquals(V(0)));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(OptimizeTest, FoldsConstantDecisions) {
  // The corpus loop scaffold emits `if (1) { ... }`.
  const Program q = MustCompile("program q(a) { if (1 == 1) { y = a; } else { y = 9; } }");
  OptimizeStats stats;
  const Program opt = OptimizeProgram(q, &stats);
  EXPECT_EQ(stats.predicates_folded, 1);
  EXPECT_EQ(RunProgram(opt, Input{4}).output, 4);
  // Step counts are preserved: the folded decision still costs its step.
  EXPECT_EQ(RunProgram(opt, Input{4}).steps, RunProgram(q, Input{4}).steps);
}

TEST(OptimizeTest, PreservesValidity) {
  const Program q = MustCompile(
      "program q(a) { locals c; c = 2; while (c != 0) { y = y + a * 1; c = c - 1; } }");
  const Program opt = OptimizeProgram(q);
  EXPECT_TRUE(opt.Validate().ok());
}

class OptimizePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimizePropertyTest, ExecutionIdenticalIncludingSteps) {
  CorpusConfig config;
  config.num_inputs = 3;
  const Program q = Lower(GenerateProgram(config, GetParam(), "opt"));
  const Program opt = OptimizeProgram(q);
  ASSERT_TRUE(opt.Validate().ok());
  InputDomain::Uniform(3, {-2, 0, 1, 3}).ForEach([&](InputView input) {
    const ExecResult ref = RunProgram(q, input);
    const ExecResult got = RunProgram(opt, input);
    ASSERT_EQ(ref.output, got.output) << "seed " << GetParam() << FormatInput(input);
    ASSERT_EQ(ref.steps, got.steps) << "seed " << GetParam() << FormatInput(input);
    ASSERT_EQ(ref.halt_box, got.halt_box) << "seed " << GetParam() << FormatInput(input);
  });
}

TEST_P(OptimizePropertyTest, SurveillanceNeverLessComplete) {
  CorpusConfig config;
  config.num_inputs = 2;
  const Program q = Lower(GenerateProgram(config, GetParam(), "opt"));
  const Program opt = OptimizeProgram(q);
  const VarSet allowed{0};
  const SurveillanceMechanism before = MakeSurveillanceM(Program(q), allowed);
  const SurveillanceMechanism after = MakeSurveillanceM(Program(opt), allowed);
  const InputDomain domain = InputDomain::Uniform(2, {0, 1, 2});
  EXPECT_EQ(CompareCompleteness(after, before, domain).second_only, 0u)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Corpus, OptimizePropertyTest,
                         ::testing::Range<std::uint64_t>(9000, 9040));

TEST(OptimizeTest, CanUnlockSurveillanceReleases) {
  // `y = sec * 0 + pub` depends only on pub semantically, but the label of
  // the raw expression includes sec. Simplification drops the dead term.
  const Program q = MustCompile("program q(pub, sec) { y = sec * 0 + pub; }");
  const VarSet allowed{0};
  const SurveillanceMechanism before = MakeSurveillanceM(Program(q), allowed);
  EXPECT_TRUE(before.Run(Input{5, 9}).IsViolation());

  const Program opt = OptimizeProgram(q);
  const SurveillanceMechanism after = MakeSurveillanceM(Program(opt), allowed);
  const Outcome o = after.Run(Input{5, 9});
  ASSERT_TRUE(o.IsValue());
  EXPECT_EQ(o.value, 5);
}

}  // namespace
}  // namespace secpol
