// A multi-level-security kernel on a Denning lattice: two monitor designs
// for one policy, compared with the paper's own yardsticks (soundness, then
// completeness).

#include <cstdio>
#include <memory>

#include "src/lattice/lattice.h"
#include "src/mechanism/completeness.h"
#include "src/mechanism/soundness.h"
#include "src/monitor/mls.h"

using namespace secpol;

int main() {
  const auto lattice = std::make_shared<LinearLattice>(LinearLattice::Military());
  // Three files: a public bulletin, a secret roster, a top-secret cable.
  const std::vector<ClassId> classes = {0, 2, 3};
  const ClassId clearance = 2;  // the caller holds "secret"

  std::printf("Lattice: %s; files at %s / %s / %s; clearance: %s\n\n",
              lattice->name().c_str(), lattice->ClassName(classes[0]).c_str(),
              lattice->ClassName(classes[1]).c_str(), lattice->ClassName(classes[2]).c_str(),
              lattice->ClassName(clearance).c_str());

  const MlsUserProgram sum_all = [](MlsSession& session) {
    Value sum = 0;
    for (int i = 0; i < session.num_files(); ++i) {
      sum += session.ReadFile(i);
    }
    return sum;
  };

  const auto no_read_up = MakeMlsMechanism("sum", lattice, classes, clearance,
                                           MlsMonitorKind::kNoReadUp, sum_all);
  const auto taint = MakeMlsMechanism("sum", lattice, classes, clearance,
                                      MlsMonitorKind::kTaintAndCheck, sum_all);

  const Input contents = {10, 20, 40};
  std::printf("files = (10, 20, 40); program sums everything it can touch\n");
  std::printf("  no-read-up      : %s   (top-secret read refused, zero-filled)\n",
              no_read_up->Run(contents).ToString().c_str());
  std::printf("  taint-and-check : %s\n\n", taint->Run(contents).ToString().c_str());

  // Both enforce the same information filter; the checker confirms it.
  const AllowPolicy policy = MakeMlsPolicy(*lattice, classes, clearance);
  const InputDomain domain = InputDomain::Uniform(3, {0, 1, 2});
  for (const auto& mech : {no_read_up, taint}) {
    std::printf("%-28s -> %s\n", mech->name().c_str(),
                CheckSoundness(*mech, policy, domain, Observability::kValueOnly)
                    .ToString()
                    .c_str());
  }

  const CompletenessStats stats = CompareCompleteness(*no_read_up, *taint, domain);
  std::printf("\ncompleteness: %s\n", stats.ToString().c_str());
  std::printf(
      "\nBoth designs are sound for %s; they differ in completeness, which is\n"
      "exactly how Section 4 says mechanisms for the same policy should be\n"
      "compared. Access control degrades reads; flow control vetoes outputs.\n",
      policy.name().c_str());
  return 0;
}
