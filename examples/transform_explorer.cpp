// Examples 7 and 8 side by side: the same functional-equivalence transform
// that turns a hopeless monitor into the maximal one also turns a useful
// monitor into the plug — and Theorem 4 says no tool can always choose
// correctly. The advisor tries anyway, by measuring.

#include <cstdio>

#include "src/flowlang/lower.h"
#include "src/flowlang/parser.h"
#include "src/mechanism/completeness.h"
#include "src/surveillance/surveillance.h"
#include "src/transforms/advisor.h"
#include "src/transforms/transforms.h"

using namespace secpol;

namespace {

void Explore(const char* title, const SourceProgram& program, VarSet allowed) {
  std::printf("--- %s ---\n%s\n", title, program.ToString().c_str());
  const InputDomain domain = InputDomain::Range(2, 0, 2);
  const AdvisorReport report = AdviseTransforms(program, allowed, domain);
  std::printf("%s\n", report.ToString().c_str());
  std::printf("chosen rewriting:\n%s\n", report.best().program.ToString().c_str());
}

}  // namespace

int main() {
  const SourceProgram ex7 = MustParseProgram(R"(
    program ex7(x1, x2) {
      locals r;
      if (x1 == 1) { r = 1; } else { r = 2; }
      if (r == 1) { y = 1; } else { y = 1; }
    })");
  Explore("Example 7: transform wins (policy allow(x2))", ex7, VarSet{1});

  const SourceProgram ex8 = MustParseProgram(R"(
    program ex8(x1, x2) {
      if (x2 == 1) { y = 1; } else { y = x1; }
    })");
  Explore("Example 8: transform loses (policy allow(x2))", ex8, VarSet{1});

  std::printf(
      "\"Whether to apply a transform or not is not necessarily a clearcut\n"
      "decision. In fact the optimal strategy for deciding is not, as the next\n"
      "theorem shows, computable.\" (Theorem 4.) The advisor sidesteps the theorem\n"
      "by *measuring* candidates on a finite grid — heuristically, not optimally.\n");
  return 0;
}
