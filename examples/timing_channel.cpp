// The Observability Postulate live: a constant function that is anything
// but constant once you can see the clock — and Theorem 3''s fix.

#include <cstdio>

#include "src/channels/timing.h"
#include "src/flowlang/lower.h"
#include "src/mechanism/soundness.h"
#include "src/policy/policy.h"
#include "src/surveillance/surveillance.h"

using namespace secpol;

int main() {
  // Section 2's program: loop x times, output 1.
  const Program q = MustCompile(R"(
    program constant_but_slow(x) {
      locals c;
      c = x;
      while (c != 0) { c = c - 1; }
      y = 1;
    })");

  const AllowPolicy policy = AllowPolicy::AllowNone(1);  // allow(): hide x entirely
  const InputDomain domain = InputDomain::Range(1, 0, 7);

  std::printf("Q(x) = 1 for every x. Policy: %s.\n\n", policy.name().c_str());

  const ProgramAsMechanism bare{Program(q)};
  std::printf("Q as its own mechanism:\n");
  for (Value x : {0, 3, 7}) {
    std::printf("  Q(%lld) = %s\n", static_cast<long long>(x),
                bare.Run(Input{x}).ToString().c_str());
  }

  std::printf("\nValue-only observer:  %s\n",
              CheckSoundness(bare, policy, domain, Observability::kValueOnly)
                  .ToString()
                  .c_str());
  std::printf("Observer with a clock: %s\n",
              CheckSoundness(bare, policy, domain, Observability::kValueAndTime)
                  .ToString()
                  .c_str());

  const LeakReport leak = MeasureLeak(bare, policy, domain, Observability::kValueAndTime);
  std::printf("Channel capacity: %s\n", leak.ToString().c_str());

  // Theorem 3': abort before any test on disallowed data. The abort happens
  // at the same step for every secret, so the clock is silent.
  const SurveillanceMechanism m_prime = MakeSurveillanceMPrime(Program(q), VarSet::Empty());
  std::printf("\nM' (timing-safe surveillance):\n");
  for (Value x : {0, 3, 7}) {
    std::printf("  M'(%lld) = %s\n", static_cast<long long>(x),
                m_prime.Run(Input{x}).ToString().c_str());
  }
  std::printf("M' with a clock: %s\n",
              CheckSoundness(m_prime, policy, domain, Observability::kValueAndTime)
                  .ToString()
                  .c_str());
  std::printf(
      "\nThe price: M' refuses a program a value-only observer could have been\n"
      "given. Soundness against stronger observers costs completeness.\n");
  return 0;
}
