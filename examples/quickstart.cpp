// Quickstart: write a program, state a policy, enforce it, prove it.
//
// The five questions of the paper's conclusion, in code:
//   1'. What is the security policy?            -> AllowPolicy
//   2'. What is the protection mechanism?       -> SurveillanceMechanism
//   3'. Is the protection mechanism sound?      -> CheckSoundness
//   4'. How complete is the protection mechanism? -> MeasureUtility / Compare
//   5'. Does the observability postulate hold?  -> Observability::kValueAndTime

#include <cstdio>

#include "src/flowlang/lower.h"
#include "src/mechanism/completeness.h"
#include "src/mechanism/soundness.h"
#include "src/policy/policy.h"
#include "src/surveillance/surveillance.h"

using namespace secpol;

int main() {
  // A program with a public and a secret input. It computes tax from the
  // public salary; the secret bonus flows nowhere near the output.
  const Program q = MustCompile(R"(
    program payroll(salary, bonus_secret) {
      locals rate;
      rate = 30;
      if (salary < 1000) { rate = 10; }
      y = salary * rate / 100;
    })");

  // 1'. The policy: the user may learn the salary (input 0), nothing else.
  const AllowPolicy policy(2, VarSet{0});
  std::printf("policy:    %s\n", policy.name().c_str());

  // 2'. The mechanism: Section 3's surveillance monitor.
  const SurveillanceMechanism monitor = MakeSurveillanceM(Program(q), VarSet{0});
  std::printf("mechanism: %s\n", monitor.name().c_str());

  // Run it.
  const Outcome ok = monitor.Run(Input{1200, 999});
  std::printf("run(1200, secret): %s\n", ok.ToString().c_str());

  // 3'. Soundness, decided exhaustively over a grid.
  const InputDomain domain = InputDomain::PerInput({{0, 500, 1000, 1500}, {0, 1, 2}});
  const SoundnessReport report =
      CheckSoundness(monitor, policy, domain, Observability::kValueOnly);
  std::printf("soundness: %s\n", report.ToString().c_str());

  // 4'. Completeness: how often do we get an answer instead of a notice?
  std::printf("utility:   %.3f of the grid answered with a real value\n",
              MeasureUtility(monitor, domain));

  // 5'. The observability postulate: is running time an output here?
  // The branch tests salary (allowed), so even the timing is clean:
  const SoundnessReport timed =
      CheckSoundness(monitor, policy, domain, Observability::kValueAndTime);
  std::printf("with time: %s\n", timed.ToString().c_str());

  // Contrast: a program that launders the secret through a branch. The
  // monitor catches the implicit flow through the program counter.
  const Program leaky = MustCompile(R"(
    program leaky(salary, bonus_secret) {
      if (bonus_secret > 0) { y = 1; } else { y = 0; }
    })");
  const SurveillanceMechanism leaky_monitor = MakeSurveillanceM(Program(leaky), VarSet{0});
  std::printf("\nleaky program, run(1200, 1): %s\n",
              leaky_monitor.Run(Input{1200, 1}).ToString().c_str());
  return 0;
}
