// Example 2 end to end: a file system whose directories gate its files, a
// user-space reference monitor, and the content-dependent policy — plus
// Example 4's cautionary tale of a monitor that leaks through its notices.

#include <cstdio>

#include "src/mechanism/soundness.h"
#include "src/monitor/filesys.h"
#include "src/policy/policy.h"

using namespace secpol;

namespace {

void Demo(DenialMode mode, const UserProgram& program, const char* program_name) {
  const auto mech = MakeMonitoredMechanism("demo", 2, /*grant_value=*/1, mode, program);

  // Kernel state: directory 0 grants file 0 (content 5); directory 1 denies
  // file 1 (content 7).
  const Input input = {1, 0, 5, 7};
  const Outcome outcome = mech->Run(input);
  std::printf("  %-14s + %-9s -> %s\n", DenialModeName(mode).c_str(), program_name,
              outcome.ToString().c_str());
}

}  // namespace

int main() {
  std::printf("Example 2: dirs=(grant, deny), files=(5, 7)\n\n");

  std::printf("One run under each monitor:\n");
  Demo(DenialMode::kFailStop, MakeCompliantSummer(), "compliant");
  Demo(DenialMode::kFailStop, MakeGreedySummer(), "greedy");
  Demo(DenialMode::kZeroFill, MakeGreedySummer(), "greedy");
  Demo(DenialMode::kLeakyLenient, MakeGreedySummer(), "greedy");

  // The policy of Example 2: every directory is visible; file i is visible
  // exactly when directory i grants it. Note this is NOT an allow(...)
  // policy — the filtered coordinates depend on the input itself.
  const DirectoryGatedPolicy policy(2, 1);
  const InputDomain domain = InputDomain::PerInput({{0, 1}, {0, 1}, {0, 3}, {0, 3}});

  std::printf("\nChecker verdicts against %s:\n", policy.name().c_str());
  for (const DenialMode mode :
       {DenialMode::kFailStop, DenialMode::kZeroFill, DenialMode::kLeakyLenient}) {
    const auto mech = MakeMonitoredMechanism("demo", 2, 1, mode, MakeGreedySummer());
    const SoundnessReport report =
        CheckSoundness(*mech, policy, domain, Observability::kValueOnly);
    std::printf("  %-14s : %s\n", DenialModeName(mode).c_str(), report.ToString().c_str());
  }

  std::printf(
      "\nExample 4's moral: the leaky-lenient monitor decides whether to abort by\n"
      "peeking at the DENIED file's content, so the notice itself carries one bit\n"
      "of protected information. \"Any decision made by M to output a violation\n"
      "notice can depend only on allowed information.\"\n");
  return 0;
}
