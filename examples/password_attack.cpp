// The paper's closing war story: reducing a password search from n^k to n*k
// by watching page movement. "As we have already noted a password system is
// not a protection mechanism because it, of necessity, gives out information
// about user and password pairs."

#include <cstdio>

#include "src/channels/password_attack.h"

using namespace secpol;

int main() {
  const int k = 6;  // password length
  const int n = 8;  // alphabet size
  const std::vector<int> secret = {3, 1, 4, 1, 5, 7};

  std::printf("Secret: 6 symbols over an 8-letter alphabet (space = 8^6 = 262144).\n\n");

  {
    PasswordChecker victim(secret, n);
    const AttackResult result = BruteForceAttack(victim, 1u << 20);
    std::printf("Brute force:        found=%s after %llu guesses\n",
                result.found ? "yes" : "no",
                static_cast<unsigned long long>(result.guesses));
  }
  {
    PasswordChecker victim(secret, n);
    const AttackResult result = PageBoundaryAttack(victim);
    std::printf("Page-boundary leak: found=%s after %llu guesses (bound n*k = %d)\n",
                result.found ? "yes" : "no",
                static_cast<unsigned long long>(result.guesses), n * k);
    std::printf("Recovered: ");
    for (int c : result.recovered) {
      std::printf("%d ", c);
    }
    std::printf("\n");
  }

  std::printf(
      "\nHow it works: the checker compares character by character and stops at the\n"
      "first mismatch, touching guess memory as it goes. Place the guess so the\n"
      "next unverified character sits on a freshly evicted page; if that page\n"
      "faults, the comparison got past your candidate — the candidate is right.\n"
      "The checker's *answer* leaks one bit; the forgotten observable (paging)\n"
      "leaks a position per probe. The Observability Postulate is not optional.\n");
  return 0;
}
