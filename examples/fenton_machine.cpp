// Example 1: Fenton's data-mark machine, its ambiguous halt, and the
// negative-inference leak ("The dog did nothing in the nighttime").

#include <cstdio>

#include "src/mechanism/soundness.h"
#include "src/minsky/data_mark.h"
#include "src/minsky/minsky.h"
#include "src/policy/policy.h"

using namespace secpol;

int main() {
  const MinskyProgram witness = MakeNegativeInferenceWitness();
  std::printf("%s\n", witness.ToString().c_str());
  std::printf("Register 0 holds the priv input x; register 1 (null) is the output.\n\n");

  const AllowPolicy policy = AllowPolicy::AllowNone(1);
  const InputDomain domain = InputDomain::Range(1, 0, 4);

  struct Variant {
    const char* label;
    GuardedHaltSemantics semantics;
    bool check_pc;
  };
  for (const Variant& v : {
           Variant{"(a) 'if P = null then halt' skips when P = priv",
                   GuardedHaltSemantics::kSkipWhenPriv, false},
           Variant{"(b) it emits an error message when P = priv",
                   GuardedHaltSemantics::kErrorWhenPriv, false},
           Variant{"(c) repaired: plain halt also consults P",
                   GuardedHaltSemantics::kErrorWhenPriv, true},
       }) {
    DataMarkConfig config;
    config.priv_registers = VarSet{0};
    config.guarded_halt = v.semantics;
    config.check_pc_at_halt = v.check_pc;
    const DataMarkMachine machine(witness, config);

    std::printf("%s\n", v.label);
    for (Value x : {0, 1, 3}) {
      std::printf("  x=%lld -> %s\n", static_cast<long long>(x),
                  machine.Run(Input{x}).ToString().c_str());
    }
    const SoundnessReport report =
        CheckSoundness(machine, policy, domain, Observability::kValueOnly);
    std::printf("  => %s\n\n", report.ToString().c_str());
  }

  std::printf(
      "Interpretation (b) outputs its error message if and only if x = 0: the\n"
      "*absence* of the message tells you x != 0. \"Intuitively, the difficulty\n"
      "here is what we call negative inference.\"\n");
  return 0;
}
