file(REMOVE_RECURSE
  "CMakeFiles/bench_transforms.dir/bench_transforms.cc.o"
  "CMakeFiles/bench_transforms.dir/bench_transforms.cc.o.d"
  "bench_transforms"
  "bench_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
