# Empty dependencies file for bench_password.
# This may be replaced when dependencies are built.
