file(REMOVE_RECURSE
  "CMakeFiles/bench_password.dir/bench_password.cc.o"
  "CMakeFiles/bench_password.dir/bench_password.cc.o.d"
  "bench_password"
  "bench_password.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_password.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
