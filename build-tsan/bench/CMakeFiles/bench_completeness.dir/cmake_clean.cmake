file(REMOVE_RECURSE
  "CMakeFiles/bench_completeness.dir/bench_completeness.cc.o"
  "CMakeFiles/bench_completeness.dir/bench_completeness.cc.o.d"
  "bench_completeness"
  "bench_completeness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_completeness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
