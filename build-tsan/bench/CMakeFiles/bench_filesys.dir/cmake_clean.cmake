file(REMOVE_RECURSE
  "CMakeFiles/bench_filesys.dir/bench_filesys.cc.o"
  "CMakeFiles/bench_filesys.dir/bench_filesys.cc.o.d"
  "bench_filesys"
  "bench_filesys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_filesys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
