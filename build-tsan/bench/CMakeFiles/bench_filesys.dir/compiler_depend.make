# Empty compiler generated dependencies file for bench_filesys.
# This may be replaced when dependencies are built.
