file(REMOVE_RECURSE
  "CMakeFiles/bench_tape.dir/bench_tape.cc.o"
  "CMakeFiles/bench_tape.dir/bench_tape.cc.o.d"
  "bench_tape"
  "bench_tape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
