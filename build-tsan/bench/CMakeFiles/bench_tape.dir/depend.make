# Empty dependencies file for bench_tape.
# This may be replaced when dependencies are built.
