# Empty dependencies file for bench_static.
# This may be replaced when dependencies are built.
