file(REMOVE_RECURSE
  "CMakeFiles/bench_static.dir/bench_static.cc.o"
  "CMakeFiles/bench_static.dir/bench_static.cc.o.d"
  "bench_static"
  "bench_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
