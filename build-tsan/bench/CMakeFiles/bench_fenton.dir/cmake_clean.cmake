file(REMOVE_RECURSE
  "CMakeFiles/bench_fenton.dir/bench_fenton.cc.o"
  "CMakeFiles/bench_fenton.dir/bench_fenton.cc.o.d"
  "bench_fenton"
  "bench_fenton.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fenton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
