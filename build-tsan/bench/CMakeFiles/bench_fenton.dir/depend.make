# Empty dependencies file for bench_fenton.
# This may be replaced when dependencies are built.
