file(REMOVE_RECURSE
  "CMakeFiles/bench_maximal.dir/bench_maximal.cc.o"
  "CMakeFiles/bench_maximal.dir/bench_maximal.cc.o.d"
  "bench_maximal"
  "bench_maximal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_maximal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
