# Empty dependencies file for bench_maximal.
# This may be replaced when dependencies are built.
