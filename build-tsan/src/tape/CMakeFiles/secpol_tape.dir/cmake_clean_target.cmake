file(REMOVE_RECURSE
  "libsecpol_tape.a"
)
