# Empty dependencies file for secpol_tape.
# This may be replaced when dependencies are built.
