file(REMOVE_RECURSE
  "CMakeFiles/secpol_tape.dir/tape.cc.o"
  "CMakeFiles/secpol_tape.dir/tape.cc.o.d"
  "libsecpol_tape.a"
  "libsecpol_tape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secpol_tape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
