# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-tsan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("expr")
subdirs("flowchart")
subdirs("flowlang")
subdirs("policy")
subdirs("mechanism")
subdirs("staticflow")
subdirs("surveillance")
subdirs("transforms")
subdirs("lattice")
subdirs("minsky")
subdirs("tape")
subdirs("monitor")
subdirs("channels")
subdirs("corpus")
subdirs("tools")
