file(REMOVE_RECURSE
  "CMakeFiles/secpol_staticflow.dir/analysis.cc.o"
  "CMakeFiles/secpol_staticflow.dir/analysis.cc.o.d"
  "CMakeFiles/secpol_staticflow.dir/cfg.cc.o"
  "CMakeFiles/secpol_staticflow.dir/cfg.cc.o.d"
  "CMakeFiles/secpol_staticflow.dir/dominance.cc.o"
  "CMakeFiles/secpol_staticflow.dir/dominance.cc.o.d"
  "CMakeFiles/secpol_staticflow.dir/static_mechanisms.cc.o"
  "CMakeFiles/secpol_staticflow.dir/static_mechanisms.cc.o.d"
  "libsecpol_staticflow.a"
  "libsecpol_staticflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secpol_staticflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
