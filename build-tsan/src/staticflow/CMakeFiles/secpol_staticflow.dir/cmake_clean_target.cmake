file(REMOVE_RECURSE
  "libsecpol_staticflow.a"
)
