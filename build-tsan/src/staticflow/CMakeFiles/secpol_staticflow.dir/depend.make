# Empty dependencies file for secpol_staticflow.
# This may be replaced when dependencies are built.
