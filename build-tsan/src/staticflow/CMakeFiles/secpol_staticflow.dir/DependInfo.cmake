
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/staticflow/analysis.cc" "src/staticflow/CMakeFiles/secpol_staticflow.dir/analysis.cc.o" "gcc" "src/staticflow/CMakeFiles/secpol_staticflow.dir/analysis.cc.o.d"
  "/root/repo/src/staticflow/cfg.cc" "src/staticflow/CMakeFiles/secpol_staticflow.dir/cfg.cc.o" "gcc" "src/staticflow/CMakeFiles/secpol_staticflow.dir/cfg.cc.o.d"
  "/root/repo/src/staticflow/dominance.cc" "src/staticflow/CMakeFiles/secpol_staticflow.dir/dominance.cc.o" "gcc" "src/staticflow/CMakeFiles/secpol_staticflow.dir/dominance.cc.o.d"
  "/root/repo/src/staticflow/static_mechanisms.cc" "src/staticflow/CMakeFiles/secpol_staticflow.dir/static_mechanisms.cc.o" "gcc" "src/staticflow/CMakeFiles/secpol_staticflow.dir/static_mechanisms.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/flowchart/CMakeFiles/secpol_flowchart.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mechanism/CMakeFiles/secpol_mechanism.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/policy/CMakeFiles/secpol_policy.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/secpol_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/expr/CMakeFiles/secpol_expr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
