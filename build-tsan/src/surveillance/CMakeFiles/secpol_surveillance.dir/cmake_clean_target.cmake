file(REMOVE_RECURSE
  "libsecpol_surveillance.a"
)
