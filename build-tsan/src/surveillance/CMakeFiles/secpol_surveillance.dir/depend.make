# Empty dependencies file for secpol_surveillance.
# This may be replaced when dependencies are built.
