file(REMOVE_RECURSE
  "CMakeFiles/secpol_surveillance.dir/instrument.cc.o"
  "CMakeFiles/secpol_surveillance.dir/instrument.cc.o.d"
  "CMakeFiles/secpol_surveillance.dir/surveillance.cc.o"
  "CMakeFiles/secpol_surveillance.dir/surveillance.cc.o.d"
  "libsecpol_surveillance.a"
  "libsecpol_surveillance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secpol_surveillance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
