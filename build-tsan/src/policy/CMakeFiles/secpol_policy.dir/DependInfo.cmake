
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/policy/policy.cc" "src/policy/CMakeFiles/secpol_policy.dir/policy.cc.o" "gcc" "src/policy/CMakeFiles/secpol_policy.dir/policy.cc.o.d"
  "/root/repo/src/policy/refinement.cc" "src/policy/CMakeFiles/secpol_policy.dir/refinement.cc.o" "gcc" "src/policy/CMakeFiles/secpol_policy.dir/refinement.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/util/CMakeFiles/secpol_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
