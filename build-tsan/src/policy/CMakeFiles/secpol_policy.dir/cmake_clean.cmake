file(REMOVE_RECURSE
  "CMakeFiles/secpol_policy.dir/policy.cc.o"
  "CMakeFiles/secpol_policy.dir/policy.cc.o.d"
  "CMakeFiles/secpol_policy.dir/refinement.cc.o"
  "CMakeFiles/secpol_policy.dir/refinement.cc.o.d"
  "libsecpol_policy.a"
  "libsecpol_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secpol_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
