file(REMOVE_RECURSE
  "libsecpol_policy.a"
)
