# Empty dependencies file for secpol_policy.
# This may be replaced when dependencies are built.
