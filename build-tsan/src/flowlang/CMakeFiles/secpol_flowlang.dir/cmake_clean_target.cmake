file(REMOVE_RECURSE
  "libsecpol_flowlang.a"
)
