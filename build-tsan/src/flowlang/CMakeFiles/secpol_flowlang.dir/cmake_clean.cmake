file(REMOVE_RECURSE
  "CMakeFiles/secpol_flowlang.dir/ast.cc.o"
  "CMakeFiles/secpol_flowlang.dir/ast.cc.o.d"
  "CMakeFiles/secpol_flowlang.dir/lexer.cc.o"
  "CMakeFiles/secpol_flowlang.dir/lexer.cc.o.d"
  "CMakeFiles/secpol_flowlang.dir/lower.cc.o"
  "CMakeFiles/secpol_flowlang.dir/lower.cc.o.d"
  "CMakeFiles/secpol_flowlang.dir/parser.cc.o"
  "CMakeFiles/secpol_flowlang.dir/parser.cc.o.d"
  "libsecpol_flowlang.a"
  "libsecpol_flowlang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secpol_flowlang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
