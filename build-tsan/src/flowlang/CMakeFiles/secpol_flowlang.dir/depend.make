# Empty dependencies file for secpol_flowlang.
# This may be replaced when dependencies are built.
