
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flowlang/ast.cc" "src/flowlang/CMakeFiles/secpol_flowlang.dir/ast.cc.o" "gcc" "src/flowlang/CMakeFiles/secpol_flowlang.dir/ast.cc.o.d"
  "/root/repo/src/flowlang/lexer.cc" "src/flowlang/CMakeFiles/secpol_flowlang.dir/lexer.cc.o" "gcc" "src/flowlang/CMakeFiles/secpol_flowlang.dir/lexer.cc.o.d"
  "/root/repo/src/flowlang/lower.cc" "src/flowlang/CMakeFiles/secpol_flowlang.dir/lower.cc.o" "gcc" "src/flowlang/CMakeFiles/secpol_flowlang.dir/lower.cc.o.d"
  "/root/repo/src/flowlang/parser.cc" "src/flowlang/CMakeFiles/secpol_flowlang.dir/parser.cc.o" "gcc" "src/flowlang/CMakeFiles/secpol_flowlang.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/flowchart/CMakeFiles/secpol_flowchart.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/expr/CMakeFiles/secpol_expr.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/secpol_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
