# Empty dependencies file for secpol_corpus.
# This may be replaced when dependencies are built.
