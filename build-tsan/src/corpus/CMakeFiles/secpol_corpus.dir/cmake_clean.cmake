file(REMOVE_RECURSE
  "CMakeFiles/secpol_corpus.dir/generator.cc.o"
  "CMakeFiles/secpol_corpus.dir/generator.cc.o.d"
  "libsecpol_corpus.a"
  "libsecpol_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secpol_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
