
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/generator.cc" "src/corpus/CMakeFiles/secpol_corpus.dir/generator.cc.o" "gcc" "src/corpus/CMakeFiles/secpol_corpus.dir/generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/flowlang/CMakeFiles/secpol_flowlang.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/secpol_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/flowchart/CMakeFiles/secpol_flowchart.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/expr/CMakeFiles/secpol_expr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
