file(REMOVE_RECURSE
  "libsecpol_corpus.a"
)
