file(REMOVE_RECURSE
  "libsecpol_util.a"
)
