file(REMOVE_RECURSE
  "CMakeFiles/secpol_util.dir/rng.cc.o"
  "CMakeFiles/secpol_util.dir/rng.cc.o.d"
  "CMakeFiles/secpol_util.dir/strings.cc.o"
  "CMakeFiles/secpol_util.dir/strings.cc.o.d"
  "CMakeFiles/secpol_util.dir/thread_pool.cc.o"
  "CMakeFiles/secpol_util.dir/thread_pool.cc.o.d"
  "CMakeFiles/secpol_util.dir/var_set.cc.o"
  "CMakeFiles/secpol_util.dir/var_set.cc.o.d"
  "libsecpol_util.a"
  "libsecpol_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secpol_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
