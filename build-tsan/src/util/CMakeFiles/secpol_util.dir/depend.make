# Empty dependencies file for secpol_util.
# This may be replaced when dependencies are built.
