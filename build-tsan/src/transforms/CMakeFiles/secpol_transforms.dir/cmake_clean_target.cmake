file(REMOVE_RECURSE
  "libsecpol_transforms.a"
)
