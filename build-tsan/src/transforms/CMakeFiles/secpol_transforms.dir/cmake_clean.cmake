file(REMOVE_RECURSE
  "CMakeFiles/secpol_transforms.dir/advisor.cc.o"
  "CMakeFiles/secpol_transforms.dir/advisor.cc.o.d"
  "CMakeFiles/secpol_transforms.dir/structure.cc.o"
  "CMakeFiles/secpol_transforms.dir/structure.cc.o.d"
  "CMakeFiles/secpol_transforms.dir/transforms.cc.o"
  "CMakeFiles/secpol_transforms.dir/transforms.cc.o.d"
  "libsecpol_transforms.a"
  "libsecpol_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secpol_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
