# Empty dependencies file for secpol_transforms.
# This may be replaced when dependencies are built.
