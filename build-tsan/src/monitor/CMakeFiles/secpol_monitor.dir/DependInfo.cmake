
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/monitor/capability.cc" "src/monitor/CMakeFiles/secpol_monitor.dir/capability.cc.o" "gcc" "src/monitor/CMakeFiles/secpol_monitor.dir/capability.cc.o.d"
  "/root/repo/src/monitor/filesys.cc" "src/monitor/CMakeFiles/secpol_monitor.dir/filesys.cc.o" "gcc" "src/monitor/CMakeFiles/secpol_monitor.dir/filesys.cc.o.d"
  "/root/repo/src/monitor/kernel.cc" "src/monitor/CMakeFiles/secpol_monitor.dir/kernel.cc.o" "gcc" "src/monitor/CMakeFiles/secpol_monitor.dir/kernel.cc.o.d"
  "/root/repo/src/monitor/logon.cc" "src/monitor/CMakeFiles/secpol_monitor.dir/logon.cc.o" "gcc" "src/monitor/CMakeFiles/secpol_monitor.dir/logon.cc.o.d"
  "/root/repo/src/monitor/mls.cc" "src/monitor/CMakeFiles/secpol_monitor.dir/mls.cc.o" "gcc" "src/monitor/CMakeFiles/secpol_monitor.dir/mls.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/mechanism/CMakeFiles/secpol_mechanism.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/policy/CMakeFiles/secpol_policy.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/lattice/CMakeFiles/secpol_lattice.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/secpol_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/flowchart/CMakeFiles/secpol_flowchart.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/expr/CMakeFiles/secpol_expr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
