file(REMOVE_RECURSE
  "libsecpol_monitor.a"
)
