file(REMOVE_RECURSE
  "CMakeFiles/secpol_monitor.dir/capability.cc.o"
  "CMakeFiles/secpol_monitor.dir/capability.cc.o.d"
  "CMakeFiles/secpol_monitor.dir/filesys.cc.o"
  "CMakeFiles/secpol_monitor.dir/filesys.cc.o.d"
  "CMakeFiles/secpol_monitor.dir/kernel.cc.o"
  "CMakeFiles/secpol_monitor.dir/kernel.cc.o.d"
  "CMakeFiles/secpol_monitor.dir/logon.cc.o"
  "CMakeFiles/secpol_monitor.dir/logon.cc.o.d"
  "CMakeFiles/secpol_monitor.dir/mls.cc.o"
  "CMakeFiles/secpol_monitor.dir/mls.cc.o.d"
  "libsecpol_monitor.a"
  "libsecpol_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secpol_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
