# Empty dependencies file for secpol_monitor.
# This may be replaced when dependencies are built.
