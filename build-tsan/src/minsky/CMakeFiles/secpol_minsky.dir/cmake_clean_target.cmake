file(REMOVE_RECURSE
  "libsecpol_minsky.a"
)
