# Empty dependencies file for secpol_minsky.
# This may be replaced when dependencies are built.
