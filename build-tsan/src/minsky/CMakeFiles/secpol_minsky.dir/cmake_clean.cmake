file(REMOVE_RECURSE
  "CMakeFiles/secpol_minsky.dir/data_mark.cc.o"
  "CMakeFiles/secpol_minsky.dir/data_mark.cc.o.d"
  "CMakeFiles/secpol_minsky.dir/minsky.cc.o"
  "CMakeFiles/secpol_minsky.dir/minsky.cc.o.d"
  "libsecpol_minsky.a"
  "libsecpol_minsky.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secpol_minsky.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
