# Empty dependencies file for secpol_channels.
# This may be replaced when dependencies are built.
