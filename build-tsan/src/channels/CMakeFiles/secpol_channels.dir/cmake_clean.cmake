file(REMOVE_RECURSE
  "CMakeFiles/secpol_channels.dir/paging.cc.o"
  "CMakeFiles/secpol_channels.dir/paging.cc.o.d"
  "CMakeFiles/secpol_channels.dir/password_attack.cc.o"
  "CMakeFiles/secpol_channels.dir/password_attack.cc.o.d"
  "CMakeFiles/secpol_channels.dir/timing.cc.o"
  "CMakeFiles/secpol_channels.dir/timing.cc.o.d"
  "libsecpol_channels.a"
  "libsecpol_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secpol_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
