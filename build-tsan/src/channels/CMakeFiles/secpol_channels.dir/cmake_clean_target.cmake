file(REMOVE_RECURSE
  "libsecpol_channels.a"
)
