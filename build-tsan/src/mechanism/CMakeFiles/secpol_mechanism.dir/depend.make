# Empty dependencies file for secpol_mechanism.
# This may be replaced when dependencies are built.
