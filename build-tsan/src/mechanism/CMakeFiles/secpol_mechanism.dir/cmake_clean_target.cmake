file(REMOVE_RECURSE
  "libsecpol_mechanism.a"
)
