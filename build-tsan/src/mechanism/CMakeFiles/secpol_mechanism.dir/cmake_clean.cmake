file(REMOVE_RECURSE
  "CMakeFiles/secpol_mechanism.dir/check_options.cc.o"
  "CMakeFiles/secpol_mechanism.dir/check_options.cc.o.d"
  "CMakeFiles/secpol_mechanism.dir/completeness.cc.o"
  "CMakeFiles/secpol_mechanism.dir/completeness.cc.o.d"
  "CMakeFiles/secpol_mechanism.dir/domain.cc.o"
  "CMakeFiles/secpol_mechanism.dir/domain.cc.o.d"
  "CMakeFiles/secpol_mechanism.dir/integrity.cc.o"
  "CMakeFiles/secpol_mechanism.dir/integrity.cc.o.d"
  "CMakeFiles/secpol_mechanism.dir/maximal.cc.o"
  "CMakeFiles/secpol_mechanism.dir/maximal.cc.o.d"
  "CMakeFiles/secpol_mechanism.dir/mechanism.cc.o"
  "CMakeFiles/secpol_mechanism.dir/mechanism.cc.o.d"
  "CMakeFiles/secpol_mechanism.dir/outcome.cc.o"
  "CMakeFiles/secpol_mechanism.dir/outcome.cc.o.d"
  "CMakeFiles/secpol_mechanism.dir/policy_compare.cc.o"
  "CMakeFiles/secpol_mechanism.dir/policy_compare.cc.o.d"
  "CMakeFiles/secpol_mechanism.dir/soundness.cc.o"
  "CMakeFiles/secpol_mechanism.dir/soundness.cc.o.d"
  "libsecpol_mechanism.a"
  "libsecpol_mechanism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secpol_mechanism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
