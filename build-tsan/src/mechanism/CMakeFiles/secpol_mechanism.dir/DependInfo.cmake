
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mechanism/check_options.cc" "src/mechanism/CMakeFiles/secpol_mechanism.dir/check_options.cc.o" "gcc" "src/mechanism/CMakeFiles/secpol_mechanism.dir/check_options.cc.o.d"
  "/root/repo/src/mechanism/completeness.cc" "src/mechanism/CMakeFiles/secpol_mechanism.dir/completeness.cc.o" "gcc" "src/mechanism/CMakeFiles/secpol_mechanism.dir/completeness.cc.o.d"
  "/root/repo/src/mechanism/domain.cc" "src/mechanism/CMakeFiles/secpol_mechanism.dir/domain.cc.o" "gcc" "src/mechanism/CMakeFiles/secpol_mechanism.dir/domain.cc.o.d"
  "/root/repo/src/mechanism/integrity.cc" "src/mechanism/CMakeFiles/secpol_mechanism.dir/integrity.cc.o" "gcc" "src/mechanism/CMakeFiles/secpol_mechanism.dir/integrity.cc.o.d"
  "/root/repo/src/mechanism/maximal.cc" "src/mechanism/CMakeFiles/secpol_mechanism.dir/maximal.cc.o" "gcc" "src/mechanism/CMakeFiles/secpol_mechanism.dir/maximal.cc.o.d"
  "/root/repo/src/mechanism/mechanism.cc" "src/mechanism/CMakeFiles/secpol_mechanism.dir/mechanism.cc.o" "gcc" "src/mechanism/CMakeFiles/secpol_mechanism.dir/mechanism.cc.o.d"
  "/root/repo/src/mechanism/outcome.cc" "src/mechanism/CMakeFiles/secpol_mechanism.dir/outcome.cc.o" "gcc" "src/mechanism/CMakeFiles/secpol_mechanism.dir/outcome.cc.o.d"
  "/root/repo/src/mechanism/policy_compare.cc" "src/mechanism/CMakeFiles/secpol_mechanism.dir/policy_compare.cc.o" "gcc" "src/mechanism/CMakeFiles/secpol_mechanism.dir/policy_compare.cc.o.d"
  "/root/repo/src/mechanism/soundness.cc" "src/mechanism/CMakeFiles/secpol_mechanism.dir/soundness.cc.o" "gcc" "src/mechanism/CMakeFiles/secpol_mechanism.dir/soundness.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/flowchart/CMakeFiles/secpol_flowchart.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/policy/CMakeFiles/secpol_policy.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/secpol_util.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/expr/CMakeFiles/secpol_expr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
