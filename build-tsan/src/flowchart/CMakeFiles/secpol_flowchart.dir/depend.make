# Empty dependencies file for secpol_flowchart.
# This may be replaced when dependencies are built.
