
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flowchart/builder.cc" "src/flowchart/CMakeFiles/secpol_flowchart.dir/builder.cc.o" "gcc" "src/flowchart/CMakeFiles/secpol_flowchart.dir/builder.cc.o.d"
  "/root/repo/src/flowchart/bytecode.cc" "src/flowchart/CMakeFiles/secpol_flowchart.dir/bytecode.cc.o" "gcc" "src/flowchart/CMakeFiles/secpol_flowchart.dir/bytecode.cc.o.d"
  "/root/repo/src/flowchart/dot.cc" "src/flowchart/CMakeFiles/secpol_flowchart.dir/dot.cc.o" "gcc" "src/flowchart/CMakeFiles/secpol_flowchart.dir/dot.cc.o.d"
  "/root/repo/src/flowchart/interpreter.cc" "src/flowchart/CMakeFiles/secpol_flowchart.dir/interpreter.cc.o" "gcc" "src/flowchart/CMakeFiles/secpol_flowchart.dir/interpreter.cc.o.d"
  "/root/repo/src/flowchart/optimize.cc" "src/flowchart/CMakeFiles/secpol_flowchart.dir/optimize.cc.o" "gcc" "src/flowchart/CMakeFiles/secpol_flowchart.dir/optimize.cc.o.d"
  "/root/repo/src/flowchart/program.cc" "src/flowchart/CMakeFiles/secpol_flowchart.dir/program.cc.o" "gcc" "src/flowchart/CMakeFiles/secpol_flowchart.dir/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/expr/CMakeFiles/secpol_expr.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/secpol_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
