file(REMOVE_RECURSE
  "libsecpol_flowchart.a"
)
