file(REMOVE_RECURSE
  "CMakeFiles/secpol_flowchart.dir/builder.cc.o"
  "CMakeFiles/secpol_flowchart.dir/builder.cc.o.d"
  "CMakeFiles/secpol_flowchart.dir/bytecode.cc.o"
  "CMakeFiles/secpol_flowchart.dir/bytecode.cc.o.d"
  "CMakeFiles/secpol_flowchart.dir/dot.cc.o"
  "CMakeFiles/secpol_flowchart.dir/dot.cc.o.d"
  "CMakeFiles/secpol_flowchart.dir/interpreter.cc.o"
  "CMakeFiles/secpol_flowchart.dir/interpreter.cc.o.d"
  "CMakeFiles/secpol_flowchart.dir/optimize.cc.o"
  "CMakeFiles/secpol_flowchart.dir/optimize.cc.o.d"
  "CMakeFiles/secpol_flowchart.dir/program.cc.o"
  "CMakeFiles/secpol_flowchart.dir/program.cc.o.d"
  "libsecpol_flowchart.a"
  "libsecpol_flowchart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secpol_flowchart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
