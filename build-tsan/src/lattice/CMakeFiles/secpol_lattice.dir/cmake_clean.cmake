file(REMOVE_RECURSE
  "CMakeFiles/secpol_lattice.dir/flow_mechanism.cc.o"
  "CMakeFiles/secpol_lattice.dir/flow_mechanism.cc.o.d"
  "CMakeFiles/secpol_lattice.dir/lattice.cc.o"
  "CMakeFiles/secpol_lattice.dir/lattice.cc.o.d"
  "libsecpol_lattice.a"
  "libsecpol_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secpol_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
