file(REMOVE_RECURSE
  "libsecpol_lattice.a"
)
