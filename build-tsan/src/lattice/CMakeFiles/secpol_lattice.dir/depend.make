# Empty dependencies file for secpol_lattice.
# This may be replaced when dependencies are built.
