file(REMOVE_RECURSE
  "CMakeFiles/secpol_expr.dir/expr.cc.o"
  "CMakeFiles/secpol_expr.dir/expr.cc.o.d"
  "CMakeFiles/secpol_expr.dir/simplify.cc.o"
  "CMakeFiles/secpol_expr.dir/simplify.cc.o.d"
  "libsecpol_expr.a"
  "libsecpol_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secpol_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
