# Empty dependencies file for secpol_expr.
# This may be replaced when dependencies are built.
