file(REMOVE_RECURSE
  "libsecpol_expr.a"
)
