file(REMOVE_RECURSE
  "libsecpol_tools.a"
)
