# Empty dependencies file for secpol_tools.
# This may be replaced when dependencies are built.
