file(REMOVE_RECURSE
  "CMakeFiles/secpol_tools.dir/cli.cc.o"
  "CMakeFiles/secpol_tools.dir/cli.cc.o.d"
  "libsecpol_tools.a"
  "libsecpol_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secpol_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
