# Empty compiler generated dependencies file for secpol_cli.
# This may be replaced when dependencies are built.
