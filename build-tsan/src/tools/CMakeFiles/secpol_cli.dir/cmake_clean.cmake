file(REMOVE_RECURSE
  "CMakeFiles/secpol_cli.dir/secpol_main.cc.o"
  "CMakeFiles/secpol_cli.dir/secpol_main.cc.o.d"
  "secpol"
  "secpol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secpol_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
