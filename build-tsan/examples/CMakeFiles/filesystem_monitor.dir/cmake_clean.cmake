file(REMOVE_RECURSE
  "CMakeFiles/filesystem_monitor.dir/filesystem_monitor.cpp.o"
  "CMakeFiles/filesystem_monitor.dir/filesystem_monitor.cpp.o.d"
  "filesystem_monitor"
  "filesystem_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filesystem_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
