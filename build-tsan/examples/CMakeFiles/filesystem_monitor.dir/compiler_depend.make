# Empty compiler generated dependencies file for filesystem_monitor.
# This may be replaced when dependencies are built.
