# Empty compiler generated dependencies file for fenton_machine.
# This may be replaced when dependencies are built.
