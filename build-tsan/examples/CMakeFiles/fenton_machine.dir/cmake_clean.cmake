file(REMOVE_RECURSE
  "CMakeFiles/fenton_machine.dir/fenton_machine.cpp.o"
  "CMakeFiles/fenton_machine.dir/fenton_machine.cpp.o.d"
  "fenton_machine"
  "fenton_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fenton_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
