# Empty dependencies file for timing_channel.
# This may be replaced when dependencies are built.
