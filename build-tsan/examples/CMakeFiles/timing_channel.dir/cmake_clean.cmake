file(REMOVE_RECURSE
  "CMakeFiles/timing_channel.dir/timing_channel.cpp.o"
  "CMakeFiles/timing_channel.dir/timing_channel.cpp.o.d"
  "timing_channel"
  "timing_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
