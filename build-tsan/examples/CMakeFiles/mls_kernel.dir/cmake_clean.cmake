file(REMOVE_RECURSE
  "CMakeFiles/mls_kernel.dir/mls_kernel.cpp.o"
  "CMakeFiles/mls_kernel.dir/mls_kernel.cpp.o.d"
  "mls_kernel"
  "mls_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mls_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
