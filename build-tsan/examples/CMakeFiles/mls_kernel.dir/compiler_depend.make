# Empty compiler generated dependencies file for mls_kernel.
# This may be replaced when dependencies are built.
