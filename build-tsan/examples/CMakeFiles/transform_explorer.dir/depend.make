# Empty dependencies file for transform_explorer.
# This may be replaced when dependencies are built.
