file(REMOVE_RECURSE
  "CMakeFiles/transform_explorer.dir/transform_explorer.cpp.o"
  "CMakeFiles/transform_explorer.dir/transform_explorer.cpp.o.d"
  "transform_explorer"
  "transform_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
