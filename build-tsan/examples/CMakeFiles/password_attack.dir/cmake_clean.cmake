file(REMOVE_RECURSE
  "CMakeFiles/password_attack.dir/password_attack.cpp.o"
  "CMakeFiles/password_attack.dir/password_attack.cpp.o.d"
  "password_attack"
  "password_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/password_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
