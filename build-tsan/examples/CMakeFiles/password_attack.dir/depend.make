# Empty dependencies file for password_attack.
# This may be replaced when dependencies are built.
