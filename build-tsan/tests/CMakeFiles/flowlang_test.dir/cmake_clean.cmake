file(REMOVE_RECURSE
  "CMakeFiles/flowlang_test.dir/flowlang_test.cc.o"
  "CMakeFiles/flowlang_test.dir/flowlang_test.cc.o.d"
  "flowlang_test"
  "flowlang_test.pdb"
  "flowlang_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flowlang_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
