# Empty dependencies file for flowlang_test.
# This may be replaced when dependencies are built.
