file(REMOVE_RECURSE
  "CMakeFiles/capability_test.dir/capability_test.cc.o"
  "CMakeFiles/capability_test.dir/capability_test.cc.o.d"
  "capability_test"
  "capability_test.pdb"
  "capability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
