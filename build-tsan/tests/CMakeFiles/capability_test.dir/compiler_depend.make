# Empty compiler generated dependencies file for capability_test.
# This may be replaced when dependencies are built.
