file(REMOVE_RECURSE
  "CMakeFiles/staticflow_test.dir/staticflow_test.cc.o"
  "CMakeFiles/staticflow_test.dir/staticflow_test.cc.o.d"
  "staticflow_test"
  "staticflow_test.pdb"
  "staticflow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staticflow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
