# Empty compiler generated dependencies file for staticflow_test.
# This may be replaced when dependencies are built.
