file(REMOVE_RECURSE
  "CMakeFiles/minsky_test.dir/minsky_test.cc.o"
  "CMakeFiles/minsky_test.dir/minsky_test.cc.o.d"
  "minsky_test"
  "minsky_test.pdb"
  "minsky_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minsky_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
