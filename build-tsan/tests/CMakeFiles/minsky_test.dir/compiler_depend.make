# Empty compiler generated dependencies file for minsky_test.
# This may be replaced when dependencies are built.
