file(REMOVE_RECURSE
  "CMakeFiles/bytecode_test.dir/bytecode_test.cc.o"
  "CMakeFiles/bytecode_test.dir/bytecode_test.cc.o.d"
  "bytecode_test"
  "bytecode_test.pdb"
  "bytecode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bytecode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
