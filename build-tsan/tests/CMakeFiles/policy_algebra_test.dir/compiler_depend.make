# Empty compiler generated dependencies file for policy_algebra_test.
# This may be replaced when dependencies are built.
