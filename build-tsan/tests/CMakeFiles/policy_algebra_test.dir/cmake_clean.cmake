file(REMOVE_RECURSE
  "CMakeFiles/policy_algebra_test.dir/policy_algebra_test.cc.o"
  "CMakeFiles/policy_algebra_test.dir/policy_algebra_test.cc.o.d"
  "policy_algebra_test"
  "policy_algebra_test.pdb"
  "policy_algebra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_algebra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
