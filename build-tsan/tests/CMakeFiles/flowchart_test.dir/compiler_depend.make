# Empty compiler generated dependencies file for flowchart_test.
# This may be replaced when dependencies are built.
