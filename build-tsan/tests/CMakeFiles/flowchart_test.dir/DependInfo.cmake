
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/flowchart_test.cc" "tests/CMakeFiles/flowchart_test.dir/flowchart_test.cc.o" "gcc" "tests/CMakeFiles/flowchart_test.dir/flowchart_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/tools/CMakeFiles/secpol_tools.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/transforms/CMakeFiles/secpol_transforms.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/surveillance/CMakeFiles/secpol_surveillance.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/staticflow/CMakeFiles/secpol_staticflow.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/minsky/CMakeFiles/secpol_minsky.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/tape/CMakeFiles/secpol_tape.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/monitor/CMakeFiles/secpol_monitor.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/lattice/CMakeFiles/secpol_lattice.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/channels/CMakeFiles/secpol_channels.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/mechanism/CMakeFiles/secpol_mechanism.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/policy/CMakeFiles/secpol_policy.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/corpus/CMakeFiles/secpol_corpus.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/flowlang/CMakeFiles/secpol_flowlang.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/flowchart/CMakeFiles/secpol_flowchart.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/expr/CMakeFiles/secpol_expr.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/util/CMakeFiles/secpol_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
