file(REMOVE_RECURSE
  "CMakeFiles/flowchart_test.dir/flowchart_test.cc.o"
  "CMakeFiles/flowchart_test.dir/flowchart_test.cc.o.d"
  "flowchart_test"
  "flowchart_test.pdb"
  "flowchart_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flowchart_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
