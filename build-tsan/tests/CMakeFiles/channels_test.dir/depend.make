# Empty dependencies file for channels_test.
# This may be replaced when dependencies are built.
