file(REMOVE_RECURSE
  "CMakeFiles/channels_test.dir/channels_test.cc.o"
  "CMakeFiles/channels_test.dir/channels_test.cc.o.d"
  "channels_test"
  "channels_test.pdb"
  "channels_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
