# Empty dependencies file for parallel_check_test.
# This may be replaced when dependencies are built.
