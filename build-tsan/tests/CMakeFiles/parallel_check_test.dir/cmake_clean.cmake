file(REMOVE_RECURSE
  "CMakeFiles/parallel_check_test.dir/parallel_check_test.cc.o"
  "CMakeFiles/parallel_check_test.dir/parallel_check_test.cc.o.d"
  "parallel_check_test"
  "parallel_check_test.pdb"
  "parallel_check_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_check_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
