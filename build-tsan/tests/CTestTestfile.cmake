# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/util_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/expr_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/flowchart_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/flowlang_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/policy_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/mechanism_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/surveillance_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/staticflow_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/transforms_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/lattice_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/minsky_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/tape_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/monitor_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/channels_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/corpus_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/simplify_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/bytecode_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/integrity_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/policy_algebra_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/cli_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/optimize_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/kernel_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/capability_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/structure_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/integration_test[1]_include.cmake")
include("/root/repo/build-tsan/tests/parallel_check_test[1]_include.cmake")
